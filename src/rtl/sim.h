// Cycle-accurate simulator of a scheduled design: executes the generated
// micro-architecture (FSM + datapath) with hardware register semantics and
// plays the role of the paper's RTL/FPGA verification stage (Figure 1:
// "the generated RTL ... used for functional verification").
//
// Register semantics:
//  * scalar variables update as they execute (wires forward within a
//    cycle; the register commit at the edge holds the final value);
//  * array elements (register files / RAMs) commit at the END of each
//    cycle: reads always observe start-of-cycle state — which is exactly
//    why the scheduler's write->read next-cycle rule exists;
//  * within a cycle, operations execute in program order (earlier loop
//    iterations first when pipelining overlaps them).
//
// Execution engine: the constructor compiles the schedule into an
// execution *plan* — per-cycle tables of compact op records with
// pre-resolved operand slots, per-iteration pre-evaluated affine array
// indices, index-bound ports and preallocated iteration/commit buffers —
// so run() touches exactly the ops scheduled in each cycle and performs
// no string lookups or per-iteration allocation. The original interpretive
// path (rescan every op each cycle) is preserved behind
// SimOptions::compiled = false as the reference the equivalence battery
// pins the plan against; both paths are bit-identical in outputs, cycle
// counts and SimStats.
//
// Because the simulator consumes the *transformed* function and its
// schedule, comparing it against hls::Interpreter on the same transformed
// IR verifies the scheduler (every dependence honored); comparing against
// the interpreter on the ORIGINAL IR verifies the whole flow end to end.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/ir.h"
#include "hls/profile.h"
#include "hls/schedule.h"
#include "obs/json.h"

namespace hlsw::rtl {

// Activity counters accumulated across run() invocations (reset() zeroes
// them). Cheap enough to keep always-on: a handful of integer increments
// per simulated cycle, dwarfed by the datapath evaluation itself.
struct SimStats {
  long long invocations = 0;     // run() calls
  long long cycles = 0;          // clock edges committed
  long long ops_executed = 0;    // datapath/memory ops evaluated
  long long array_commits = 0;   // array element writes committed at edges
  long long max_commit_queue = 0;  // peak pending write-queue depth
  std::vector<std::string> region_labels;  // per-region activity, aligned
  std::vector<long long> region_ops;       // with the transformed regions
  std::vector<long long> region_cycles;    // clock edges spent per region
  std::vector<long long> region_iters;     // loop iterations completed
  std::vector<std::string> array_labels;   // per-array port activity,
  std::vector<long long> array_reads;      // aligned with f.arrays:
  std::vector<long long> array_writes;     // element reads / write commits

  bool operator==(const SimStats&) const = default;
};

struct SimOptions {
  // Execute through the compiled plan (default). false selects the legacy
  // interpretive inner loop, kept as the bit-exact reference path for the
  // equivalence tests.
  bool compiled = true;
};

class Simulator {
 public:
  // Takes the post-transform function and the schedule produced for it.
  Simulator(hls::Function f, hls::Schedule s, SimOptions opts = {});

  // The compiled plan holds pointers into this instance's own copy of the
  // function; copying would alias them, so simulators are clone-by-
  // reconstruction (see hls::cosim_sweep for the pattern).
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // One invocation (one "start" of the block). Advances the cycle counter
  // by exactly the schedule's latency.
  hls::PortIo run(const hls::PortIo& in);

  // Batched streaming: pushes every input through the design in order
  // (state carries across symbols exactly as repeated run() calls would)
  // under a single trace span. Outputs, cycle counts and SimStats are
  // bit-identical to the per-symbol loop.
  std::vector<hls::PortIo> run_stream(const std::vector<hls::PortIo>& ins);

  // Flat symbol-stream form: ports are bound to channels by name once per
  // call and values move through contiguous buffers, eliminating the
  // per-symbol PortIo map construction entirely — the fast path for long
  // link sweeps. Requires the compiled plan semantics to be identical;
  // works on both paths.
  hls::PortStream run_stream(const hls::PortStream& in);

  long long cycles() const { return cycles_; }
  void reset();

  // Cumulative activity counters (cycles, op/commit counts, per-region
  // activity) — the simulator's instrument panel, exported alongside the
  // VCD by sim_stats_json()/write_sim_stats_json().
  const SimStats& stats() const { return stats_; }

  const hls::Function& function() const { return f_; }
  const hls::Schedule& schedule() const { return s_; }
  const SimOptions& options() const { return opts_; }

  const std::vector<hls::FxValue>& array_state(const std::string& name) const;
  void set_array_state(const std::string& name,
                       const std::vector<hls::FxValue>& values);

  // Optional per-cycle observer, invoked after every clock-edge commit
  // with the cycle index and full architectural state — the hook the VCD
  // waveform writer (rtl/vcd.h) attaches to.
  using TraceFn =
      std::function<void(long long cycle, const std::vector<hls::FxValue>&,
                         const std::vector<std::vector<hls::FxValue>>&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

 private:
  struct IterationCtx {
    int k = 0;
    std::vector<hls::FxValue> vals;
  };

  // ---- Compiled execution plan (built once at construction) ----
  //
  // The plan is specialized PER ITERATION: because every operand's
  // fractional width is statically derivable (state reads carry their
  // port/static type, converted results carry their op's result type, and
  // guard-skipped producers deterministically yield a fresh zero with
  // fw = 0), the alignment shifts, conversion shift/rounding/saturation
  // constants and affine array indices of each (iteration, cycle) pair are
  // baked at construction. The runtime loop therefore performs no guard
  // checks, no type derivation and no index evaluation — it only moves
  // values and applies pre-parameterized arithmetic.

  // Pre-baked fixed-point conversion: everything fx_convert() derives from
  // the destination FxType and the source width, resolved once — plus a
  // mode classifying how much of the general algorithm this particular
  // conversion can actually need. The mode is proved by static interval
  // propagation over the plan (every slot's raw-value range is known at
  // compile time), which demotes most conversions to a bare shift.
  struct ConvSpec {
    enum class Mode : unsigned char {
      kShiftUp,    // shift >= 0, overflow impossible: raw << shift
      kShiftDown,  // shift < 0, truncating, overflow impossible: raw >> -shift
      kRound,      // shift < 0, rounding, overflow impossible
      kFull,       // general path (rounding + saturation/wrap)
    };
    int shift = 0;   // dst.fw() - src_fw
    int out_fw = 0;  // dst.fw()
    int w = 0;       // dst width (saturation/wrap bounds, derived on demand)
    Mode mode = Mode::kFull;
    fixpt::Quant q = fixpt::Quant::kTrn;
    fixpt::Ovf o = fixpt::Ovf::kWrap;
    bool sgn = true;
    bool out_cplx = false;
  };
  // Compact op record with pre-resolved operand slots and pre-decoded
  // targets; ordered by (iteration, cycle, program index) in its region
  // table. Skipped (guarded-out) ops are not emitted at all.
  struct PlanOp {
    hls::OpKind kind = hls::OpKind::kConst;
    int dst = 0;             // value slot (== op index in the block)
    int a0 = -1, a1 = -1;    // operand slots, -1 = absent
    int target = -1;         // var or array state index
    int idx = -1;            // baked affine index (memory ops; -1 = OOB);
                             // for kConst: index into const_pool_
    int sa = 0, sb = 0;      // pre-add alignment shifts (add/sub/mk_cplx)
    ConvSpec conv;           // conversion into the result/storage type
  };
  struct Span {
    int begin = 0, end = 0;  // [begin, end) into RegionPlan::ops
  };
  struct RegionPlan {
    bool pipelined = false;
    // Interval analysis proved every slot value, aligned operand and
    // pre-conversion intermediate of this region fits in int64: execute
    // through exec_span_narrow() on flat 64-bit component pairs instead
    // of FxValue slots (the fast path; FxValue only materializes at the
    // var/array state boundary, where its fw/cplx are baked constants).
    bool narrow = false;
    int trip = 1;
    int ii = 0;       // > 0: pipelined
    int depth = 0;    // body cycles
    int nops = 0;     // block op count (value-slot count)
    int ctx_base = 0;  // first value buffer in ctx_pool_ / ctx64_pool_
                       // (pipelined: trip buffers, one per in-flight
                       // iteration; else one)
    std::vector<PlanOp> ops;   // per-(iteration, cycle) specialized records
    std::vector<Span> spans;   // trip * depth entries: spans[k*depth + c]
    // Sequential loops reuse one value buffer across iterations, so the
    // slot of an op that becomes guard-skipped at iteration k (== its
    // guard_trip) is zeroed there — consumers must observe the fresh-zero
    // value the interpretive path's per-iteration vectors provide.
    // Pipelined loops have a dedicated buffer per iteration whose skipped
    // slots are simply never written after their zero initialization.
    std::vector<int> zero_slots;
    std::vector<Span> zero_spans;  // trip entries into zero_slots
  };
  // Port bound to its state index once, sorted by name so input loading is
  // a single merge walk over the (name-sorted) PortIo maps and output maps
  // build with end-hinted O(1) insertions.
  struct PortSlot {
    const std::string* name = nullptr;
    int index = 0;  // var/array state index
  };

  void compile_plan();
  // Executes ops of `body_cycle` for iteration ctx, in program order
  // (legacy interpretive path: rescans every op of the block).
  void exec_cycle(const hls::Block& b, const hls::BlockSchedule& sched,
                  IterationCtx* ctx, int body_cycle, std::size_t region);
  // Compiled path: executes exactly the pre-specialized span of ops.
  void exec_span(const RegionPlan& rp, int span_index,
                 std::vector<hls::FxValue>& vals, std::size_t region);
  // Narrow variant: slot i lives at vals[2i] (re) / vals[2i + 1] (im).
  void exec_span_narrow(const RegionPlan& rp, int span_index, long long* vals,
                        std::size_t region);
  void run_regions_compiled();
  void run_regions_legacy();
  void load_inputs(const hls::PortIo& in);
  void collect_outputs(hls::PortIo* out) const;
  // Shared invocation body (no trace span): load, execute, collect.
  hls::PortIo run_one(const hls::PortIo& in);
  void commit_pending();

  const hls::Function f_;
  const hls::Schedule s_;
  const SimOptions opts_;
  std::vector<hls::FxValue> var_state_;
  std::vector<std::vector<hls::FxValue>> array_state_;
  // Pending array writes for the current cycle: (array, index) -> value.
  // Reserved at plan-compile time to the schedule's maximum writes per
  // cycle, so commits never reallocate mid-run.
  std::vector<std::pair<std::pair<int, int>, hls::FxValue>> pending_;
  long long cycles_ = 0;
  TraceFn trace_;
  SimStats stats_;

  // Plan state.
  std::vector<RegionPlan> plan_;
  std::vector<hls::FxValue> const_pool_;  // kConst payloads (PlanOp::idx)
  // Per-region value buffers, allocated once at construction and reused
  // across all runs (no per-iteration allocation or zero-fill). Narrow
  // regions use the flat int64 pool, wide regions the FxValue pool.
  std::vector<std::vector<hls::FxValue>> ctx_pool_;
  std::vector<std::vector<long long>> ctx64_pool_;
  std::vector<PortSlot> in_array_ports_, in_var_ports_;
  std::vector<PortSlot> out_array_ports_, out_var_ports_;
};

// Structured view of a simulator's activity counters:
// {"tool":"hlsw.rtl_sim","function":...,"cycles":...,"ops_executed":...,
//  "array_commits":...,"max_commit_queue":...,"regions":[{"label","ops"}]}.
obs::Json sim_stats_json(const Simulator& sim);
bool write_sim_stats_json(const Simulator& sim, const std::string& path);

// Readback of an instrumented design's counter map from the simulator's
// activity counters: the schedule-model measurement leg of the
// hls::reconcile_profile join. The simulator executes the SCHEDULE timing
// (pipelined loops overlap), so kRegionCycles reports (trip-1)*ii + depth
// per invocation for pipelined loops and kLoopStall reports 0 — the
// emitted-Verilog legs (vsim::read_counters) measure the serialized FSM
// instead; the reconciler tells the two models apart.
hls::CounterValues read_counters(const Simulator& sim,
                                 const std::vector<hls::PerfCounter>& map);

}  // namespace hlsw::rtl
