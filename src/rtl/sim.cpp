#include "rtl/sim.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace hlsw::rtl {

using hls::Array;
using hls::Block;
using hls::BlockSchedule;
using hls::FxValue;
using hls::Op;
using hls::OpKind;
using hls::PortDir;
using hls::PortIo;
using hls::PortStream;
using hls::Region;

Simulator::Simulator(hls::Function f, hls::Schedule s, SimOptions opts)
    : f_(std::move(f)), s_(std::move(s)), opts_(opts) {
  assert(f_.regions.size() == s_.regions.size());
  reset();
  compile_plan();
}

void Simulator::reset() {
  var_state_.clear();
  array_state_.clear();
  pending_.clear();
  cycles_ = 0;
  stats_ = SimStats{};
  for (const auto& region : f_.regions) {
    stats_.region_labels.push_back(region.is_loop ? region.loop.label
                                                  : region.name);
    stats_.region_ops.push_back(0);
    stats_.region_cycles.push_back(0);
    stats_.region_iters.push_back(0);
  }
  for (const auto& a : f_.arrays) {
    stats_.array_labels.push_back(a.name);
    stats_.array_reads.push_back(0);
    stats_.array_writes.push_back(0);
  }
  for (const auto& v : f_.vars) {
    FxValue init = v.init;
    init.fw = v.type.fw();
    init.cplx = v.type.cplx;
    var_state_.push_back(init);
  }
  for (const auto& a : f_.arrays) {
    FxValue zero;
    zero.fw = a.elem.fw();
    zero.cplx = a.elem.cplx;
    array_state_.emplace_back(static_cast<size_t>(a.length), zero);
  }
}

namespace {

// Saturation bounds as __int128 for a (w, sgn) format; mirrors the
// definitions in hls/ir.cpp (the conversion constants baked here must be
// bit-identical to what fx_convert derives per call).
__int128 plan_max_raw(int w, bool sgn) {
  return (static_cast<__int128>(1) << (sgn ? w - 1 : w)) - 1;
}
__int128 plan_min_raw(int w, bool sgn) {
  return sgn ? -(static_cast<__int128>(1) << (w - 1)) : 0;
}

}  // namespace

void Simulator::compile_plan() {
  // Index-bound ports, sorted by name: input loading becomes one merge
  // walk over the (name-ordered) PortIo maps and output maps rebuild with
  // end-hinted insertions — no per-run map lookups.
  for (std::size_t i = 0; i < f_.arrays.size(); ++i) {
    const Array& a = f_.arrays[i];
    if (a.port == PortDir::kIn || a.port == PortDir::kInOut)
      in_array_ports_.push_back({&a.name, static_cast<int>(i)});
    if (a.port == PortDir::kOut || a.port == PortDir::kInOut)
      out_array_ports_.push_back({&a.name, static_cast<int>(i)});
  }
  for (std::size_t i = 0; i < f_.vars.size(); ++i) {
    const auto& v = f_.vars[i];
    if (v.port == PortDir::kIn || v.port == PortDir::kInOut)
      in_var_ports_.push_back({&v.name, static_cast<int>(i)});
    if (v.port == PortDir::kOut || v.port == PortDir::kInOut)
      out_var_ports_.push_back({&v.name, static_cast<int>(i)});
  }
  const auto by_name = [](const PortSlot& a, const PortSlot& b) {
    return *a.name < *b.name;
  };
  std::sort(in_array_ports_.begin(), in_array_ports_.end(), by_name);
  std::sort(in_var_ports_.begin(), in_var_ports_.end(), by_name);
  std::sort(out_array_ports_.begin(), out_array_ports_.end(), by_name);
  std::sort(out_var_ports_.begin(), out_var_ports_.end(), by_name);

  // Bakes a conversion given the statically known raw-value interval
  // [lo, hi] of the source (covering both components; always contains 0).
  // If the post-shift value provably fits the destination's overflow
  // bounds, the runtime saturation/wrap checks are dropped; a truncating
  // down-shift further degenerates to a bare arithmetic shift.
  const auto conv_spec = [](const hls::FxType& dst, int src_fw, __int128 lo,
                            __int128 hi) {
    ConvSpec cs;
    cs.shift = dst.fw() - src_fw;
    cs.out_fw = dst.fw();
    cs.out_cplx = dst.cplx;
    cs.w = dst.w;
    cs.sgn = dst.sgn;
    cs.q = dst.q;
    cs.o = dst.o;
    const __int128 bhi = plan_max_raw(dst.w, dst.sgn);
    const __int128 blo = (dst.o == fixpt::Ovf::kSatSym && dst.sgn)
                             ? -bhi
                             : plan_min_raw(dst.w, dst.sgn);
    bool no_ovf;
    if (cs.shift >= 0) {
      no_ovf = (lo << cs.shift) >= blo && (hi << cs.shift) <= bhi;
      cs.mode = no_ovf ? ConvSpec::Mode::kShiftUp : ConvSpec::Mode::kFull;
    } else {
      // Rounding adds at most one ulp to the floor-shifted value.
      const int d = -cs.shift;
      no_ovf = (lo >> d) >= blo && ((hi >> d) + 1) <= bhi;
      cs.mode = !no_ovf ? ConvSpec::Mode::kFull
                : dst.q == fixpt::Quant::kTrn ? ConvSpec::Mode::kShiftDown
                                              : ConvSpec::Mode::kRound;
    }
    return cs;
  };
  // Raw-value interval of everything a (w, sgn) storage type can hold.
  const auto type_bounds = [](const hls::FxType& t, __int128* lo,
                              __int128* hi) {
    *lo = plan_min_raw(t.w, t.sgn);
    *hi = plan_max_raw(t.w, t.sgn);
  };

  plan_.resize(f_.regions.size());
  std::size_t max_writes_per_cycle = 0;
  for (std::size_t r = 0; r < f_.regions.size(); ++r) {
    const Region& region = f_.regions[r];
    const auto& rs = s_.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    RegionPlan& rp = plan_[r];
    rp.trip = region.is_loop ? region.loop.trip : 1;
    rp.ii = region.is_loop ? rs.ii : 0;
    rp.pipelined = rp.ii > 0;
    rp.depth = rs.body.cycles;
    rp.nops = static_cast<int>(b.ops.size());

    // Narrow candidacy: proved below op by op — every slot value, aligned
    // operand, product and pre-conversion intermediate must fit int64
    // (with margin), and conversion shift/width constants must be small
    // enough for 64-bit masks.
    bool narrow = true;
    constexpr __int128 kNarrowMax = static_cast<__int128>(1) << 62;
    const auto chk = [&](__int128 v) {
      if (v > kNarrowMax || v < -kNarrowMax) narrow = false;
    };

    // Specialize every (iteration, cycle) pair. Operand fractional widths
    // are propagated statically in program order: state reads carry their
    // declared type, converted results carry their op's result type, and
    // guard-skipped producers contribute a fresh zero with fw = 0 —
    // exactly the values the interpretive path materializes at runtime.
    const int trip = rp.trip;
    const int depth = rp.depth;
    rp.spans.assign(static_cast<size_t>(trip) * static_cast<size_t>(depth),
                    Span{});
    rp.zero_spans.resize(static_cast<size_t>(trip));
    // Bucket ops as (k, cycle) in program order, then flatten.
    std::vector<std::vector<PlanOp>> buckets(rp.spans.size());
    std::vector<std::size_t> bucket_writes(rp.spans.size(), 0);
    std::vector<int> slot_fw(static_cast<size_t>(rp.nops), 0);
    // Static raw-value interval of each slot (covers re and im, contains
    // 0) — the evidence behind ConvSpec mode demotion.
    std::vector<__int128> slot_lo(static_cast<size_t>(rp.nops), 0);
    std::vector<__int128> slot_hi(static_cast<size_t>(rp.nops), 0);
    // conv_spec plus the narrow-fitness bookkeeping for this conversion.
    const auto bake_conv = [&](const hls::FxType& dst, int src_fw,
                               __int128 lo, __int128 hi) {
      const ConvSpec cs = conv_spec(dst, src_fw, lo, hi);
      if (cs.shift > 62 || cs.shift < -62 || cs.w > 62) narrow = false;
      if (cs.shift >= 0) {
        chk(lo << cs.shift);
        chk(hi << cs.shift);
      } else {
        chk(lo);
        chk(hi);
      }
      return cs;
    };
    for (int k = 0; k < trip; ++k) {
      rp.zero_spans[static_cast<size_t>(k)].begin =
          static_cast<int>(rp.zero_slots.size());
      for (std::size_t i = 0; i < b.ops.size(); ++i) {
        const Op& op = b.ops[i];
        if (op.guard_trip >= 0 && k >= op.guard_trip) {
          // Skipped: the slot reads as a fresh zero. Sequential loops
          // re-zero it at the first skipped iteration (the buffer is
          // shared across iterations and runs); pipelined buffers are
          // per-iteration, so the slot is never written and the
          // construction-time zero persists.
          slot_fw[i] = 0;
          slot_lo[i] = 0;
          slot_hi[i] = 0;
          if (!rp.pipelined && k == op.guard_trip)
            rp.zero_slots.push_back(static_cast<int>(i));
          continue;
        }
        PlanOp p;
        p.kind = op.kind;
        p.dst = static_cast<int>(i);
        p.a0 = op.args.size() > 0 ? op.args[0] : -1;
        p.a1 = op.args.size() > 1 ? op.args[1] : -1;
        const int fa = p.a0 >= 0 ? slot_fw[static_cast<size_t>(p.a0)] : 0;
        const int fb = p.a1 >= 0 ? slot_fw[static_cast<size_t>(p.a1)] : 0;
        const __int128 alo = p.a0 >= 0 ? slot_lo[static_cast<size_t>(p.a0)] : 0;
        const __int128 ahi = p.a0 >= 0 ? slot_hi[static_cast<size_t>(p.a0)] : 0;
        const __int128 blo = p.a1 >= 0 ? slot_lo[static_cast<size_t>(p.a1)] : 0;
        const __int128 bhi = p.a1 >= 0 ? slot_hi[static_cast<size_t>(p.a1)] : 0;
        switch (op.kind) {
          case OpKind::kConst:
            p.idx = static_cast<int>(const_pool_.size());
            const_pool_.push_back(op.cval);
            slot_fw[i] = op.cval.fw;
            slot_lo[i] = std::min<__int128>(0, std::min(op.cval.re, op.cval.im));
            slot_hi[i] = std::max<__int128>(0, std::max(op.cval.re, op.cval.im));
            break;
          case OpKind::kVarRead: {
            p.target = op.var;
            const auto& v = f_.vars[static_cast<size_t>(op.var)];
            slot_fw[i] = v.type.fw();
            type_bounds(v.type, &slot_lo[i], &slot_hi[i]);
            // reset() installs v.init raw components unconverted, so the
            // first read of a run may see values outside the type bounds.
            slot_lo[i] = std::min(slot_lo[i], std::min(v.init.re, v.init.im));
            slot_hi[i] = std::max(slot_hi[i], std::max(v.init.re, v.init.im));
            break;
          }
          case OpKind::kVarWrite:
            p.target = op.var;
            p.conv = bake_conv(f_.vars[static_cast<size_t>(op.var)].type, fa,
                               alo, ahi);
            break;
          case OpKind::kArrayRead:
          case OpKind::kArrayWrite: {
            p.target = op.array;
            const Array& a = f_.arrays[static_cast<size_t>(op.array)];
            // Affine index baked per iteration; -1 marks out-of-bounds so
            // execution still throws at the same point the interpretive
            // path would.
            const int idx = op.idx.eval(k);
            p.idx = idx >= 0 && idx < a.length ? idx : -1;
            if (op.kind == OpKind::kArrayRead) {
              slot_fw[i] = a.elem.fw();
              type_bounds(a.elem, &slot_lo[i], &slot_hi[i]);
            } else {
              p.conv = bake_conv(a.elem, fa, alo, ahi);
            }
            break;
          }
          case OpKind::kAdd:
          case OpKind::kSub:
            // fx_add/fx_sub align both operands to max(fa, fb).
            p.sa = fa >= fb ? 0 : fb - fa;
            p.sb = fa >= fb ? fa - fb : 0;
            // Sum bounds don't bound the aligned terms, so check those too.
            chk(alo << p.sa);
            chk(ahi << p.sa);
            chk(blo << p.sb);
            chk(bhi << p.sb);
            slot_lo[i] = op.kind == OpKind::kAdd
                             ? (alo << p.sa) + (blo << p.sb)
                             : (alo << p.sa) - (bhi << p.sb);
            slot_hi[i] = op.kind == OpKind::kAdd
                             ? (ahi << p.sa) + (bhi << p.sb)
                             : (ahi << p.sa) - (blo << p.sb);
            p.conv = bake_conv(op.type, std::max(fa, fb), slot_lo[i],
                               slot_hi[i]);
            slot_fw[i] = op.type.fw();
            type_bounds(op.type, &slot_lo[i], &slot_hi[i]);
            break;
          case OpKind::kMul: {
            // fx_mul's full-precision product carries fa + fb; components
            // are p1 - p2 and p1 + p2 with p1, p2 component products.
            const __int128 p1 = alo * blo, p2 = alo * bhi, p3 = ahi * blo,
                           p4 = ahi * bhi;
            const __int128 pmin = std::min(std::min(p1, p2), std::min(p3, p4));
            const __int128 pmax = std::max(std::max(p1, p2), std::max(p3, p4));
            slot_lo[i] = std::min(pmin - pmax, 2 * pmin);
            slot_hi[i] = std::max(pmax - pmin, 2 * pmax);
            p.conv = bake_conv(op.type, fa + fb, slot_lo[i], slot_hi[i]);
            slot_fw[i] = op.type.fw();
            type_bounds(op.type, &slot_lo[i], &slot_hi[i]);
            break;
          }
          case OpKind::kNeg:
          case OpKind::kCast:
            p.conv = bake_conv(op.type, fa,
                               op.kind == OpKind::kNeg ? -ahi : alo,
                               op.kind == OpKind::kNeg ? -alo : ahi);
            slot_fw[i] = op.type.fw();
            type_bounds(op.type, &slot_lo[i], &slot_hi[i]);
            break;
          case OpKind::kSignConj:
            slot_fw[i] = 0;
            slot_lo[i] = -1;
            slot_hi[i] = 1;
            break;
          case OpKind::kReal:
          case OpKind::kImag:
            slot_fw[i] = fa;
            slot_lo[i] = alo;
            slot_hi[i] = ahi;
            break;
          case OpKind::kMakeComplex:
            p.sa = fa >= fb ? 0 : fb - fa;
            p.sb = fa >= fb ? fa - fb : 0;
            p.conv = bake_conv(op.type, std::max(fa, fb),
                               std::min(alo << p.sa, blo << p.sb),
                               std::max(ahi << p.sa, bhi << p.sb));
            slot_fw[i] = op.type.fw();
            type_bounds(op.type, &slot_lo[i], &slot_hi[i]);
            break;
        }
        // Slot bounds feed later operand loads; they must fit int64 too.
        chk(slot_lo[i]);
        chk(slot_hi[i]);
        const std::size_t bucket =
            static_cast<std::size_t>(k) * static_cast<std::size_t>(depth) +
            static_cast<std::size_t>(rs.body.place[i].cycle);
        if (op.kind == OpKind::kArrayWrite) ++bucket_writes[bucket];
        buckets[bucket].push_back(p);
      }
      rp.zero_spans[static_cast<size_t>(k)].end =
          static_cast<int>(rp.zero_slots.size());
    }
    for (std::size_t s = 0; s < buckets.size(); ++s) {
      rp.spans[s].begin = static_cast<int>(rp.ops.size());
      rp.ops.insert(rp.ops.end(), buckets[s].begin(), buckets[s].end());
      rp.spans[s].end = static_cast<int>(rp.ops.size());
    }

    // One value buffer per in-flight iteration (pipelined) or one for the
    // whole region (straight/sequential), zero-initialized once here —
    // flat int64 component pairs when the region proved narrow, FxValue
    // slots otherwise.
    rp.narrow = narrow;
    rp.ctx_base = static_cast<int>(narrow ? ctx64_pool_.size()
                                          : ctx_pool_.size());
    const int nbuf = rp.pipelined ? rp.trip : 1;
    for (int i = 0; i < nbuf; ++i) {
      if (narrow)
        ctx64_pool_.emplace_back(2 * static_cast<size_t>(rp.nops), 0LL);
      else
        ctx_pool_.emplace_back(static_cast<size_t>(rp.nops), FxValue{});
    }

    // Peak array writes in any single committed cycle, accounting for
    // pipelined iteration overlap — sizes the pending buffer once.
    if (rp.pipelined) {
      const int total = depth + (trip - 1) * rp.ii;
      for (int t = 0; t < total; ++t) {
        std::size_t w = 0;
        for (int k = 0; k <= std::min(trip - 1, t / rp.ii); ++k) {
          const int local = t - k * rp.ii;
          if (local >= 0 && local < depth)
            w += bucket_writes[static_cast<size_t>(k) *
                                   static_cast<size_t>(depth) +
                               static_cast<size_t>(local)];
        }
        max_writes_per_cycle = std::max(max_writes_per_cycle, w);
      }
    } else {
      for (std::size_t w : bucket_writes)
        max_writes_per_cycle = std::max(max_writes_per_cycle, w);
    }
  }
  pending_.reserve(max_writes_per_cycle);
}

const std::vector<FxValue>& Simulator::array_state(
    const std::string& name) const {
  const int i = f_.array_index(name);
  assert(i >= 0);
  return array_state_[static_cast<size_t>(i)];
}

void Simulator::set_array_state(const std::string& name,
                                const std::vector<FxValue>& values) {
  const int i = f_.array_index(name);
  assert(i >= 0);
  const Array& a = f_.arrays[static_cast<size_t>(i)];
  assert(static_cast<int>(values.size()) == a.length);
  for (int j = 0; j < a.length; ++j)
    array_state_[static_cast<size_t>(i)][static_cast<size_t>(j)] =
        fx_convert(values[static_cast<size_t>(j)], a.elem);
}

void Simulator::exec_cycle(const Block& b, const BlockSchedule& sched,
                           IterationCtx* ctx, int body_cycle,
                           std::size_t region) {
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    if (sched.place[i].cycle != body_cycle) continue;
    const Op& op = b.ops[i];
    if (op.guard_trip >= 0 && ctx->k >= op.guard_trip) continue;
    ++stats_.ops_executed;
    ++stats_.region_ops[region];
    switch (op.kind) {
      case OpKind::kVarRead:
        // Scalar registers forward: reads observe the latest write.
        ctx->vals[i] = var_state_[static_cast<size_t>(op.var)];
        break;
      case OpKind::kVarWrite:
        var_state_[static_cast<size_t>(op.var)] = fx_convert(
            ctx->vals[static_cast<size_t>(op.args[0])],
            f_.vars[static_cast<size_t>(op.var)].type);
        break;
      case OpKind::kArrayRead: {
        const int idx = op.idx.eval(ctx->k);
        const auto& arr = array_state_[static_cast<size_t>(op.array)];
        if (idx < 0 || idx >= static_cast<int>(arr.size()))
          throw std::out_of_range("rtl: array read out of bounds");
        ++stats_.array_reads[static_cast<size_t>(op.array)];
        // Start-of-cycle state only: pending writes are not visible.
        ctx->vals[i] = arr[static_cast<size_t>(idx)];
        break;
      }
      case OpKind::kArrayWrite: {
        const int idx = op.idx.eval(ctx->k);
        if (idx < 0 ||
            idx >= f_.arrays[static_cast<size_t>(op.array)].length)
          throw std::out_of_range("rtl: array write out of bounds");
        ++stats_.array_writes[static_cast<size_t>(op.array)];
        const Array& a = f_.arrays[static_cast<size_t>(op.array)];
        pending_.push_back(
            {{op.array, idx},
             fx_convert(ctx->vals[static_cast<size_t>(op.args[0])], a.elem)});
        break;
      }
      default: {
        const FxValue* a0 =
            !op.args.empty() ? &ctx->vals[static_cast<size_t>(op.args[0])]
                             : nullptr;
        const FxValue* a1 = op.args.size() > 1
                                ? &ctx->vals[static_cast<size_t>(op.args[1])]
                                : nullptr;
        ctx->vals[i] = exec_op(op, a0, a1);
        break;
      }
    }
  }
}

namespace {

// Rounded floor-shift shared by the kRound and kFull paths — bit-identical
// to the shift-negative branch of hls::fx_convert_component.
template <class CS>
inline __int128 conv_round(__int128 raw, const CS& cs) {
  const int d = -cs.shift;
  const __int128 base = raw >> d;  // arithmetic shift: floor
  const bool msb = ((raw >> (d - 1)) & 1) != 0;
  const bool rest =
      d >= 2 && (raw & ((static_cast<__int128>(1) << (d - 1)) - 1)) != 0;
  const bool neg = raw < 0;
  const bool lsb_kept = (base & 1) != 0;
  return base +
         (fixpt::round_increment(cs.q, msb, rest, neg, lsb_kept) ? 1 : 0);
}

// Applies a pre-baked conversion to one raw component — bit-identical to
// hls::fx_convert_component with shift and rounding mode resolved at
// plan-compile time, and the saturation/wrap stage dropped entirely when
// the plan's interval analysis proved overflow impossible (the common
// case). Templated on the spec so the simulator's private ConvSpec type
// stays private.
template <class CS>
inline __int128 conv_comp(__int128 raw, const CS& cs) {
  using Mode = typename CS::Mode;
  switch (cs.mode) {
    case Mode::kShiftUp:
      return raw << cs.shift;
    case Mode::kShiftDown:
      return raw >> -cs.shift;
    case Mode::kRound:
      return conv_round(raw, cs);
    case Mode::kFull:
      break;
  }
  const __int128 v = cs.shift >= 0 ? raw << cs.shift : conv_round(raw, cs);
  const __int128 hi = plan_max_raw(cs.w, cs.sgn);
  const __int128 lo = (cs.o == fixpt::Ovf::kSatSym && cs.sgn)
                          ? -hi
                          : plan_min_raw(cs.w, cs.sgn);
  if (v > hi || v < lo) {
    switch (cs.o) {
      case fixpt::Ovf::kSat:
      case fixpt::Ovf::kSatSym:
        return v > hi ? hi : lo;
      case fixpt::Ovf::kSatZero:
        return 0;
      case fixpt::Ovf::kWrap: {
        const unsigned __int128 mask =
            (static_cast<unsigned __int128>(1) << cs.w) - 1;
        unsigned __int128 u = static_cast<unsigned __int128>(v) & mask;
        if (cs.sgn && (u >> (cs.w - 1)) & 1) u |= ~mask;  // sign extend
        return static_cast<__int128>(u);
      }
    }
  }
  return v;
}

template <class CS>
inline hls::FxValue conv_pair(__int128 re, __int128 im, const CS& cs) {
  hls::FxValue out;
  out.fw = cs.out_fw;
  out.cplx = cs.out_cplx;
  out.re = conv_comp(re, cs);
  out.im = cs.out_cplx ? conv_comp(im, cs) : 0;
  return out;
}

}  // namespace

void Simulator::exec_span(const RegionPlan& rp, int span_index,
                          std::vector<FxValue>& vals, std::size_t region) {
  const Span sp = rp.spans[static_cast<size_t>(span_index)];
  // Spans contain exactly the ops the interpretive path would execute for
  // this (iteration, cycle), so one bulk add keeps SimStats identical.
  const long long n = sp.end - sp.begin;
  stats_.ops_executed += n;
  stats_.region_ops[region] += n;
  for (int i = sp.begin; i < sp.end; ++i) {
    const PlanOp& p = rp.ops[static_cast<size_t>(i)];
    switch (p.kind) {
      case OpKind::kConst:
        vals[static_cast<size_t>(p.dst)] =
            const_pool_[static_cast<size_t>(p.idx)];
        break;
      case OpKind::kVarRead:
        // Scalar registers forward: reads observe the latest write.
        vals[static_cast<size_t>(p.dst)] =
            var_state_[static_cast<size_t>(p.target)];
        break;
      case OpKind::kVarWrite: {
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        var_state_[static_cast<size_t>(p.target)] =
            conv_pair(a.re, a.im, p.conv);
        break;
      }
      case OpKind::kArrayRead:
        if (p.idx < 0)
          throw std::out_of_range("rtl: array read out of bounds");
        ++stats_.array_reads[static_cast<size_t>(p.target)];
        // Start-of-cycle state only: pending writes are not visible.
        vals[static_cast<size_t>(p.dst)] =
            array_state_[static_cast<size_t>(p.target)]
                        [static_cast<size_t>(p.idx)];
        break;
      case OpKind::kArrayWrite: {
        if (p.idx < 0)
          throw std::out_of_range("rtl: array write out of bounds");
        ++stats_.array_writes[static_cast<size_t>(p.target)];
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        pending_.push_back({{p.target, p.idx}, conv_pair(a.re, a.im, p.conv)});
        break;
      }
      case OpKind::kAdd: {
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        const FxValue& b = vals[static_cast<size_t>(p.a1)];
        vals[static_cast<size_t>(p.dst)] =
            conv_pair((a.re << p.sa) + (b.re << p.sb),
                      (a.im << p.sa) + (b.im << p.sb), p.conv);
        break;
      }
      case OpKind::kSub: {
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        const FxValue& b = vals[static_cast<size_t>(p.a1)];
        vals[static_cast<size_t>(p.dst)] =
            conv_pair((a.re << p.sa) - (b.re << p.sb),
                      (a.im << p.sa) - (b.im << p.sb), p.conv);
        break;
      }
      case OpKind::kMul: {
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        const FxValue& b = vals[static_cast<size_t>(p.a1)];
        vals[static_cast<size_t>(p.dst)] = conv_pair(
            a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re, p.conv);
        break;
      }
      case OpKind::kNeg: {
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        vals[static_cast<size_t>(p.dst)] = conv_pair(-a.re, -a.im, p.conv);
        break;
      }
      case OpKind::kCast: {
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        vals[static_cast<size_t>(p.dst)] = conv_pair(a.re, a.im, p.conv);
        break;
      }
      case OpKind::kSignConj: {
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        FxValue r;
        r.fw = 0;
        r.cplx = true;
        r.re = a.re >= 0 ? 1 : -1;
        r.im = a.im >= 0 ? -1 : 1;
        vals[static_cast<size_t>(p.dst)] = r;
        break;
      }
      case OpKind::kReal: {
        FxValue r = vals[static_cast<size_t>(p.a0)];
        r.im = 0;
        r.cplx = false;
        vals[static_cast<size_t>(p.dst)] = r;
        break;
      }
      case OpKind::kImag: {
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        FxValue r;
        r.fw = a.fw;
        r.re = a.im;
        vals[static_cast<size_t>(p.dst)] = r;
        break;
      }
      case OpKind::kMakeComplex: {
        // Second operand's REAL part becomes the imaginary component,
        // aligned like fx_add (see exec_op in hls/interp.cpp).
        const FxValue& a = vals[static_cast<size_t>(p.a0)];
        const FxValue& b = vals[static_cast<size_t>(p.a1)];
        vals[static_cast<size_t>(p.dst)] =
            conv_pair(a.re << p.sa, b.re << p.sb, p.conv);
        break;
      }
    }
  }
}

namespace {

// 64-bit twins of conv_round/conv_comp for narrow regions. Identical
// arithmetic — the plan proved every value and constant fits, so the
// results are bit-equal to the 128-bit versions.
template <class CS>
inline long long conv64_round(long long raw, const CS& cs) {
  const int d = -cs.shift;
  const long long base = raw >> d;  // arithmetic shift: floor
  const bool msb = ((raw >> (d - 1)) & 1) != 0;
  const bool rest = d >= 2 && (raw & ((1LL << (d - 1)) - 1)) != 0;
  const bool neg = raw < 0;
  const bool lsb_kept = (base & 1) != 0;
  return base +
         (fixpt::round_increment(cs.q, msb, rest, neg, lsb_kept) ? 1 : 0);
}

template <class CS>
inline long long conv64_comp(long long raw, const CS& cs) {
  using Mode = typename CS::Mode;
  switch (cs.mode) {
    case Mode::kShiftUp:
      return raw << cs.shift;
    case Mode::kShiftDown:
      return raw >> -cs.shift;
    case Mode::kRound:
      return conv64_round(raw, cs);
    case Mode::kFull:
      break;
  }
  const long long v = cs.shift >= 0 ? raw << cs.shift : conv64_round(raw, cs);
  const long long hi = (1LL << (cs.sgn ? cs.w - 1 : cs.w)) - 1;
  const long long lo = (cs.o == fixpt::Ovf::kSatSym && cs.sgn)
                           ? -hi
                           : cs.sgn ? -(1LL << (cs.w - 1)) : 0;
  if (v > hi || v < lo) {
    switch (cs.o) {
      case fixpt::Ovf::kSat:
      case fixpt::Ovf::kSatSym:
        return v > hi ? hi : lo;
      case fixpt::Ovf::kSatZero:
        return 0;
      case fixpt::Ovf::kWrap: {
        const unsigned long long mask = (1ULL << cs.w) - 1;
        unsigned long long u = static_cast<unsigned long long>(v) & mask;
        if (cs.sgn && (u >> (cs.w - 1)) & 1) u |= ~mask;  // sign extend
        return static_cast<long long>(u);
      }
    }
  }
  return v;
}

// Converts a narrow component pair into the baked destination format and
// materializes the FxValue for the var/array state boundary.
template <class CS>
inline hls::FxValue conv64_pair(long long re, long long im, const CS& cs) {
  hls::FxValue out;
  out.fw = cs.out_fw;
  out.cplx = cs.out_cplx;
  out.re = conv64_comp(re, cs);
  out.im = cs.out_cplx ? conv64_comp(im, cs) : 0;
  return out;
}

}  // namespace

void Simulator::exec_span_narrow(const RegionPlan& rp, int span_index,
                                 long long* vals, std::size_t region) {
  const Span sp = rp.spans[static_cast<size_t>(span_index)];
  const long long n = sp.end - sp.begin;
  stats_.ops_executed += n;
  stats_.region_ops[region] += n;
  for (int i = sp.begin; i < sp.end; ++i) {
    const PlanOp& p = rp.ops[static_cast<size_t>(i)];
    long long* d = vals + 2 * p.dst;
    switch (p.kind) {
      case OpKind::kConst: {
        const FxValue& c = const_pool_[static_cast<size_t>(p.idx)];
        d[0] = static_cast<long long>(c.re);
        d[1] = static_cast<long long>(c.im);
        break;
      }
      case OpKind::kVarRead: {
        const FxValue& v = var_state_[static_cast<size_t>(p.target)];
        d[0] = static_cast<long long>(v.re);
        d[1] = static_cast<long long>(v.im);
        break;
      }
      case OpKind::kVarWrite:
        var_state_[static_cast<size_t>(p.target)] =
            conv64_pair(vals[2 * p.a0], vals[2 * p.a0 + 1], p.conv);
        break;
      case OpKind::kArrayRead: {
        if (p.idx < 0)
          throw std::out_of_range("rtl: array read out of bounds");
        ++stats_.array_reads[static_cast<size_t>(p.target)];
        const FxValue& v = array_state_[static_cast<size_t>(p.target)]
                                       [static_cast<size_t>(p.idx)];
        d[0] = static_cast<long long>(v.re);
        d[1] = static_cast<long long>(v.im);
        break;
      }
      case OpKind::kArrayWrite:
        if (p.idx < 0)
          throw std::out_of_range("rtl: array write out of bounds");
        ++stats_.array_writes[static_cast<size_t>(p.target)];
        pending_.push_back(
            {{p.target, p.idx},
             conv64_pair(vals[2 * p.a0], vals[2 * p.a0 + 1], p.conv)});
        break;
      case OpKind::kAdd: {
        const long long ar = vals[2 * p.a0] << p.sa;
        const long long ai = vals[2 * p.a0 + 1] << p.sa;
        const long long br = vals[2 * p.a1] << p.sb;
        const long long bi = vals[2 * p.a1 + 1] << p.sb;
        d[0] = conv64_comp(ar + br, p.conv);
        d[1] = p.conv.out_cplx ? conv64_comp(ai + bi, p.conv) : 0;
        break;
      }
      case OpKind::kSub: {
        const long long ar = vals[2 * p.a0] << p.sa;
        const long long ai = vals[2 * p.a0 + 1] << p.sa;
        const long long br = vals[2 * p.a1] << p.sb;
        const long long bi = vals[2 * p.a1 + 1] << p.sb;
        d[0] = conv64_comp(ar - br, p.conv);
        d[1] = p.conv.out_cplx ? conv64_comp(ai - bi, p.conv) : 0;
        break;
      }
      case OpKind::kMul: {
        const long long ar = vals[2 * p.a0], ai = vals[2 * p.a0 + 1];
        const long long br = vals[2 * p.a1], bi = vals[2 * p.a1 + 1];
        d[0] = conv64_comp(ar * br - ai * bi, p.conv);
        d[1] = p.conv.out_cplx ? conv64_comp(ar * bi + ai * br, p.conv) : 0;
        break;
      }
      case OpKind::kNeg:
        d[0] = conv64_comp(-vals[2 * p.a0], p.conv);
        d[1] = p.conv.out_cplx ? conv64_comp(-vals[2 * p.a0 + 1], p.conv) : 0;
        break;
      case OpKind::kCast:
        d[0] = conv64_comp(vals[2 * p.a0], p.conv);
        d[1] = p.conv.out_cplx ? conv64_comp(vals[2 * p.a0 + 1], p.conv) : 0;
        break;
      case OpKind::kSignConj:
        d[0] = vals[2 * p.a0] >= 0 ? 1 : -1;
        d[1] = vals[2 * p.a0 + 1] >= 0 ? -1 : 1;
        break;
      case OpKind::kReal:
        d[0] = vals[2 * p.a0];
        d[1] = 0;
        break;
      case OpKind::kImag:
        d[0] = vals[2 * p.a0 + 1];
        d[1] = 0;
        break;
      case OpKind::kMakeComplex:
        // Second operand's REAL part becomes the imaginary component.
        d[0] = conv64_comp(vals[2 * p.a0] << p.sa, p.conv);
        d[1] = p.conv.out_cplx
                   ? conv64_comp(vals[2 * p.a1] << p.sb, p.conv)
                   : 0;
        break;
    }
  }
}

void Simulator::commit_pending() {
  stats_.array_commits += static_cast<long long>(pending_.size());
  stats_.max_commit_queue = std::max(stats_.max_commit_queue,
                                     static_cast<long long>(pending_.size()));
  // Last write (program order) wins, like a priority-encoded register load.
  for (const auto& [loc, value] : pending_)
    array_state_[static_cast<size_t>(loc.first)]
                [static_cast<size_t>(loc.second)] = value;
  pending_.clear();
  ++cycles_;
  ++stats_.cycles;
  if (trace_) trace_(cycles_ - 1, var_state_, array_state_);
}

void Simulator::load_inputs(const PortIo& in) {
  // Ports were bound to state indices (and sorted by name) at plan
  // compilation; both PortIo maps iterate in name order, so a single merge
  // walk replaces the per-port map lookups.
  auto ita = in.arrays.begin();
  for (const PortSlot& p : in_array_ports_) {
    while (ita != in.arrays.end() && ita->first < *p.name) ++ita;
    if (ita == in.arrays.end() || ita->first != *p.name)
      throw std::invalid_argument("rtl: missing input array port: " + *p.name);
    const Array& a = f_.arrays[static_cast<size_t>(p.index)];
    auto& dst = array_state_[static_cast<size_t>(p.index)];
    for (int j = 0; j < a.length; ++j)
      dst[static_cast<size_t>(j)] =
          fx_convert(ita->second[static_cast<size_t>(j)], a.elem);
  }
  auto itv = in.vars.begin();
  for (const PortSlot& p : in_var_ports_) {
    while (itv != in.vars.end() && itv->first < *p.name) ++itv;
    if (itv == in.vars.end() || itv->first != *p.name)
      throw std::invalid_argument("rtl: missing input var port: " + *p.name);
    var_state_[static_cast<size_t>(p.index)] =
        fx_convert(itv->second, f_.vars[static_cast<size_t>(p.index)].type);
  }
}

void Simulator::collect_outputs(PortIo* out) const {
  // Output slots are name-sorted, so every insertion lands at the map's
  // end with a valid hint: O(1) per port, no lookups.
  for (const PortSlot& p : out_array_ports_)
    out->arrays.emplace_hint(out->arrays.end(), *p.name,
                             array_state_[static_cast<size_t>(p.index)]);
  for (const PortSlot& p : out_var_ports_)
    out->vars.emplace_hint(out->vars.end(), *p.name,
                           var_state_[static_cast<size_t>(p.index)]);
}

void Simulator::run_regions_legacy() {
  for (std::size_t r = 0; r < f_.regions.size(); ++r) {
    const Region& region = f_.regions[r];
    const auto& rs = s_.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;

    if (!region.is_loop) {
      stats_.region_cycles[r] += rs.body.cycles;
      IterationCtx ctx;
      ctx.vals.resize(b.ops.size());
      for (int c = 0; c < rs.body.cycles; ++c) {
        exec_cycle(b, rs.body, &ctx, c, r);
        commit_pending();
      }
      continue;
    }

    if (rs.ii <= 0) {
      // Sequential loop: iterations back to back.
      stats_.region_cycles[r] +=
          static_cast<long long>(rs.trip) * rs.body.cycles;
      stats_.region_iters[r] += rs.trip;
      for (int k = 0; k < rs.trip; ++k) {
        IterationCtx ctx;
        ctx.k = k;
        ctx.vals.resize(b.ops.size());
        for (int c = 0; c < rs.body.cycles; ++c) {
          exec_cycle(b, rs.body, &ctx, c, r);
          commit_pending();
        }
      }
      continue;
    }

    // Pipelined loop: iteration k occupies global cycles
    // [k*ii, k*ii + depth); earlier iterations execute first in a cycle.
    const int depth = rs.body.cycles;
    const int total = depth + (rs.trip - 1) * rs.ii;
    stats_.region_cycles[r] += total;
    stats_.region_iters[r] += rs.trip;
    std::vector<IterationCtx> iters(static_cast<size_t>(rs.trip));
    for (int k = 0; k < rs.trip; ++k) {
      iters[static_cast<size_t>(k)].k = k;
      iters[static_cast<size_t>(k)].vals.resize(b.ops.size());
    }
    for (int t = 0; t < total; ++t) {
      for (int k = 0; k < rs.trip; ++k) {
        const int local = t - k * rs.ii;
        if (local < 0 || local >= depth) continue;
        exec_cycle(b, rs.body, &iters[static_cast<size_t>(k)], local, r);
      }
      commit_pending();
    }
  }
}

void Simulator::run_regions_compiled() {
  for (std::size_t r = 0; r < plan_.size(); ++r) {
    const RegionPlan& rp = plan_[r];
    // Same region-occupancy accounting as the interpretive path (SimStats
    // stays bit-identical across execution engines).
    stats_.region_cycles[r] +=
        rp.pipelined
            ? rp.depth + static_cast<long long>(rp.trip - 1) * rp.ii
            : static_cast<long long>(rp.trip) * rp.depth;
    if (f_.regions[r].is_loop) stats_.region_iters[r] += rp.trip;

    if (!rp.pipelined) {
      // Straight block (trip 1) or sequential loop: one value buffer
      // reused across iterations and runs. Every executed op rewrites its
      // slot each iteration, so the only refresh needed is the zero-list:
      // slots whose producer becomes guard-skipped at this iteration.
      for (int k = 0; k < rp.trip; ++k) {
        const Span zs = rp.zero_spans[static_cast<size_t>(k)];
        if (rp.narrow) {
          long long* vals = ctx64_pool_[static_cast<size_t>(rp.ctx_base)]
                                .data();
          for (int z = zs.begin; z < zs.end; ++z) {
            const int s = rp.zero_slots[static_cast<size_t>(z)];
            vals[2 * s] = 0;
            vals[2 * s + 1] = 0;
          }
          for (int c = 0; c < rp.depth; ++c) {
            exec_span_narrow(rp, k * rp.depth + c, vals, r);
            commit_pending();
          }
        } else {
          std::vector<FxValue>& vals =
              ctx_pool_[static_cast<size_t>(rp.ctx_base)];
          for (int z = zs.begin; z < zs.end; ++z)
            vals[static_cast<size_t>(
                rp.zero_slots[static_cast<size_t>(z)])] = FxValue{};
          for (int c = 0; c < rp.depth; ++c) {
            exec_span(rp, k * rp.depth + c, vals, r);
            commit_pending();
          }
        }
      }
      continue;
    }

    // Pipelined loop: iteration k occupies global cycles
    // [k*ii, k*ii + depth); earlier iterations execute first in a cycle.
    // Only the active iteration window [k_lo, k_hi] is visited per cycle
    // (the interpretive path scans every iteration every cycle). Each
    // iteration has its own value buffer; guard-skipped slots were zeroed
    // at construction and are never written, so no per-run refresh.
    const int total = rp.depth + (rp.trip - 1) * rp.ii;
    for (int t = 0; t < total; ++t) {
      const int k_hi = std::min(rp.trip - 1, t / rp.ii);
      const int k_lo = t < rp.depth ? 0 : (t - rp.depth) / rp.ii + 1;
      if (rp.narrow) {
        for (int k = k_lo; k <= k_hi; ++k)
          exec_span_narrow(
              rp, k * rp.depth + (t - k * rp.ii),
              ctx64_pool_[static_cast<size_t>(rp.ctx_base + k)].data(), r);
      } else {
        for (int k = k_lo; k <= k_hi; ++k)
          exec_span(rp, k * rp.depth + (t - k * rp.ii),
                    ctx_pool_[static_cast<size_t>(rp.ctx_base + k)], r);
      }
      commit_pending();
    }
  }
}

PortIo Simulator::run_one(const PortIo& in) {
  ++stats_.invocations;
  load_inputs(in);
  if (opts_.compiled)
    run_regions_compiled();
  else
    run_regions_legacy();
  PortIo out;
  collect_outputs(&out);
  return out;
}

PortIo Simulator::run(const PortIo& in) {
  obs::ScopedSpan span("run", "rtl.sim");
  const long long cycles_before = cycles_;
  PortIo out = run_one(in);
  if (span.active()) {
    const long long ran = cycles_ - cycles_before;
    span.arg("function", f_.name);
    span.arg("cycles", ran);
    auto& m = obs::MetricsRegistry::instance();
    m.add("rtl.sim.invocations");
    m.add("rtl.sim.cycles", static_cast<double>(ran));
  }
  return out;
}

std::vector<PortIo> Simulator::run_stream(const std::vector<PortIo>& ins) {
  obs::ScopedSpan span("run_stream", "rtl.sim");
  const long long cycles_before = cycles_;
  std::vector<PortIo> outs;
  outs.reserve(ins.size());
  for (const auto& in : ins) outs.push_back(run_one(in));
  if (span.active()) {
    const long long ran = cycles_ - cycles_before;
    span.arg("function", f_.name);
    span.arg("symbols", static_cast<long long>(ins.size()));
    span.arg("cycles", ran);
    auto& m = obs::MetricsRegistry::instance();
    m.add("rtl.sim.invocations", static_cast<double>(ins.size()));
    m.add("rtl.sim.cycles", static_cast<double>(ran));
  }
  return outs;
}

PortStream Simulator::run_stream(const PortStream& in) {
  obs::ScopedSpan span("run_stream", "rtl.sim");
  const long long cycles_before = cycles_;
  const int n = in.symbols;

  // Bind every input port to its channel once for the whole batch.
  std::vector<const PortStream::ArrayChannel*> abind;
  abind.reserve(in_array_ports_.size());
  for (const PortSlot& p : in_array_ports_) {
    const PortStream::ArrayChannel* found = nullptr;
    for (const auto& c : in.arrays)
      if (c.name == *p.name) {
        found = &c;
        break;
      }
    if (!found)
      throw std::invalid_argument("rtl: missing input array port: " + *p.name);
    const Array& a = f_.arrays[static_cast<size_t>(p.index)];
    if (found->length != a.length)
      throw std::invalid_argument("rtl: input array port size mismatch: " +
                                  *p.name);
    if (found->values.size() !=
        static_cast<std::size_t>(n) * static_cast<std::size_t>(a.length))
      throw std::invalid_argument("rtl: stream channel size mismatch: " +
                                  *p.name);
    abind.push_back(found);
  }
  std::vector<const PortStream::VarChannel*> vbind;
  vbind.reserve(in_var_ports_.size());
  for (const PortSlot& p : in_var_ports_) {
    const PortStream::VarChannel* found = nullptr;
    for (const auto& c : in.vars)
      if (c.name == *p.name) {
        found = &c;
        break;
      }
    if (!found)
      throw std::invalid_argument("rtl: missing input var port: " + *p.name);
    if (found->values.size() != static_cast<std::size_t>(n))
      throw std::invalid_argument("rtl: stream channel size mismatch: " +
                                  *p.name);
    vbind.push_back(found);
  }

  PortStream out;
  out.symbols = n;
  for (const PortSlot& p : out_array_ports_) {
    const Array& a = f_.arrays[static_cast<size_t>(p.index)];
    auto& c = out.add_array(*p.name, a.length);
    c.values.reserve(static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(a.length));
  }
  for (const PortSlot& p : out_var_ports_) {
    auto& c = out.add_var(*p.name);
    c.values.reserve(static_cast<std::size_t>(n));
  }

  for (int sym = 0; sym < n; ++sym) {
    ++stats_.invocations;
    for (std::size_t i = 0; i < in_array_ports_.size(); ++i) {
      const PortSlot& p = in_array_ports_[i];
      const Array& a = f_.arrays[static_cast<size_t>(p.index)];
      auto& dst = array_state_[static_cast<size_t>(p.index)];
      const std::size_t base = static_cast<std::size_t>(sym) *
                               static_cast<std::size_t>(a.length);
      for (int j = 0; j < a.length; ++j)
        dst[static_cast<size_t>(j)] =
            fx_convert(abind[i]->values[base + static_cast<size_t>(j)],
                       a.elem);
    }
    for (std::size_t i = 0; i < in_var_ports_.size(); ++i) {
      const PortSlot& p = in_var_ports_[i];
      var_state_[static_cast<size_t>(p.index)] =
          fx_convert(vbind[i]->values[static_cast<size_t>(sym)],
                     f_.vars[static_cast<size_t>(p.index)].type);
    }
    if (opts_.compiled)
      run_regions_compiled();
    else
      run_regions_legacy();
    for (std::size_t i = 0; i < out_array_ports_.size(); ++i) {
      const auto& src =
          array_state_[static_cast<size_t>(out_array_ports_[i].index)];
      out.arrays[i].values.insert(out.arrays[i].values.end(), src.begin(),
                                  src.end());
    }
    for (std::size_t i = 0; i < out_var_ports_.size(); ++i)
      out.vars[i].values.push_back(
          var_state_[static_cast<size_t>(out_var_ports_[i].index)]);
  }

  if (span.active()) {
    const long long ran = cycles_ - cycles_before;
    span.arg("function", f_.name);
    span.arg("symbols", static_cast<long long>(n));
    span.arg("cycles", ran);
    auto& m = obs::MetricsRegistry::instance();
    m.add("rtl.sim.invocations", static_cast<double>(n));
    m.add("rtl.sim.cycles", static_cast<double>(ran));
  }
  return out;
}

obs::Json sim_stats_json(const Simulator& sim) {
  const SimStats& st = sim.stats();
  obs::Json regions = obs::Json::array();
  for (std::size_t i = 0; i < st.region_labels.size(); ++i)
    regions.push(obs::Json::object()
                     .set("label", st.region_labels[i])
                     .set("ops", st.region_ops[i])
                     .set("cycles", st.region_cycles[i])
                     .set("iters", st.region_iters[i]));
  obs::Json arrays = obs::Json::array();
  for (std::size_t i = 0; i < st.array_labels.size(); ++i)
    arrays.push(obs::Json::object()
                    .set("name", st.array_labels[i])
                    .set("reads", st.array_reads[i])
                    .set("writes", st.array_writes[i]));
  // schema_version 2: regions gained cycles/iters, arrays section added.
  return obs::Json::object()
      .set("tool", "hlsw.rtl_sim")
      .set("schema_version", 2)
      .set("function", sim.function().name)
      .set("invocations", st.invocations)
      .set("cycles", st.cycles)
      .set("ops_executed", st.ops_executed)
      .set("array_commits", st.array_commits)
      .set("max_commit_queue", st.max_commit_queue)
      .set("regions", std::move(regions))
      .set("arrays", std::move(arrays));
}

bool write_sim_stats_json(const Simulator& sim, const std::string& path) {
  return obs::StructuredReport::write_json_file(path, sim_stats_json(sim));
}

hls::CounterValues read_counters(const Simulator& sim,
                                 const std::vector<hls::PerfCounter>& map) {
  const SimStats& st = sim.stats();
  hls::CounterValues out;
  out.source = "rtl_sim";
  for (const hls::PerfCounter& c : map) {
    long long v = 0;
    switch (c.kind) {
      case hls::CounterKind::kInvocations:
        v = st.invocations;
        break;
      case hls::CounterKind::kActiveCycles:
        v = st.cycles;
        break;
      case hls::CounterKind::kRegionCycles:
        v = st.region_cycles[static_cast<size_t>(c.region)];
        break;
      case hls::CounterKind::kLoopIters:
        v = st.region_iters[static_cast<size_t>(c.region)];
        break;
      case hls::CounterKind::kLoopStall:
        // The simulator executes the schedule model: pipelined iterations
        // genuinely overlap, so no serialization bubbles ever occur.
        v = 0;
        break;
      case hls::CounterKind::kMemReads:
        v = st.array_reads[static_cast<size_t>(c.array)];
        break;
      case hls::CounterKind::kMemWrites:
        v = st.array_writes[static_cast<size_t>(c.array)];
        break;
    }
    // Hardware counters are c.width-bit wrapping registers; wrap the
    // unbounded software count the same way so the legs stay comparable.
    if (c.width < 64) v &= (1LL << c.width) - 1;
    out.values[c.name] = v;
  }
  return out;
}

}  // namespace hlsw::rtl
