#include "rtl/sim.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace hlsw::rtl {

using hls::Array;
using hls::Block;
using hls::BlockSchedule;
using hls::FxValue;
using hls::Op;
using hls::OpKind;
using hls::PortDir;
using hls::PortIo;
using hls::Region;

Simulator::Simulator(hls::Function f, hls::Schedule s)
    : f_(std::move(f)), s_(std::move(s)) {
  assert(f_.regions.size() == s_.regions.size());
  reset();
}

void Simulator::reset() {
  var_state_.clear();
  array_state_.clear();
  pending_.clear();
  cycles_ = 0;
  stats_ = SimStats{};
  for (const auto& region : f_.regions) {
    stats_.region_labels.push_back(region.is_loop ? region.loop.label
                                                  : region.name);
    stats_.region_ops.push_back(0);
  }
  for (const auto& v : f_.vars) {
    FxValue init = v.init;
    init.fw = v.type.fw();
    init.cplx = v.type.cplx;
    var_state_.push_back(init);
  }
  for (const auto& a : f_.arrays) {
    FxValue zero;
    zero.fw = a.elem.fw();
    zero.cplx = a.elem.cplx;
    array_state_.emplace_back(static_cast<size_t>(a.length), zero);
  }
}

const std::vector<FxValue>& Simulator::array_state(
    const std::string& name) const {
  const int i = f_.array_index(name);
  assert(i >= 0);
  return array_state_[static_cast<size_t>(i)];
}

void Simulator::set_array_state(const std::string& name,
                                const std::vector<FxValue>& values) {
  const int i = f_.array_index(name);
  assert(i >= 0);
  const Array& a = f_.arrays[static_cast<size_t>(i)];
  assert(static_cast<int>(values.size()) == a.length);
  for (int j = 0; j < a.length; ++j)
    array_state_[static_cast<size_t>(i)][static_cast<size_t>(j)] =
        fx_convert(values[static_cast<size_t>(j)], a.elem);
}

void Simulator::exec_cycle(const Block& b, const BlockSchedule& sched,
                           IterationCtx* ctx, int body_cycle,
                           std::size_t region) {
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    if (sched.place[i].cycle != body_cycle) continue;
    const Op& op = b.ops[i];
    if (op.guard_trip >= 0 && ctx->k >= op.guard_trip) continue;
    ++stats_.ops_executed;
    ++stats_.region_ops[region];
    switch (op.kind) {
      case OpKind::kVarRead:
        // Scalar registers forward: reads observe the latest write.
        ctx->vals[i] = var_state_[static_cast<size_t>(op.var)];
        break;
      case OpKind::kVarWrite:
        var_state_[static_cast<size_t>(op.var)] = fx_convert(
            ctx->vals[static_cast<size_t>(op.args[0])],
            f_.vars[static_cast<size_t>(op.var)].type);
        break;
      case OpKind::kArrayRead: {
        const int idx = op.idx.eval(ctx->k);
        const auto& arr = array_state_[static_cast<size_t>(op.array)];
        if (idx < 0 || idx >= static_cast<int>(arr.size()))
          throw std::out_of_range("rtl: array read out of bounds");
        // Start-of-cycle state only: pending writes are not visible.
        ctx->vals[i] = arr[static_cast<size_t>(idx)];
        break;
      }
      case OpKind::kArrayWrite: {
        const int idx = op.idx.eval(ctx->k);
        if (idx < 0 ||
            idx >= f_.arrays[static_cast<size_t>(op.array)].length)
          throw std::out_of_range("rtl: array write out of bounds");
        const Array& a = f_.arrays[static_cast<size_t>(op.array)];
        pending_.push_back(
            {{op.array, idx},
             fx_convert(ctx->vals[static_cast<size_t>(op.args[0])], a.elem)});
        break;
      }
      default: {
        const FxValue* a0 =
            !op.args.empty() ? &ctx->vals[static_cast<size_t>(op.args[0])]
                             : nullptr;
        const FxValue* a1 = op.args.size() > 1
                                ? &ctx->vals[static_cast<size_t>(op.args[1])]
                                : nullptr;
        ctx->vals[i] = exec_op(op, a0, a1);
        break;
      }
    }
  }
}

void Simulator::commit_pending() {
  stats_.array_commits += static_cast<long long>(pending_.size());
  stats_.max_commit_queue = std::max(stats_.max_commit_queue,
                                     static_cast<long long>(pending_.size()));
  // Last write (program order) wins, like a priority-encoded register load.
  for (const auto& [loc, value] : pending_)
    array_state_[static_cast<size_t>(loc.first)]
                [static_cast<size_t>(loc.second)] = value;
  pending_.clear();
  ++cycles_;
  ++stats_.cycles;
  if (trace_) trace_(cycles_ - 1, var_state_, array_state_);
}

PortIo Simulator::run(const PortIo& in) {
  obs::ScopedSpan span("run", "rtl.sim");
  const long long cycles_before = cycles_;
  ++stats_.invocations;
  // Load input ports (the environment drives them before start).
  for (std::size_t i = 0; i < f_.arrays.size(); ++i) {
    const Array& a = f_.arrays[i];
    if (a.port != PortDir::kIn && a.port != PortDir::kInOut) continue;
    auto it = in.arrays.find(a.name);
    if (it == in.arrays.end())
      throw std::invalid_argument("rtl: missing input array port: " + a.name);
    for (int j = 0; j < a.length; ++j)
      array_state_[i][static_cast<size_t>(j)] =
          fx_convert(it->second[static_cast<size_t>(j)], a.elem);
  }
  for (std::size_t i = 0; i < f_.vars.size(); ++i) {
    const auto& v = f_.vars[i];
    if (v.port != PortDir::kIn && v.port != PortDir::kInOut) continue;
    auto it = in.vars.find(v.name);
    if (it == in.vars.end())
      throw std::invalid_argument("rtl: missing input var port: " + v.name);
    var_state_[i] = fx_convert(it->second, v.type);
  }

  for (std::size_t r = 0; r < f_.regions.size(); ++r) {
    const Region& region = f_.regions[r];
    const auto& rs = s_.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;

    if (!region.is_loop) {
      IterationCtx ctx;
      ctx.vals.resize(b.ops.size());
      for (int c = 0; c < rs.body.cycles; ++c) {
        exec_cycle(b, rs.body, &ctx, c, r);
        commit_pending();
      }
      continue;
    }

    if (rs.ii <= 0) {
      // Sequential loop: iterations back to back.
      for (int k = 0; k < rs.trip; ++k) {
        IterationCtx ctx;
        ctx.k = k;
        ctx.vals.resize(b.ops.size());
        for (int c = 0; c < rs.body.cycles; ++c) {
          exec_cycle(b, rs.body, &ctx, c, r);
          commit_pending();
        }
      }
      continue;
    }

    // Pipelined loop: iteration k occupies global cycles
    // [k*ii, k*ii + depth); earlier iterations execute first in a cycle.
    const int depth = rs.body.cycles;
    const int total = depth + (rs.trip - 1) * rs.ii;
    std::vector<IterationCtx> iters(static_cast<size_t>(rs.trip));
    for (int k = 0; k < rs.trip; ++k) {
      iters[static_cast<size_t>(k)].k = k;
      iters[static_cast<size_t>(k)].vals.resize(b.ops.size());
    }
    for (int t = 0; t < total; ++t) {
      for (int k = 0; k < rs.trip; ++k) {
        const int local = t - k * rs.ii;
        if (local < 0 || local >= depth) continue;
        exec_cycle(b, rs.body, &iters[static_cast<size_t>(k)], local, r);
      }
      commit_pending();
    }
  }

  PortIo out;
  for (std::size_t i = 0; i < f_.arrays.size(); ++i) {
    const Array& a = f_.arrays[i];
    if (a.port == PortDir::kOut || a.port == PortDir::kInOut)
      out.arrays[a.name] = array_state_[i];
  }
  for (std::size_t i = 0; i < f_.vars.size(); ++i) {
    const auto& v = f_.vars[i];
    if (v.port == PortDir::kOut || v.port == PortDir::kInOut)
      out.vars[v.name] = var_state_[i];
  }
  if (span.active()) {
    const long long ran = cycles_ - cycles_before;
    span.arg("function", f_.name);
    span.arg("cycles", ran);
    auto& m = obs::MetricsRegistry::instance();
    m.add("rtl.sim.invocations");
    m.add("rtl.sim.cycles", static_cast<double>(ran));
  }
  return out;
}

obs::Json sim_stats_json(const Simulator& sim) {
  const SimStats& st = sim.stats();
  obs::Json regions = obs::Json::array();
  for (std::size_t i = 0; i < st.region_labels.size(); ++i)
    regions.push(obs::Json::object()
                     .set("label", st.region_labels[i])
                     .set("ops", st.region_ops[i]));
  return obs::Json::object()
      .set("tool", "hlsw.rtl_sim")
      .set("schema_version", 1)
      .set("function", sim.function().name)
      .set("invocations", st.invocations)
      .set("cycles", st.cycles)
      .set("ops_executed", st.ops_executed)
      .set("array_commits", st.array_commits)
      .set("max_commit_queue", st.max_commit_queue)
      .set("regions", std::move(regions));
}

bool write_sim_stats_json(const Simulator& sim, const std::string& path) {
  return obs::StructuredReport::write_json_file(path, sim_stats_json(sim));
}

}  // namespace hlsw::rtl
