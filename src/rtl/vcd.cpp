#include "rtl/vcd.h"

#include <sstream>

namespace hlsw::rtl {

using hls::FxValue;

// ---- VcdCore ---------------------------------------------------------------

std::string VcdCore::make_id(int n) {
  // Printable VCD identifiers: base-94 over '!'..'~'.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n > 0);
  return id;
}

VcdCore::VcdCore(double timescale_ns, std::string scope, std::string version)
    : timescale_ns_(timescale_ns),
      scope_(std::move(scope)),
      version_(std::move(version)) {}

int VcdCore::add_signal(const std::string& name, int width) {
  Entry e;
  e.name = name;
  e.width = width;
  e.id = make_id(static_cast<int>(signals_.size()));
  signals_.push_back(std::move(e));
  return static_cast<int>(signals_.size()) - 1;
}

void VcdCore::change(long long time, int handle, long long value) {
  Entry& s = signals_[static_cast<size_t>(handle)];
  if (s.has_last && value == s.last) return;
  std::ostringstream os;
  if (time != stamped_time_) {
    os << "#" << time << "\n";
    stamped_time_ = time;
  }
  os << "b";
  for (int bit = s.width - 1; bit >= 0; --bit)
    os << ((value >> bit) & 1 ? '1' : '0');
  os << " " << s.id << "\n";
  s.last = value;
  s.has_last = true;
  body_ += os.str();
}

std::string VcdCore::str(long long end_time) const {
  std::ostringstream os;
  os << "$date hlsw $end\n";
  os << "$version " << version_ << " $end\n";
  os << "$timescale " << static_cast<long long>(timescale_ns_ * 1000)
     << "ps $end\n";
  os << "$scope module " << scope_ << " $end\n";
  for (const auto& s : signals_)
    os << "$var wire " << s.width << " " << s.id << " " << s.name
       << " $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";
  os << body_;
  if (end_time >= 0) os << "#" << end_time << "\n";
  return os.str();
}

// ---- VcdWriter -------------------------------------------------------------

VcdWriter::VcdWriter(const hls::Function& f, double timescale_ns)
    : core_(timescale_ns) {
  auto add = [&](const std::string& name, int width, bool is_array, int index,
                 int element, bool imag) {
    Signal s;
    s.is_array = is_array;
    s.index = index;
    s.element = element;
    s.imag = imag;
    s.handle = core_.add_signal(name, width);
    signals_.push_back(s);
  };
  for (std::size_t v = 0; v < f.vars.size(); ++v) {
    const auto& var = f.vars[v];
    if (var.type.cplx) {
      add(var.name + "_re", var.type.w, false, static_cast<int>(v), 0, false);
      add(var.name + "_im", var.type.w, false, static_cast<int>(v), 0, true);
    } else {
      add(var.name, var.type.w, false, static_cast<int>(v), 0, false);
    }
  }
  for (std::size_t a = 0; a < f.arrays.size(); ++a) {
    const auto& arr = f.arrays[a];
    for (int j = 0; j < arr.length; ++j) {
      const std::string base = arr.name + "[" + std::to_string(j) + "]";
      if (arr.elem.cplx) {
        add(base + "_re", arr.elem.w, true, static_cast<int>(a), j, false);
        add(base + "_im", arr.elem.w, true, static_cast<int>(a), j, true);
      } else {
        add(base, arr.elem.w, true, static_cast<int>(a), j, false);
      }
    }
  }
}

long long VcdWriter::fetch(
    const Signal& s, const std::vector<FxValue>& vars,
    const std::vector<std::vector<FxValue>>& arrays) {
  const FxValue& v =
      s.is_array ? arrays[static_cast<size_t>(s.index)]
                         [static_cast<size_t>(s.element)]
                 : vars[static_cast<size_t>(s.index)];
  return static_cast<long long>(s.imag ? v.im : v.re);
}

void VcdWriter::sample(long long cycle, const std::vector<FxValue>& vars,
                       const std::vector<std::vector<FxValue>>& arrays) {
  for (const auto& s : signals_)
    core_.change(cycle, s.handle, fetch(s, vars, arrays));
  last_cycle_ = cycle;
}

std::string VcdWriter::str() const {
  return core_.str(last_cycle_ >= 0 ? last_cycle_ + 1 : -1);
}

}  // namespace hlsw::rtl
