#include "rtl/vcd.h"

#include <sstream>

namespace hlsw::rtl {

using hls::FxValue;

std::string VcdWriter::make_id(int n) {
  // Printable VCD identifiers: base-94 over '!'..'~'.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n > 0);
  return id;
}

VcdWriter::VcdWriter(const hls::Function& f, double timescale_ns)
    : timescale_ns_(timescale_ns) {
  int serial = 0;
  auto add = [&](const std::string& name, int width, bool is_array, int index,
                 int element, bool imag) {
    Signal s;
    s.name = name;
    s.width = width;
    s.is_array = is_array;
    s.index = index;
    s.element = element;
    s.imag = imag;
    s.id = make_id(serial++);
    signals_.push_back(std::move(s));
  };
  for (std::size_t v = 0; v < f.vars.size(); ++v) {
    const auto& var = f.vars[v];
    if (var.type.cplx) {
      add(var.name + "_re", var.type.w, false, static_cast<int>(v), 0, false);
      add(var.name + "_im", var.type.w, false, static_cast<int>(v), 0, true);
    } else {
      add(var.name, var.type.w, false, static_cast<int>(v), 0, false);
    }
  }
  for (std::size_t a = 0; a < f.arrays.size(); ++a) {
    const auto& arr = f.arrays[a];
    for (int j = 0; j < arr.length; ++j) {
      const std::string base = arr.name + "[" + std::to_string(j) + "]";
      if (arr.elem.cplx) {
        add(base + "_re", arr.elem.w, true, static_cast<int>(a), j, false);
        add(base + "_im", arr.elem.w, true, static_cast<int>(a), j, true);
      } else {
        add(base, arr.elem.w, true, static_cast<int>(a), j, false);
      }
    }
  }
}

long long VcdWriter::fetch(
    const Signal& s, const std::vector<FxValue>& vars,
    const std::vector<std::vector<FxValue>>& arrays) {
  const FxValue& v =
      s.is_array ? arrays[static_cast<size_t>(s.index)]
                         [static_cast<size_t>(s.element)]
                 : vars[static_cast<size_t>(s.index)];
  return static_cast<long long>(s.imag ? v.im : v.re);
}

void VcdWriter::sample(long long cycle, const std::vector<FxValue>& vars,
                       const std::vector<std::vector<FxValue>>& arrays) {
  std::ostringstream os;
  bool stamped = false;
  for (auto& s : signals_) {
    const long long value = fetch(s, vars, arrays);
    if (s.has_last && value == s.last) continue;
    if (!stamped) {
      os << "#" << cycle << "\n";
      stamped = true;
    }
    os << "b";
    for (int bit = s.width - 1; bit >= 0; --bit)
      os << ((value >> bit) & 1 ? '1' : '0');
    os << " " << s.id << "\n";
    s.last = value;
    s.has_last = true;
  }
  body_ += os.str();
  last_cycle_ = cycle;
}

std::string VcdWriter::str() const {
  std::ostringstream os;
  os << "$date hlsw $end\n";
  os << "$version hlsw rtl simulator $end\n";
  os << "$timescale " << static_cast<long long>(timescale_ns_ * 1000)
     << "ps $end\n";
  os << "$scope module dut $end\n";
  for (const auto& s : signals_)
    os << "$var wire " << s.width << " " << s.id << " " << s.name
       << " $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";
  os << body_;
  if (last_cycle_ >= 0) os << "#" << last_cycle_ + 1 << "\n";
  return os.str();
}

}  // namespace hlsw::rtl
