// Verilog-2001 emitter: renders a scheduled design as a synthesizable
// FSM + datapath module — the "generated RTL" of the paper's flow, suitable
// for RTL synthesis or FPGA prototyping (paper section 1: the generated RTL
// is used to obtain an FPGA prototype for functional verification).
//
// Generated module shape:
//  * start/done handshake around one invocation;
//  * one always-block FSM, one state per scheduled (region, cycle), loop
//    regions driven by an iteration counter;
//  * arrays as register files (`reg [..] name [0:N-1]`), variables and
//    per-op pipeline values as registers;
//  * all datapath values carried as 64-bit signed wires at their natural
//    binary scale, with quantization/overflow logic emitted inline per the
//    destination type (the same rounding rules as fixpt::round_increment).
//
// hlsw::rtl::Simulator is the executable semantics of this text; the
// emitter and simulator are generated from the same schedule, and the
// structural tests in tests/rtl/verilog_test.cpp keep them aligned.
#pragma once

#include <string>

#include "hls/ir.h"
#include "hls/schedule.h"

namespace hlsw::rtl {

struct VerilogOptions {
  std::string module_name;  // defaults to the function name when empty
  bool include_header_comment = true;
};

// Emits the full module text for a scheduled (post-transform) function.
std::string emit_verilog(const hls::Function& f, const hls::Schedule& s,
                         const VerilogOptions& opts = {});

}  // namespace hlsw::rtl
