// Verilog-2001 emitter: renders a scheduled design as a synthesizable
// FSM + datapath module — the "generated RTL" of the paper's flow, suitable
// for RTL synthesis or FPGA prototyping (paper section 1: the generated RTL
// is used to obtain an FPGA prototype for functional verification).
//
// Generated module shape:
//  * start/done handshake around one invocation;
//  * one always-block FSM, one state per scheduled (region, cycle), loop
//    regions driven by an iteration counter;
//  * arrays as register files (`reg [..] name [0:N-1]`), variables and
//    per-op pipeline values as registers;
//  * all datapath values carried as 64-bit signed wires at their natural
//    binary scale, with quantization/overflow logic emitted inline per the
//    destination type (the same rounding rules as fixpt::round_increment).
//
// hlsw::rtl::Simulator is the executable semantics of this text; the
// emitter and simulator are generated from the same schedule, and the
// structural tests in tests/rtl/verilog_test.cpp keep them aligned.
#pragma once

#include <string>

#include "hls/ir.h"
#include "hls/profile.h"
#include "hls/schedule.h"

namespace hlsw::rtl {

struct VerilogOptions {
  std::string module_name;  // defaults to the function name when empty
  bool include_header_comment = true;
  // On-chip performance counters (hls/profile.h). Off by default; with
  // instrument.enabled == false the emitted text is byte-identical to an
  // uninstrumented module. When enabled, every counter named by
  // hls::instrument_map(f, s, instrument) is synthesized as a `perf_*`
  // register: zeroed on rst, cumulative across invocations otherwise, and
  // optionally readable through a perf_sel/perf_rdata mux.
  hls::InstrumentOptions instrument;
};

// Emits the full module text for a scheduled (post-transform) function.
std::string emit_verilog(const hls::Function& f, const hls::Schedule& s,
                         const VerilogOptions& opts = {});

}  // namespace hlsw::rtl
