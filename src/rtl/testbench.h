// Self-checking Verilog testbench generator: captures stimulus/response
// vectors from the cycle-accurate rtl::Simulator and renders a testbench
// that drives the emitted module and compares every output — so the
// generated RTL can be verified bit-for-bit in any external Verilog
// simulator, completing the paper's "verify the generated RTL" flow for
// users who do have one.
#pragma once

#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/ir.h"
#include "hls/schedule.h"

namespace hlsw::rtl {

struct TestVector {
  hls::PortIo inputs;
  hls::PortIo outputs;  // expected (from the simulator)
};

// Runs the simulator over `inputs` and returns paired vectors.
std::vector<TestVector> capture_vectors(const hls::Function& f,
                                        const hls::Schedule& s,
                                        const std::vector<hls::PortIo>& inputs);

// Emits a self-checking testbench for the module produced by emit_verilog
// with the same function/schedule. The testbench pulses start, waits for
// done, and $display's PASS/FAIL per vector plus a summary.
std::string emit_testbench(const hls::Function& f,
                           const std::vector<TestVector>& vectors,
                           const std::string& module_name);

}  // namespace hlsw::rtl
