// Self-checking Verilog testbench generator: captures stimulus/response
// vectors from the cycle-accurate rtl::Simulator and renders a testbench
// that drives the emitted module and compares every output — so the
// generated RTL can be verified bit-for-bit in any Verilog simulator,
// including the in-process vsim::run_testbench, completing the paper's
// "verify the generated RTL" flow without external tools.
#pragma once

#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/ir.h"
#include "hls/schedule.h"

namespace hlsw::rtl {

struct TestVector {
  hls::PortIo inputs;
  hls::PortIo outputs;  // expected (from the simulator)
};

// Runs the simulator over `inputs` and returns paired vectors.
std::vector<TestVector> capture_vectors(const hls::Function& f,
                                        const hls::Schedule& s,
                                        const std::vector<hls::PortIo>& inputs);

// One flattened Verilog pin of the emitted module: scalar ports map to one
// pin (two when complex), array ports to one pin per element/component.
// Shared by the testbench emitter and vsim::DutHarness so both agree with
// emit_verilog on pin naming.
struct PortPin {
  std::string name;  // Verilog pin name (e.g. "x_in_0_re")
  int width;
  bool is_input;
  // Locator in a PortIo plus the fixed-point shape for reconstruction.
  bool from_array;
  std::string port;
  int index;
  bool re;    // real component (false = imaginary)
  int fw;     // fraction width of the port's type
  bool cplx;  // the port's type is complex
  bool sgn;   // the port's type is signed (unsigned pins zero-extend)
};

std::vector<PortPin> flatten_port_pins(const hls::Function& f);

// Raw two's-complement component value of the pin in `io` (0 if absent).
long long pin_value(const PortPin& p, const hls::PortIo& io);

struct TestbenchOptions {
  // When non-empty the testbench opens a waveform dump: $dumpfile("...")
  // plus an argumentless $dumpvars before the first vector.
  std::string dumpfile;
};

// Emits a self-checking testbench for the module produced by emit_verilog
// with the same function/schedule. The testbench pulses start, waits for
// done, and $display's PASS/FAIL per vector plus a summary.
std::string emit_testbench(const hls::Function& f,
                           const std::vector<TestVector>& vectors,
                           const std::string& module_name,
                           const TestbenchOptions& opts = {});

}  // namespace hlsw::rtl
