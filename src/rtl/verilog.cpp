#include "rtl/verilog.h"

#include <cassert>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace hlsw::rtl {

using hls::Array;
using hls::ArrayMapping;
using hls::Block;
using hls::Function;
using hls::FxType;
using hls::Op;
using hls::OpKind;
using hls::PortDir;
using hls::Region;
using hls::Schedule;

namespace {

// All datapath values travel as 64-bit signed at their natural scale.
constexpr int kW = 64;

std::string wname(std::size_t region, std::size_t op, const char* comp) {
  std::ostringstream os;
  os << "w_r" << region << "_o" << op << "_" << comp;
  return os.str();
}
std::string pname(std::size_t region, std::size_t op, const char* comp) {
  std::ostringstream os;
  os << "p_r" << region << "_o" << op << "_" << comp;
  return os.str();
}

std::string kWs() { return std::to_string(kW); }

std::string literal(long long v) {
  std::ostringstream os;
  if (v < 0)
    os << "-" << kW << "'sd" << -v;
  else
    os << kW << "'sd" << v;
  return os.str();
}

// Part-selects are only legal on identifiers; composite expressions must be
// materialized into a named wire first.
bool is_simple_ident(const std::string& s) {
  if (s.empty() || (!std::isalpha(static_cast<unsigned char>(s[0])) &&
                    s[0] != '_'))
    return false;
  for (const char c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
      return false;
  return true;
}

// Emits the conversion of a 64-bit value `src` at scale 2^-src_fw into the
// destination fixed-point type, producing an expression string. Also
// emits any helper wires into `decl`/`body`.
class ExprEmitter {
 public:
  ExprEmitter(std::ostringstream& decl, std::ostringstream& body)
      : decl_(decl), body_(body) {}

  std::string convert(const std::string& src_in, int src_fw,
                      const FxType& dst, const std::string& tag) {
    std::string src = src_in;
    if (!is_simple_ident(src)) {
      // The rounding logic below part-selects src; give composites a name.
      const std::string t0 = fresh(tag + "_src");
      body_ << "  assign " << t0 << " = " << src << ";\n";
      src = t0;
    }
    const int shift = dst.fw() - src_fw;
    std::string v;
    if (shift == 0) {
      v = src;
    } else if (shift > 0) {
      v = "(" + src + " <<< " + std::to_string(shift) + ")";
    } else {
      const int d = -shift;
      // base = floor(src / 2^d), then the rounding increment per mode.
      const std::string base = "(" + src + " >>> " + std::to_string(d) + ")";
      const std::string msb = "(" + src + "[" + std::to_string(d - 1) + "])";
      const std::string rest =
          d >= 2 ? "(|" + src + "[" + std::to_string(d - 2) + ":0])"
                 : "1'b0";
      const std::string neg = "(" + src + "[" + std::to_string(kW - 1) + "])";
      const std::string lsb = "(" + src + "[" + std::to_string(d) + "])";
      std::string inc;
      switch (dst.q) {
        case fixpt::Quant::kTrn: inc = "1'b0"; break;
        case fixpt::Quant::kTrnZero:
          inc = "(" + neg + " & (" + msb + " | " + rest + "))";
          break;
        case fixpt::Quant::kRnd: inc = msb; break;
        case fixpt::Quant::kRndZero:
          inc = "(" + msb + " & (" + rest + " | " + neg + "))";
          break;
        case fixpt::Quant::kRndMinInf:
          inc = "(" + msb + " & " + rest + ")";
          break;
        case fixpt::Quant::kRndInf:
          inc = "(" + msb + " & (" + rest + " | ~" + neg + "))";
          break;
        case fixpt::Quant::kRndConv:
          inc = "(" + msb + " & (" + rest + " | " + lsb + "))";
          break;
      }
      const std::string t = fresh(tag + "_rnd");
      // $signed keeps the sum signed: a bare unsigned concat operand would
      // flip the whole RHS (and the >>> inside `base`) to unsigned per the
      // Verilog signedness propagation rules.
      body_ << "  assign " << t << " = " << base << " + $signed({{"
            << (kW - 1) << "{1'b0}}, " << inc << "});\n";
      v = t;
    }
    // Overflow handling into dst.w bits.
    const long long hi = (1LL << (dst.sgn ? dst.w - 1 : dst.w)) - 1;
    const long long lo =
        dst.sgn ? ((dst.o == fixpt::Ovf::kSatSym) ? -hi
                                                  : -(1LL << (dst.w - 1)))
                : 0;
    const std::string t = fresh(tag + "_fit");
    switch (dst.o) {
      case fixpt::Ovf::kWrap: {
        // Take the low dst.w bits, sign/zero extend back to 64. The value
        // is part-selected, so composites (shift results) get a name first.
        std::string vb = v;
        if (!is_simple_ident(vb)) {
          vb = fresh(tag + "_raw");
          body_ << "  assign " << vb << " = " << v << ";\n";
        }
        body_ << "  assign " << t << " = {{" << (kW - dst.w) << "{"
              << (dst.sgn ? vb + "[" + std::to_string(dst.w - 1) + "]"
                          : std::string("1'b0"))
              << "}}, " << vb << "[" << dst.w - 1 << ":0]};\n";
        break;
      }
      case fixpt::Ovf::kSat:
      case fixpt::Ovf::kSatSym:
        body_ << "  assign " << t << " = (" << v << " > " << literal(hi)
              << ") ? " << literal(hi) << " : (" << v << " < " << literal(lo)
              << ") ? " << literal(lo) << " : " << v << ";\n";
        break;
      case fixpt::Ovf::kSatZero:
        body_ << "  assign " << t << " = (" << v << " > " << literal(hi)
              << " || " << v << " < " << literal(lo) << ") ? " << kW
              << "'sd0 : " << v << ";\n";
        break;
    }
    return t;
  }

  std::string fresh(const std::string& tag) {
    std::ostringstream os;
    os << "t_" << tag << "_" << serial_++;
    decl_ << "  wire signed [" << kW - 1 << ":0] " << os.str() << ";\n";
    return os.str();
  }

 private:
  std::ostringstream& decl_;
  std::ostringstream& body_;
  int serial_ = 0;
};

struct PortSpec {
  std::string name;
  bool is_input;
  int bits;
};

}  // namespace

std::string emit_verilog(const Function& f, const Schedule& s,
                         const VerilogOptions& opts) {
  assert(f.regions.size() == s.regions.size());
  const std::string mod =
      opts.module_name.empty() ? f.name : opts.module_name;

  // On-chip perf counters (empty when instrumentation is off; every
  // instrumentation-only emission below is gated on !perf.empty() so the
  // off path stays byte-identical).
  const std::vector<hls::PerfCounter> perf =
      hls::instrument_map(f, s, opts.instrument);
  const int pw = perf.empty() ? 32 : perf[0].width;
  auto plit = [&](long long v) {
    return std::to_string(pw) + "'d" + std::to_string(v);
  };

  std::ostringstream header, ports, decl, comb, seq;

  if (opts.include_header_comment) {
    header << "// Generated by hlsw (C-based hardware design flow "
              "reproduction)\n"
           << "// Function: " << f.name << ", latency "
           << s.latency_cycles << " cycles @ " << s.clock_ns << " ns\n";
    for (const auto& rs : s.regions) {
      if (rs.ii > 0) {
        header << "// NOTE: loop '" << rs.label << "' was scheduled with "
               << "II=" << rs.ii << "; this emitter initiates iterations\n"
               << "// sequentially (functionally identical, "
               << rs.trip * rs.body.cycles << " instead of "
               << rs.total_cycles << " cycles for the loop).\n";
      }
    }
    if (!perf.empty())
      header << "// Instrumented: " << perf.size()
             << " perf_* counters (hls::instrument_map order"
             << (opts.instrument.readback_mux
                     ? "; perf_sel selects perf_rdata"
                     : "")
             << ").\n";
  }

  // ---- Ports ---------------------------------------------------------------
  std::vector<PortSpec> pspecs;
  for (const auto& v : f.vars) {
    if (v.port == PortDir::kNone) continue;
    const bool in = v.port == PortDir::kIn;
    if (v.type.cplx) {
      pspecs.push_back({v.name + "_re", in, v.type.w});
      pspecs.push_back({v.name + "_im", in, v.type.w});
    } else {
      pspecs.push_back({v.name, in, v.type.w});
    }
  }
  for (const auto& a : f.arrays) {
    if (a.port == PortDir::kNone) continue;
    const bool in = a.port == PortDir::kIn;
    for (int j = 0; j < a.length; ++j) {
      const std::string base = a.name + "_" + std::to_string(j);
      if (a.elem.cplx) {
        pspecs.push_back({base + "_re", in, a.elem.w});
        pspecs.push_back({base + "_im", in, a.elem.w});
      } else {
        pspecs.push_back({base, in, a.elem.w});
      }
    }
  }

  ports << "module " << mod << " (\n  input wire clk,\n  input wire rst,\n"
        << "  input wire start,\n  output reg done";
  for (const auto& p : pspecs) {
    ports << ",\n  " << (p.is_input ? "input wire signed [" : "output reg signed [")
          << p.bits - 1 << ":0] " << p.name;
  }
  if (!perf.empty() && opts.instrument.readback_mux) {
    ports << ",\n  input wire [15:0] perf_sel,\n  output wire [" << pw - 1
          << ":0] perf_rdata";
  }
  ports << "\n);\n\n";

  // ---- Storage ----------------------------------------------------------------
  // Same-cycle read forwarding (see kVarRead below) means a var's register
  // is only observable when some read actually falls back to it: a read with
  // no earlier unguarded same-cycle write samples the register, either
  // directly or as the else branch of a guarded-forward mux. Vars with no
  // such read get neither a register nor a load — ports always keep theirs,
  // the pin is the register.
  std::vector<char> var_reg_read(f.vars.size(), 0);
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const Region& region = f.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const auto& bs = s.regions[r].body;
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      const Op& op = b.ops[i];
      if (op.kind != OpKind::kVarRead) continue;
      bool covered = false;
      for (std::size_t jw = 0; jw < i; ++jw) {
        const Op& wr = b.ops[jw];
        if (wr.kind == OpKind::kVarWrite && wr.var == op.var &&
            bs.place[jw].cycle == bs.place[i].cycle && wr.guard_trip < 0)
          covered = true;
      }
      if (!covered) var_reg_read[static_cast<size_t>(op.var)] = 1;
    }
  }
  for (std::size_t vi = 0; vi < f.vars.size(); ++vi) {
    const auto& v = f.vars[vi];
    if (v.port != PortDir::kNone) continue;  // ports are module pins
    if (!var_reg_read[vi]) continue;         // every read is forwarded
    const std::string pre = "reg signed [" + std::to_string(v.type.w - 1) +
                            ":0] v_" + v.name;
    if (v.type.cplx)
      decl << "  " << pre << "_re, v_" << v.name << "_im;\n";
    else
      decl << "  " << pre << ";\n";
  }
  for (const auto& a : f.arrays) {
    const char* kind =
        a.mapping == ArrayMapping::kMemory ? "  // memory-mapped\n" : "";
    decl << kind;
    if (a.elem.cplx) {
      decl << "  reg signed [" << a.elem.w - 1 << ":0] m_" << a.name
           << "_re [0:" << a.length - 1 << "];\n";
      decl << "  reg signed [" << a.elem.w - 1 << ":0] m_" << a.name
           << "_im [0:" << a.length - 1 << "];\n";
    } else {
      decl << "  reg signed [" << a.elem.w - 1 << ":0] m_" << a.name
           << " [0:" << a.length - 1 << "];\n";
    }
  }

  // ---- FSM states ----------------------------------------------------------------
  int n_states = 1;  // S_IDLE = 0
  std::vector<int> region_state_base(f.regions.size());
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    region_state_base[r] = n_states;
    n_states += s.regions[r].body.cycles;
  }
  decl << "\n  reg [" << 15 << ":0] state;\n";
  decl << "  localparam S_IDLE = 0;\n";
  for (std::size_t r = 0; r < f.regions.size(); ++r)
    decl << "  localparam S_" << (f.regions[r].is_loop
                                      ? f.regions[r].loop.label
                                      : f.regions[r].name)
         << " = " << region_state_base[r] << ";\n";
  bool any_loop = false;
  for (const auto& region : f.regions)
    if (region.is_loop) any_loop = true;
  if (any_loop) decl << "  reg [15:0] k;  // loop iteration counter\n";
  if (!perf.empty()) {
    decl << "  // perf_* instrumentation counters, cumulative between "
            "resets\n";
    for (const auto& c : perf)
      decl << "  reg [" << c.width - 1 << ":0] " << c.name << ";\n";
    if (opts.instrument.readback_mux) {
      comb << "  assign perf_rdata =";
      for (const auto& c : perf)
        comb << "\n      (perf_sel == 16'd" << c.index << ") ? " << c.name
             << " :";
      comb << "\n      " << plit(0) << ";\n";
    }
  }

  // An op's value only needs a pipeline register when some consumer reads it
  // in a later cycle; same-cycle consumers take the wire directly.
  std::vector<std::vector<char>> pipe_used(f.regions.size());
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const Region& region = f.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const auto& bs = s.regions[r].body;
    pipe_used[r].assign(b.ops.size(), 0);
    for (std::size_t j = 0; j < b.ops.size(); ++j)
      for (const int a : b.ops[j].args)
        if (bs.place[static_cast<size_t>(a)].cycle != bs.place[j].cycle)
          pipe_used[r][static_cast<size_t>(a)] = 1;
  }

  // ---- Datapath ----------------------------------------------------------------
  ExprEmitter ee(decl, comb);
  // Per-region, per-op wires.
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const Region& region = f.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const auto& bs = s.regions[r].body;
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      const Op& op = b.ops[i];
      // Wire + pipeline register for every op value.
      for (const char* comp : {"re", "im"}) {
        if (!op.type.cplx && std::string(comp) == "im") continue;
        decl << "  wire signed [" << kW - 1 << ":0] " << wname(r, i, comp)
             << ";\n";
        if (pipe_used[r][i])
          decl << "  reg signed [" << kW - 1 << ":0] " << pname(r, i, comp)
               << ";\n";
      }
      // Operand expression: same-cycle -> wire, earlier cycle -> pipe reg.
      auto arg = [&](int a, const char* comp) -> std::string {
        const Op& src = b.ops[static_cast<size_t>(a)];
        const bool have = src.type.cplx || std::string(comp) == "re";
        if (!have) return literal(0);
        return bs.place[static_cast<size_t>(a)].cycle ==
                       bs.place[i].cycle
                   ? wname(r, static_cast<size_t>(a), comp)
                   : pname(r, static_cast<size_t>(a), comp);
      };
      auto arg_fw = [&](int a) {
        return b.ops[static_cast<size_t>(a)].type.fw();
      };
      auto idx_expr = [&](const Op& o) {
        std::ostringstream os;
        os << "(";
        if (o.idx.scale != 0) os << "$signed({1'b0,k}) * " << o.idx.scale << " + ";
        os << o.idx.offset << ")";
        return os.str();
      };

      auto emit_assign = [&](const char* comp, const std::string& rhs) {
        comb << "  assign " << wname(r, i, comp) << " = " << rhs << ";\n";
      };

      const int fw = op.type.fw();
      switch (op.kind) {
        case OpKind::kConst:
          emit_assign("re", literal(static_cast<long long>(op.cval.re)));
          if (op.type.cplx)
            emit_assign("im", literal(static_cast<long long>(op.cval.im)));
          break;
        case OpKind::kVarRead: {
          const auto& v = f.vars[static_cast<size_t>(op.var)];
          const std::string base =
              v.port != PortDir::kNone ? v.name : "v_" + v.name;
          // Scalar registers forward (the rtl::Simulator contract): a read
          // placed in the same cycle as an earlier write to the var must
          // observe the written value, which the nonblocking register load
          // only exposes NEXT cycle — so read the writer's wire instead.
          // Guarded (partial-unroll remainder) writes forward through a mux.
          auto read_expr = [&](const char* comp) {
            const std::string suf =
                v.type.cplx ? "_" + std::string(comp) : "";
            std::string src = "{{" + std::to_string(kW - v.type.w) + "{" +
                              base + suf + "[" +
                              std::to_string(v.type.w - 1) + "]}}, " + base +
                              suf + "}";
            for (std::size_t jw = 0; jw < i; ++jw) {
              const Op& wr = b.ops[jw];
              if (wr.kind != OpKind::kVarWrite || wr.var != op.var) continue;
              if (bs.place[jw].cycle != bs.place[i].cycle) continue;
              if (wr.guard_trip >= 0)
                src = "((k < " + std::to_string(wr.guard_trip) + ") ? " +
                      wname(r, jw, comp) + " : " + src + ")";
              else
                src = wname(r, jw, comp);
            }
            return src;
          };
          emit_assign("re", read_expr("re"));
          if (op.type.cplx) emit_assign("im", read_expr("im"));
          break;
        }
        case OpKind::kArrayRead: {
          const auto& a = f.arrays[static_cast<size_t>(op.array)];
          const std::string idx = idx_expr(op);
          const std::string base = "m_" + a.name;
          const std::string sufr = a.elem.cplx ? "_re" : "";
          emit_assign("re", "{{" + std::to_string(kW - a.elem.w) + "{" +
                                base + sufr + "[" + idx + "][" +
                                std::to_string(a.elem.w - 1) + "]}}, " +
                                base + sufr + "[" + idx + "]}");
          if (op.type.cplx)
            emit_assign("im", "{{" + std::to_string(kW - a.elem.w) + "{" +
                                  base + "_im[" + idx + "][" +
                                  std::to_string(a.elem.w - 1) + "]}}, " +
                                  base + "_im[" + idx + "]}");
          break;
        }
        case OpKind::kVarWrite:
        case OpKind::kArrayWrite: {
          // The converted value is computed combinationally; the actual
          // register load happens in the FSM below.
          const FxType dst =
              op.kind == OpKind::kVarWrite
                  ? f.vars[static_cast<size_t>(op.var)].type
                  : f.arrays[static_cast<size_t>(op.array)].elem;
          emit_assign("re", ee.convert(arg(op.args[0], "re"),
                                       arg_fw(op.args[0]), dst,
                                       "r" + std::to_string(r) + "o" +
                                           std::to_string(i) + "re"));
          if (dst.cplx)
            emit_assign("im", ee.convert(arg(op.args[0], "im"),
                                         arg_fw(op.args[0]), dst,
                                         "r" + std::to_string(r) + "o" +
                                             std::to_string(i) + "im"));
          break;
        }
        case OpKind::kAdd:
        case OpKind::kSub: {
          const char* sign = op.kind == OpKind::kAdd ? "+" : "-";
          const int fa = arg_fw(op.args[0]), fb = arg_fw(op.args[1]);
          const int fm = fa > fb ? fa : fb;
          auto align = [&](int a2, int f2, const char* comp) {
            return "(" + arg(a2, comp) + " <<< " + std::to_string(fm - f2) +
                   ")";
          };
          emit_assign("re", align(op.args[0], fa, "re") + " " + sign + " " +
                                align(op.args[1], fb, "re"));
          if (op.type.cplx)
            emit_assign("im", align(op.args[0], fa, "im") + " " + sign +
                                  " " + align(op.args[1], fb, "im"));
          break;
        }
        case OpKind::kMul: {
          const std::string ar = arg(op.args[0], "re"),
                            ai = arg(op.args[0], "im"),
                            br = arg(op.args[1], "re"),
                            bi = arg(op.args[1], "im");
          emit_assign("re", ar + " * " + br + " - " + ai + " * " + bi);
          if (op.type.cplx)
            emit_assign("im", ar + " * " + bi + " + " + ai + " * " + br);
          break;
        }
        case OpKind::kNeg:
          emit_assign("re", "-" + arg(op.args[0], "re"));
          if (op.type.cplx) emit_assign("im", "-" + arg(op.args[0], "im"));
          break;
        case OpKind::kSignConj:
          emit_assign("re", "(" + arg(op.args[0], "re") + "[" +
                                std::to_string(kW - 1) + "] ? -" + kWs() +
                                "'sd1 : " + kWs() + "'sd1)");
          if (op.type.cplx)  // a real result has no _im wire declared
            emit_assign("im", "(" + arg(op.args[0], "im") + "[" +
                                  std::to_string(kW - 1) + "] ? " + kWs() +
                                  "'sd1 : -" + kWs() + "'sd1)");
          break;
        case OpKind::kCast:
          emit_assign("re", ee.convert(arg(op.args[0], "re"),
                                       arg_fw(op.args[0]), op.type,
                                       "c" + std::to_string(r) + "o" +
                                           std::to_string(i) + "re"));
          if (op.type.cplx)
            emit_assign("im", ee.convert(arg(op.args[0], "im"),
                                         arg_fw(op.args[0]), op.type,
                                         "c" + std::to_string(r) + "o" +
                                             std::to_string(i) + "im"));
          break;
        case OpKind::kReal:
          emit_assign("re", arg(op.args[0], "re"));
          break;
        case OpKind::kImag:
          emit_assign("re", arg(op.args[0], "im"));
          break;
        case OpKind::kMakeComplex: {
          const int fa = arg_fw(op.args[0]), fb = arg_fw(op.args[1]);
          emit_assign("re", "(" + arg(op.args[0], "re") + " <<< " +
                                std::to_string(fw - fa) + ")");
          emit_assign("im", "(" + arg(op.args[1], "re") + " <<< " +
                                std::to_string(fw - fb) + ")");
          break;
        }
      }
    }
  }

  // ---- Instrumentation updates ---------------------------------------------------
  // Three insertion points in the FSM always-block: zero on rst, one
  // unconditional tick block keyed on the current state (active/region
  // cycles, iteration completions, serialization stalls, guard-qualified
  // memory-port activity), and the invocation count on the accepted start
  // handshake. All empty when instrumentation is off.
  std::string perf_rst, perf_tick, perf_start;
  if (!perf.empty()) {
    std::ostringstream prst, ptick, pstart;
    auto bump = [&](std::ostringstream& os, const std::string& name,
                    const std::string& by) {
      os << name << " <= " << name << " + " << by << ";\n";
    };
    for (const auto& c : perf) {
      prst << "      " << c.name << " <= " << plit(0) << ";\n";
      switch (c.kind) {
        case hls::CounterKind::kInvocations:
          pstart << "          ";
          bump(pstart, c.name, plit(1));
          break;
        case hls::CounterKind::kActiveCycles:
          ptick << "      if (state != S_IDLE) ";
          bump(ptick, c.name, plit(1));
          break;
        case hls::CounterKind::kRegionCycles: {
          const int base = region_state_base[static_cast<size_t>(c.region)];
          const int last =
              base + s.regions[static_cast<size_t>(c.region)].body.cycles - 1;
          if (base == last)
            ptick << "      if (state == " << base << ") ";
          else
            ptick << "      if (state >= " << base << " && state <= " << last
                  << ") ";
          bump(ptick, c.name, plit(1));
          break;
        }
        case hls::CounterKind::kLoopIters: {
          const int last =
              region_state_base[static_cast<size_t>(c.region)] +
              s.regions[static_cast<size_t>(c.region)].body.cycles - 1;
          ptick << "      if (state == " << last << ") ";
          bump(ptick, c.name, plit(1));
          break;
        }
        case hls::CounterKind::kLoopStall: {
          const auto& rs = s.regions[static_cast<size_t>(c.region)];
          const int bubble = rs.body.cycles - rs.ii;
          if (bubble <= 0) break;  // re-entry is no slower than the II
          const int last = region_state_base[static_cast<size_t>(c.region)] +
                           rs.body.cycles - 1;
          ptick << "      if (state == " << last << " && k != " << rs.trip - 1
                << ") ";
          bump(ptick, c.name, plit(bubble));
          break;
        }
        case hls::CounterKind::kMemReads:
        case hls::CounterKind::kMemWrites: {
          const OpKind want = c.kind == hls::CounterKind::kMemReads
                                  ? OpKind::kArrayRead
                                  : OpKind::kArrayWrite;
          for (std::size_t r = 0; r < f.regions.size(); ++r) {
            const Region& region = f.regions[r];
            const Block& b =
                region.is_loop ? region.loop.body : region.straight;
            const auto& bs = s.regions[r].body;
            for (int cyc = 0; cyc < bs.cycles; ++cyc) {
              long long n = 0;                 // unconditional accesses
              std::map<int, long long> gated;  // guard_trip -> count
              for (std::size_t i = 0; i < b.ops.size(); ++i) {
                const Op& op = b.ops[i];
                if (op.kind != want || op.array != c.array) continue;
                if (bs.place[i].cycle != cyc) continue;
                if (op.guard_trip < 0)
                  ++n;
                else if (region.is_loop)
                  ++gated[op.guard_trip];
                else if (op.guard_trip > 0)
                  ++n;  // straight region: k is 0, the guard folds statically
              }
              if (n == 0 && gated.empty()) continue;
              std::vector<std::string> terms;
              if (n > 0) terms.push_back(plit(n));
              for (const auto& [g, m] : gated)
                terms.push_back("((k < " + std::to_string(g) + ") ? " +
                                plit(m) + " : " + plit(0) + ")");
              ptick << "      if (state == " << region_state_base[r] + cyc
                    << ") " << c.name << " <= " << c.name;
              for (const std::string& t : terms) ptick << " + " << t;
              ptick << ";\n";
            }
          }
          break;
        }
      }
    }
    perf_rst = prst.str();
    perf_tick = ptick.str();
    perf_start = pstart.str();
  }

  // ---- FSM -----------------------------------------------------------------------
  seq << "\n  always @(posedge clk) begin\n"
      << "    if (rst) begin\n      state <= S_IDLE;\n      done <= 1'b0;\n"
      << (any_loop ? "      k <= 0;\n" : "")
      << perf_rst
      << "    end else begin\n      done <= 1'b0;\n"
      << perf_tick
      << "      case (state)\n        S_IDLE: if (start) begin state <= "
      << region_state_base[0] << ";" << (any_loop ? " k <= 0;" : "")
      << "\n"
      << perf_start;
  // Latch input array ports into their register files on start.
  for (const auto& a : f.arrays) {
    if (a.port != PortDir::kIn && a.port != PortDir::kInOut) continue;
    for (int j = 0; j < a.length; ++j) {
      const std::string pin = a.name + "_" + std::to_string(j);
      if (a.elem.cplx) {
        seq << "          m_" << a.name << "_re[" << j << "] <= " << pin
            << "_re;\n";
        seq << "          m_" << a.name << "_im[" << j << "] <= " << pin
            << "_im;\n";
      } else {
        seq << "          m_" << a.name << "[" << j << "] <= " << pin
            << ";\n";
      }
    }
  }
  seq << "        end\n";

  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const Region& region = f.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const auto& rs = s.regions[r];
    for (int c = 0; c < rs.body.cycles; ++c) {
      seq << "        " << region_state_base[r] + c << ": begin\n";
      // Register loads for writes and op pipeline values in this cycle.
      for (std::size_t i = 0; i < b.ops.size(); ++i) {
        const Op& op = b.ops[i];
        if (rs.body.place[i].cycle != c) continue;
        std::string guard;
        if (op.guard_trip >= 0)
          guard = "if (k < " + std::to_string(op.guard_trip) + ") ";
        if (op.kind == OpKind::kVarWrite) {
          const auto& v = f.vars[static_cast<size_t>(op.var)];
          const bool is_port = v.port != PortDir::kNone;
          if (!is_port && !var_reg_read[static_cast<size_t>(op.var)])
            continue;  // register elided — consumers take the write's wire
          const std::string base = is_port ? v.name : "v_" + v.name;
          seq << "          " << guard << base << (v.type.cplx ? "_re" : "")
              << " <= " << wname(r, i, "re") << "[" << v.type.w - 1
              << ":0];\n";
          if (v.type.cplx)
            seq << "          " << guard << base << "_im <= "
                << wname(r, i, "im") << "[" << v.type.w - 1 << ":0];\n";
        } else if (op.kind == OpKind::kArrayWrite) {
          const auto& a = f.arrays[static_cast<size_t>(op.array)];
          std::ostringstream idx;
          idx << "(";
          if (op.idx.scale != 0)
            idx << "$signed({1'b0,k}) * " << op.idx.scale << " + ";
          idx << op.idx.offset << ")";
          seq << "          " << guard << "m_" << a.name
              << (a.elem.cplx ? "_re" : "") << "[" << idx.str()
              << "] <= " << wname(r, i, "re") << "[" << a.elem.w - 1
              << ":0];\n";
          if (a.elem.cplx)
            seq << "          " << guard << "m_" << a.name << "_im["
                << idx.str() << "] <= " << wname(r, i, "im") << "["
                << a.elem.w - 1 << ":0];\n";
        } else if (pipe_used[r][i]) {
          // Pipeline the value for later-cycle consumers.
          seq << "          " << pname(r, i, "re") << " <= "
              << wname(r, i, "re") << ";\n";
          if (op.type.cplx)
            seq << "          " << pname(r, i, "im") << " <= "
                << wname(r, i, "im") << ";\n";
        }
      }
      // Next-state logic.
      const bool last_cycle = c == rs.body.cycles - 1;
      const bool last_region = r + 1 == f.regions.size();
      const std::string next_region_state =
          last_region ? "S_IDLE"
                      : std::to_string(region_state_base[r + 1]);
      if (region.is_loop && last_cycle) {
        seq << "          if (k == " << rs.trip - 1 << ") begin k <= 0; "
            << "state <= " << next_region_state << ";"
            << (last_region ? " done <= 1'b1;" : "") << " end\n"
            << "          else begin k <= k + 16'd1; state <= "
            << region_state_base[r] << "; end\n";
      } else if (last_cycle) {
        seq << "          state <= " << next_region_state << ";"
            << (last_region ? " done <= 1'b1;" : "") << "\n";
      } else {
        seq << "          state <= " << region_state_base[r] + c + 1
            << ";\n";
      }
      seq << "        end\n";
    }
  }
  seq << "        default: state <= S_IDLE;\n      endcase\n    end\n"
      << "  end\n";

  std::ostringstream out;
  out << header.str() << ports.str() << decl.str() << "\n" << comb.str()
      << seq.str() << "endmodule\n";
  return out.str();
}

}  // namespace hlsw::rtl
