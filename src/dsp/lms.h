// Adaptive tap-update algorithms for the equalizer (paper section 4: "we
// used the sign-LMS (least mean squared) adaptive algorithm").
//
// All variants update coefficient k of a filter whose output error is
//   e(n) = d(n) - y(n)   (desired minus actual)
// given the regressor data x(n-k) held in the filter's delay line:
//
//   LMS:        c[k] += mu * e * conj(x[k])
//   sign-LMS:   c[k] += mu * e * sign_conj(x[k])      (the paper's choice)
//   sign-sign:  c[k] += mu * sign(e) * sign_conj(x[k])
//   NLMS:       c[k] += mu * e * conj(x[k]) / ||x||^2
//
// where sign(z) = sign(Re z) + j*sign(Im z) with sign(0) = +1, matching
// complex_fixed::sign_conj. Sign-LMS needs no multipliers in hardware —
// the property the paper's area results depend on.
#pragma once

#include <cassert>
#include <complex>
#include <span>
#include <vector>

namespace hlsw::dsp {

enum class AdaptAlgo { kLms, kSignLms, kSignSign, kNlms };

// Godard/CMA dispersion constant R2 = E[|a|^4] / E[|a|^2] for a square
// M-QAM constellation at the paper's (2k - (L-1)) / (2L) level scaling.
inline double cma_r2(int m) {
  int levels = 1;
  while (levels * levels < m) ++levels;
  double m2 = 0, m4 = 0;
  for (int k = 0; k < levels; ++k) {
    const double l = (2.0 * k - (levels - 1)) / (2.0 * levels);
    m2 += l * l;
    m4 += l * l * l * l;
  }
  m2 /= levels;
  m4 /= levels;
  // E|a|^2 = 2 m2;  E|a|^4 = 2 m4 + 2 m2^2 (independent I/Q).
  return (2 * m4 + 2 * m2 * m2) / (2 * m2);
}

// Constant-modulus (Godard p=2) error: e = y * (R2 - |y|^2). Feeding this
// into adapt_taps(kLms, ...) performs blind equalization — the adaptation
// mode the paper explicitly leaves out ("we have not implemented ... blind
// adaptation"); provided here as the natural extension. CMA is phase-blind:
// it opens the eye (drives |y|^2 dispersion down) but converges to an
// arbitrary constellation rotation; a carrier-phase step or differential
// coding must follow before decision-directed operation.
inline std::complex<double> cma_error(std::complex<double> y, double r2) {
  return y * (r2 - std::norm(y));
}

inline std::complex<double> csign(std::complex<double> z) {
  return {z.real() >= 0 ? 1.0 : -1.0, z.imag() >= 0 ? 1.0 : -1.0};
}

// Updates `coeffs` in place from the regressor `data` (data[k] aligned with
// coeffs[k]) and scalar error e. `sign_of_update` is +1 for the standard
// "+= mu e x*" form; the paper's DFE uses -1 because its output is
// subtracted from the FFE path.
inline void adapt_taps(AdaptAlgo algo, std::span<std::complex<double>> coeffs,
                       std::span<const std::complex<double>> data,
                       std::complex<double> e, double mu,
                       double sign_of_update = 1.0) {
  assert(coeffs.size() == data.size());
  std::complex<double> scaled_e = e;
  switch (algo) {
    case AdaptAlgo::kLms:
    case AdaptAlgo::kSignLms:
      break;
    case AdaptAlgo::kSignSign:
      scaled_e = csign(e);
      break;
    case AdaptAlgo::kNlms: {
      double energy = 1e-12;
      for (const auto& x : data) energy += std::norm(x);
      scaled_e = e / energy;
      break;
    }
  }
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    const std::complex<double> reg =
        (algo == AdaptAlgo::kSignLms || algo == AdaptAlgo::kSignSign)
            ? std::conj(csign(data[k]))
            : std::conj(data[k]);
    coeffs[k] += sign_of_update * mu * scaled_e * reg;
  }
}

}  // namespace hlsw::dsp
