#include "dsp/channel.h"

#include <cassert>
#include <cmath>

namespace hlsw::dsp {

GaussianNoise::GaussianNoise(uint64_t seed, double sigma)
    : state_(seed ? seed : 0x9E3779B97F4A7C15ULL), sigma_(sigma) {}

double GaussianNoise::uniform01() {
  // xorshift64* — deterministic across platforms.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  const uint64_t r = state_ * 0x2545F4914F6CDD1DULL;
  return (static_cast<double>(r >> 11) + 0.5) * 0x1.0p-53;
}

double GaussianNoise::next() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_ * sigma_;
  }
  const double u1 = uniform01(), u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2) * sigma_;
}

std::complex<double> GaussianNoise::next_complex() {
  const double re = next();
  const double im = next();
  return {re, im};
}

MultipathChannel::MultipathChannel(const ChannelConfig& cfg)
    : cfg_(cfg),
      line_(cfg.taps.size() + 2, {0, 0}),
      noise_(cfg.noise_seed),
      noise_sigma_(0) {
  assert(!cfg_.taps.empty());
  // Per-sample complex noise sigma from the per-symbol SNR: a symbol spans
  // two T/2 samples; noise power splits evenly between the I and Q rails.
  const double snr_lin = std::pow(10.0, cfg_.snr_db / 10.0);
  const double noise_power = cfg_.symbol_energy / snr_lin;
  noise_sigma_ = std::sqrt(noise_power / 2.0);
  noise_.set_sigma(noise_sigma_);
}

MultipathChannel::SamplePair MultipathChannel::send(
    std::complex<double> symbol) {
  auto push_and_filter = [&](std::complex<double> x) {
    for (std::size_t k = line_.size() - 1; k > 0; --k) line_[k] = line_[k - 1];
    line_[0] = x;
    std::complex<double> acc{0, 0};
    for (std::size_t k = 0; k < cfg_.taps.size(); ++k)
      acc += cfg_.taps[k] * line_[k];
    return acc + noise_.next_complex();
  };
  SamplePair out;
  // T/2 upsampling: the symbol occupies the first half-period sample, zero
  // the second (impulse train through the T/2-spaced channel response).
  out.s0 = push_and_filter(symbol);
  out.s1 = push_and_filter({0, 0});
  return out;
}

void MultipathChannel::reset() {
  std::fill(line_.begin(), line_.end(), std::complex<double>{0, 0});
}

}  // namespace hlsw::dsp
