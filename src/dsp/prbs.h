// PRBS training/data source. The paper's design assumes a training sequence
// exists ("we have not implemented details of how the training sequence is
// generated") — this LFSR provides the standard substitute: a maximal-length
// pseudo-random binary sequence feeding the QAM mapper.
#pragma once

#include <cassert>
#include <cstdint>

namespace hlsw::dsp {

// Fibonacci LFSR. Default polynomial is PRBS15 (x^15 + x^14 + 1), a common
// telecom training sequence; PRBS7 and PRBS23 taps are provided too.
class Prbs {
 public:
  struct Poly {
    int bits;
    uint32_t tap_mask;  // XOR of these bit positions forms the feedback
  };
  static constexpr Poly kPrbs7{7, (1u << 6) | (1u << 5)};
  static constexpr Poly kPrbs15{15, (1u << 14) | (1u << 13)};
  static constexpr Poly kPrbs23{23, (1u << 22) | (1u << 17)};

  explicit Prbs(Poly poly = kPrbs15, uint32_t seed = 1)
      : poly_(poly), state_(seed & ((1u << poly.bits) - 1)) {
    assert(state_ != 0 && "LFSR must not start in the all-zero state");
  }

  // Next pseudo-random bit.
  int next_bit() {
    const uint32_t fb_bits = state_ & poly_.tap_mask;
    const int fb = __builtin_parity(fb_bits);
    state_ = ((state_ << 1) | static_cast<uint32_t>(fb)) &
             ((1u << poly_.bits) - 1);
    return fb;
  }

  // Next n-bit word, MSB first.
  int next_word(int n) {
    int w = 0;
    for (int i = 0; i < n; ++i) w = (w << 1) | next_bit();
    return w;
  }

  uint32_t state() const { return state_; }
  int period() const { return (1 << poly_.bits) - 1; }

 private:
  Poly poly_;
  uint32_t state_;
};

}  // namespace hlsw::dsp
