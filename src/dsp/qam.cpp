#include "dsp/qam.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace hlsw::dsp {

QamConstellation::QamConstellation(int m, QamMapping mapping)
    : m_(m), mapping_(mapping) {
  levels_ = static_cast<int>(std::lround(std::sqrt(static_cast<double>(m))));
  assert(levels_ * levels_ == m && "M must be a perfect square");
  assert((levels_ & (levels_ - 1)) == 0 && "sqrt(M) must be a power of two");
  bits_per_symbol_ = 0;
  for (int v = m; v > 1; v >>= 1) ++bits_per_symbol_;

  gray_encode_.resize(levels_);
  gray_decode_.resize(levels_);
  for (int k = 0; k < levels_; ++k) {
    const int g = k ^ (k >> 1);
    gray_encode_[k] = g;
    gray_decode_[g] = k;
  }

  double e = 0;
  for (int k = 0; k < levels_; ++k) e += level(k) * level(k);
  avg_energy_ = 2.0 * e / levels_;  // I and Q contribute independently
}

double QamConstellation::level(int k) const {
  return (2 * k - (levels_ - 1)) / (2.0 * levels_);
}

int QamConstellation::nearest_level_index(double v) const {
  // Levels are uniform with spacing 1/L starting at -(L-1)/(2L).
  const double idx = (v * 2.0 * levels_ + (levels_ - 1)) / 2.0;
  int k = static_cast<int>(std::lround(idx));
  if (k < 0) k = 0;
  if (k >= levels_) k = levels_ - 1;
  return k;
}

int QamConstellation::axis_bits(int symbol, bool real_axis) const {
  const int half = bits_per_symbol_ / 2;
  const int mask = levels_ - 1;
  return real_axis ? ((symbol >> half) & mask) : (symbol & mask);
}

int QamConstellation::compose(int r_idx, int i_idx) const {
  const int half = bits_per_symbol_ / 2;
  if (mapping_ == QamMapping::kGray)
    return (gray_encode_[r_idx] << half) | gray_encode_[i_idx];
  // Two's-complement mapping: field value = idx - L/2, wrapped to half bits.
  const int mask = levels_ - 1;
  return (((r_idx - levels_ / 2) & mask) << half) |
         ((i_idx - levels_ / 2) & mask);
}

std::complex<double> QamConstellation::map(int symbol) const {
  assert(symbol >= 0 && symbol < m_);
  const int rb = axis_bits(symbol, true), ib = axis_bits(symbol, false);
  int r_idx = 0, i_idx = 0;
  if (mapping_ == QamMapping::kGray) {
    r_idx = gray_decode_[rb];
    i_idx = gray_decode_[ib];
  } else {
    // Field is two's complement of (idx - L/2): sign-extend and undo.
    const int half_range = levels_ / 2;
    const int rs = rb >= half_range ? rb - levels_ : rb;
    const int is = ib >= half_range ? ib - levels_ : ib;
    r_idx = rs + half_range;
    i_idx = is + half_range;
  }
  return {level(r_idx), level(i_idx)};
}

int QamConstellation::slice(std::complex<double> y) const {
  return compose(nearest_level_index(y.real()), nearest_level_index(y.imag()));
}

std::complex<double> QamConstellation::slice_point(std::complex<double> y) const {
  return {level(nearest_level_index(y.real())),
          level(nearest_level_index(y.imag()))};
}

int QamConstellation::bit_errors(int a, int b) {
  return std::popcount(static_cast<unsigned>(a ^ b));
}

}  // namespace hlsw::dsp
