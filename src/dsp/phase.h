// Decision-directed carrier phase recovery: the companion to CMA blind
// equalization (dsp/lms.h). CMA converges to an arbitrarily rotated
// constellation; this second-order PLL de-rotates it using the phase error
// between the corrected sample and its nearest decision, and also tracks a
// small residual carrier frequency offset. Like timing recovery, this is
// receiver machinery the paper's listing assumes away.
#pragma once

#include <cmath>
#include <complex>

namespace hlsw::dsp {

struct PhaseLoopConfig {
  double kp = 0.05;    // proportional gain
  double ki = 0.002;   // integral gain (frequency tracking)
  double theta0 = 0;   // initial phase estimate (radians)
};

class CarrierPhaseLoop {
 public:
  explicit CarrierPhaseLoop(const PhaseLoopConfig& cfg = {})
      : cfg_(cfg), theta_(cfg.theta0) {}

  // De-rotates y by the current estimate; returns the corrected sample.
  std::complex<double> correct(std::complex<double> y) const {
    return y * std::exp(std::complex<double>(0, -theta_));
  }

  // Updates the loop from the corrected sample and its decision:
  //   e = Im{ y_corr * conj(decision) } / |decision|^2
  // (small-angle phase error, gain-normalized).
  void update(std::complex<double> y_corr, std::complex<double> decision) {
    const double p = std::norm(decision);
    if (p < 1e-12) return;
    const double e = (y_corr * std::conj(decision)).imag() / p;
    freq_ += cfg_.ki * e;
    theta_ += cfg_.kp * e + freq_;
    // Keep theta in (-pi, pi] for reporting; the loop itself is agnostic.
    while (theta_ > M_PI) theta_ -= 2 * M_PI;
    while (theta_ <= -M_PI) theta_ += 2 * M_PI;
  }

  double theta() const { return theta_; }
  double freq() const { return freq_; }  // radians per symbol

 private:
  PhaseLoopConfig cfg_;
  double theta_;
  double freq_ = 0;
};

}  // namespace hlsw::dsp
