// Transmit pulse shaping: root-raised-cosine (RRC) tap design and
// convolution helpers. The link harness's default channel folds the pulse
// into its impulse response; rrc_taps lets users build realistic T/2
// responses (pulse * multipath) instead — the standard spectral shaping
// every real QAM modem (the paper's application domain) uses.
#pragma once

#include <cmath>
#include <complex>
#include <vector>

namespace hlsw::dsp {

// Root-raised-cosine taps at `sps` samples per symbol, spanning
// `span_symbols` symbols on each side, with roll-off beta in (0, 1].
// Normalized to unit energy.
inline std::vector<double> rrc_taps(int sps, int span_symbols, double beta) {
  std::vector<double> h;
  const int n = 2 * span_symbols * sps + 1;
  h.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = (i - span_symbols * sps) / static_cast<double>(sps);
    double v;
    if (std::abs(t) < 1e-12) {
      v = 1.0 - beta + 4 * beta / M_PI;
    } else if (std::abs(std::abs(t) - 1.0 / (4 * beta)) < 1e-9) {
      v = beta / std::sqrt(2.0) *
          ((1 + 2 / M_PI) * std::sin(M_PI / (4 * beta)) +
           (1 - 2 / M_PI) * std::cos(M_PI / (4 * beta)));
    } else {
      const double num = std::sin(M_PI * t * (1 - beta)) +
                         4 * beta * t * std::cos(M_PI * t * (1 + beta));
      const double den =
          M_PI * t * (1 - 16 * beta * beta * t * t);
      v = num / den;
    }
    h.push_back(v);
  }
  double energy = 0;
  for (double v : h) energy += v * v;
  const double scale = 1.0 / std::sqrt(energy);
  for (double& v : h) v *= scale;
  return h;
}

// Linear convolution of two real/complex tap sets.
template <typename A, typename B>
auto convolve(const std::vector<A>& a, const std::vector<B>& b) {
  using R = decltype(A{} * B{});
  std::vector<R> r(a.size() + b.size() - 1, R{});
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) r[i + j] += a[i] * b[j];
  return r;
}

// Builds a complex T/2 channel impulse response: RRC transmit pulse (2
// samples/symbol) convolved with a sparse multipath profile, scaled by
// `gain`. Pass the result to ChannelConfig::taps.
inline std::vector<std::complex<double>> shaped_channel(
    const std::vector<std::complex<double>>& multipath, double beta,
    int span_symbols, double gain) {
  const auto pulse = rrc_taps(2, span_symbols, beta);
  std::vector<std::complex<double>> p(pulse.begin(), pulse.end());
  auto taps = convolve(p, multipath);
  for (auto& t : taps) t *= gain;
  return taps;
}

}  // namespace hlsw::dsp
