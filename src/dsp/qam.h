// M-QAM constellation: mapper and slicer (paper section 4).
//
// The paper's 64-QAM design uses an 8x8 grid of points at odd multiples of
// 1/16 in both dimensions — the constellation spans (-0.5, 0.5) so every
// signal fits the sc_fixed<*,0> formats of Figure 4. We generalize to any
// square M-QAM (4/16/64/256) with that same scaling convention:
//
//   level_k = (2k - (L-1)) / (2L),  k = 0..L-1,  L = sqrt(M)
//
// Two bit mappings are provided:
//  * kTwosComplement — the paper's Figure 4 mapping: the 6-bit output word
//    is {r_idx - L/2} and {i_idx - L/2} as two's-complement 3-bit fields
//    (data = r*64 + i*8 in the paper's fixed-point code).
//  * kGray — reflected Gray code per axis, the standard choice when
//    measuring BER, since adjacent constellation points differ in one bit.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace hlsw::dsp {

enum class QamMapping { kTwosComplement, kGray };

class QamConstellation {
 public:
  // `m` must be a perfect square power of four (4, 16, 64, 256).
  explicit QamConstellation(int m, QamMapping mapping = QamMapping::kGray);

  int m() const { return m_; }
  int levels() const { return levels_; }
  int bits_per_symbol() const { return bits_per_symbol_; }
  QamMapping mapping() const { return mapping_; }

  // Symbol index (0 .. m-1) to constellation point.
  std::complex<double> map(int symbol) const;

  // Nearest constellation point decision; returns the symbol index.
  int slice(std::complex<double> y) const;

  // The constellation point nearest to y (what a hardware slicer feeds the
  // DFE and the error computation).
  std::complex<double> slice_point(std::complex<double> y) const;

  // Level value for axis index k in [0, levels).
  double level(int k) const;

  // Axis index for the level nearest to v (saturating at the grid edge).
  int nearest_level_index(double v) const;

  // Number of differing bits between two symbol indices (for BER).
  static int bit_errors(int a, int b);

  // Average symbol energy of the constellation (for SNR scaling).
  double average_energy() const { return avg_energy_; }

 private:
  int axis_bits(int symbol, bool real_axis) const;
  int compose(int r_idx, int i_idx) const;

  int m_;
  int levels_;
  int bits_per_symbol_;
  QamMapping mapping_;
  double avg_energy_;
  std::vector<int> gray_encode_;  // axis index -> gray code
  std::vector<int> gray_decode_;  // gray code -> axis index
};

}  // namespace hlsw::dsp
