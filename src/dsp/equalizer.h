// Floating-point reference model of the paper's equalized QAM decoder
// (Figure 3): a T/2-spaced feed-forward equalizer (FFE), a 64-QAM slicer,
// and a T-spaced decision feedback equalizer (DFE), with sign-LMS (or any
// AdaptAlgo) coefficient adaptation driven by the slicer error.
//
// This is the "MATLAB/C floating-point" stage of the paper's design flow
// (Figure 1). The bit-accurate fixed-point model lives in qam/decoder_fixed.h
// and is validated against this reference in tests and benches.
#pragma once

#include <cassert>
#include <complex>
#include <vector>

#include "dsp/lms.h"
#include "dsp/qam.h"

namespace hlsw::dsp {

struct EqualizerConfig {
  int ffe_taps = 8;   // T/2 spaced: consumes 2 samples per symbol
  int dfe_taps = 16;  // T spaced: over past decisions
  double mu_ffe = 1.0 / 256;  // pow(2,-8), as in Figure 4
  double mu_dfe = 1.0 / 256;
  AdaptAlgo algo = AdaptAlgo::kSignLms;
  int qam = 64;
  QamMapping mapping = QamMapping::kGray;
};

struct EqualizerOutput {
  int symbol = 0;                     // decided symbol index
  std::complex<double> y;             // equalizer output (slicer input)
  std::complex<double> decision;      // sliced constellation point
  std::complex<double> error;         // decision - y
};

class DfeEqualizer {
 public:
  explicit DfeEqualizer(const EqualizerConfig& cfg)
      : cfg_(cfg),
        constellation_(cfg.qam, cfg.mapping),
        x_(cfg.ffe_taps, {0, 0}),
        sv_(cfg.dfe_taps, {0, 0}),
        ffe_c_(cfg.ffe_taps, {0, 0}),
        dfe_c_(cfg.dfe_taps, {0, 0}) {
    assert(cfg.ffe_taps >= 2 && cfg.ffe_taps % 2 == 0);
    assert(cfg.dfe_taps >= 1);
    // Standard cold start: center-tap initialization of the FFE so the
    // filter begins as a (delayed) pass-through.
    ffe_c_[cfg.ffe_taps / 2] = {1.0, 0.0};
  }

  const QamConstellation& constellation() const { return constellation_; }
  const std::vector<std::complex<double>>& ffe_coeffs() const { return ffe_c_; }
  const std::vector<std::complex<double>>& dfe_coeffs() const { return dfe_c_; }

  // Processes one symbol period: two new T/2-spaced input samples, returns
  // the decision. If `training` is non-null it points at the known
  // transmitted constellation point; adaptation then uses the true symbol
  // (training mode) instead of the decision (decision-directed mode).
  EqualizerOutput step(std::complex<double> in0, std::complex<double> in1,
                       const std::complex<double>* training = nullptr) {
    // Shift two new samples into the T/2 delay line (Figure 4: x[0], x[1]).
    for (int k = cfg_.ffe_taps - 1; k >= 2; --k) x_[k] = x_[k - 2];
    x_[0] = in0;
    x_[1] = in1;

    std::complex<double> yffe{0, 0};
    for (int k = 0; k < cfg_.ffe_taps; ++k) yffe += x_[k] * ffe_c_[k];
    std::complex<double> ydfe{0, 0};
    for (int k = 0; k < cfg_.dfe_taps; ++k) ydfe += sv_[k] * dfe_c_[k];
    const std::complex<double> y = yffe - ydfe;

    EqualizerOutput out;
    out.y = y;
    const std::complex<double> ref =
        training ? *training : constellation_.slice_point(y);
    out.decision = ref;
    out.symbol = training ? constellation_.slice(ref) : constellation_.slice(y);
    out.error = ref - y;

    adapt_taps(cfg_.algo, ffe_c_, x_, out.error, cfg_.mu_ffe, +1.0);
    adapt_taps(cfg_.algo, dfe_c_, sv_, out.error, cfg_.mu_dfe, -1.0);

    // DFE feedback shift: newest decision enters the line.
    for (int k = cfg_.dfe_taps - 1; k >= 1; --k) sv_[k] = sv_[k - 1];
    sv_[0] = ref;
    return out;
  }

  void reset() {
    std::fill(x_.begin(), x_.end(), std::complex<double>{0, 0});
    std::fill(sv_.begin(), sv_.end(), std::complex<double>{0, 0});
    std::fill(ffe_c_.begin(), ffe_c_.end(), std::complex<double>{0, 0});
    std::fill(dfe_c_.begin(), dfe_c_.end(), std::complex<double>{0, 0});
    ffe_c_[cfg_.ffe_taps / 2] = {1.0, 0.0};
  }

 private:
  EqualizerConfig cfg_;
  QamConstellation constellation_;
  std::vector<std::complex<double>> x_;      // T/2 FFE delay line
  std::vector<std::complex<double>> sv_;     // DFE decision history
  std::vector<std::complex<double>> ffe_c_;  // FFE coefficients
  std::vector<std::complex<double>> dfe_c_;  // DFE coefficients
};

}  // namespace hlsw::dsp
