// Synthetic wireless channel: T/2-spaced multipath ISI plus AWGN.
//
// The paper does not model the channel in its listing ("we have not
// implemented details of how the training sequence is generated"); the
// equalizer is exercised in the field. We substitute a standard baseband
// simulation (DESIGN.md section 2): the transmitter upsamples each QAM
// symbol by two (T/2 spacing, matching the paper's T/2 FFE), convolves with
// a complex multipath impulse response, and adds white Gaussian noise from
// a deterministic seeded generator. This exercises exactly the code path
// the FFE/DFE pair exists for: linear distortion plus post-cursor ISI.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace hlsw::dsp {

// Deterministic Gaussian source (Box-Muller over a xorshift state) so every
// experiment is reproducible bit-for-bit across platforms — std::normal_
// distribution is implementation-defined and would not be.
class GaussianNoise {
 public:
  explicit GaussianNoise(uint64_t seed, double sigma = 1.0);

  double sigma() const { return sigma_; }
  void set_sigma(double s) { sigma_ = s; }

  double next();
  std::complex<double> next_complex();  // i.i.d. real and imaginary parts

 private:
  double uniform01();
  uint64_t state_;
  double sigma_;
  bool have_spare_ = false;
  double spare_ = 0;
};

struct ChannelConfig {
  // Complex impulse response at T/2 spacing. Default: a mild two-ray
  // multipath profile with a quarter-symbol echo that an 8-tap T/2 FFE can
  // invert and a post-cursor the DFE must cancel.
  std::vector<std::complex<double>> taps = {
      {1.0, 0.0}, {0.35, 0.15}, {0.18, -0.08}, {0.05, 0.02}};
  double snr_db = 30.0;     // SNR per symbol, relative to symbol energy
  double symbol_energy = 1.0;  // average energy of the transmit alphabet
  uint64_t noise_seed = 0x5EED;
};

// Converts a QAM symbol stream into T/2-spaced received samples.
class MultipathChannel {
 public:
  explicit MultipathChannel(const ChannelConfig& cfg);

  // Sends one symbol; returns the two received T/2-spaced samples for this
  // symbol period (the pair Figure 4's x_in[2] consumes).
  struct SamplePair {
    std::complex<double> s0, s1;
  };
  SamplePair send(std::complex<double> symbol);

  double noise_sigma() const { return noise_sigma_; }
  const std::vector<std::complex<double>>& taps() const { return cfg_.taps; }

  void reset();

 private:
  ChannelConfig cfg_;
  std::vector<std::complex<double>> line_;  // T/2-spaced transmit history
  GaussianNoise noise_;
  double noise_sigma_;
};

}  // namespace hlsw::dsp
