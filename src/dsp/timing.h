// Symbol timing recovery — the third subsystem the paper explicitly leaves
// out ("we have not considered timing recovery within our design").
// Provided as the natural extension: a cubic Farrow interpolator for
// fractional-delay resampling, the Gardner timing-error detector (which
// works on T/2-spaced samples, exactly what the paper's front end
// delivers), and a proportional-integral loop closing the two into a
// timing-locked sampler.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace hlsw::dsp {

// Cubic Lagrange (Farrow-structure) interpolator: produces the signal value
// mu in [0,1) of the way between the two middle samples of its 4-deep line.
template <typename T = std::complex<double>>
class FarrowInterpolator {
 public:
  void push(T x) {
    line_[3] = line_[2];
    line_[2] = line_[1];
    line_[1] = line_[0];
    line_[0] = x;
  }

  // Interpolates between line_[2] (mu=0) and line_[1] (mu=1).
  T at(double mu) const {
    // Cubic Lagrange basis on samples x[-2], x[-1], x[0], x[1] with the
    // evaluation point mu after x[-1] (= line_[2]).
    const T xm2 = line_[3], xm1 = line_[2], x0 = line_[1], x1 = line_[0];
    const double m = mu;
    const double c_m2 = -m * (m - 1) * (m - 2) / 6.0;
    const double c_m1 = (m + 1) * (m - 1) * (m - 2) / 2.0;
    const double c_0 = -(m + 1) * m * (m - 2) / 2.0;
    const double c_1 = (m + 1) * m * (m - 1) / 6.0;
    return xm2 * c_m2 + xm1 * c_m1 + x0 * c_0 + x1 * c_1;
  }

  void reset() {
    for (auto& v : line_) v = T{};
  }

 private:
  T line_[4] = {};
};

// Gardner timing-error detector over T/2 samples:
//   e(n) = Re{ (y(nT) - y((n-1)T)) * conj(y((n-1/2)T)) }
// Zero-mean at the correct sampling phase, S-curve slope positive around it.
inline double gardner_ted(std::complex<double> strobe,
                          std::complex<double> half,
                          std::complex<double> prev_strobe) {
  return ((strobe - prev_strobe) * std::conj(half)).real();
}

struct TimingLoopConfig {
  double kp = 0.02;   // proportional gain
  double ki = 0.0005; // integral gain
  double mu0 = 0.0;   // initial fractional phase in [0,1)
};

// Closed timing loop: consumes the incoming T/2 stream sample by sample and
// emits re-timed T/2 pairs aligned to the recovered symbol phase.
class TimingRecovery {
 public:
  explicit TimingRecovery(const TimingLoopConfig& cfg = {})
      : cfg_(cfg), mu_(cfg.mu0) {}

  struct Output {
    bool strobe = false;              // a re-timed pair is ready
    std::complex<double> s0, s1;      // the pair (on-time, half-symbol)
    double error = 0;                 // last TED output
    double mu = 0;                    // current fractional phase
  };

  // Feed one raw T/2 sample; at every second sample a re-timed pair is
  // produced at the current fractional phase and the loop updates.
  Output push(std::complex<double> x) {
    interp_.push(x);
    Output out;
    ++phase_;
    if (phase_ % 2 != 0) {
      half_ = interp_.at(mu_);
      return out;
    }
    const std::complex<double> strobe = interp_.at(mu_);
    const double e = gardner_ted(strobe, half_, prev_strobe_);
    // A delay of tau in the signal is compensated by interpolating tau
    // EARLIER, and the Gardner S-curve rises through the lock point under
    // this interpolator convention — hence the negative feedback sign.
    integ_ += cfg_.ki * e;
    mu_ -= cfg_.kp * e + integ_;
    // Keep mu in [0,1): basepoint slips are absorbed by the 4-deep line
    // (adequate for the small static offsets exercised here).
    while (mu_ >= 1.0) mu_ -= 1.0;
    while (mu_ < 0.0) mu_ += 1.0;
    prev_strobe_ = strobe;
    out.strobe = true;
    out.s0 = strobe;
    out.s1 = half_;
    out.error = e;
    out.mu = mu_;
    return out;
  }

  double mu() const { return mu_; }

 private:
  TimingLoopConfig cfg_;
  FarrowInterpolator<> interp_;
  std::complex<double> half_{}, prev_strobe_{};
  double mu_ = 0;
  double integ_ = 0;
  long long phase_ = 0;
};

}  // namespace hlsw::dsp
