// Link-quality metrics: mean-squared-error tracking for convergence curves
// (experiment F3) and symbol/bit error counting for the precision sweep
// (experiment D2).
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <deque>

namespace hlsw::dsp {

// Exponentially-weighted and windowed MSE of the slicer error e(n).
class MseTracker {
 public:
  explicit MseTracker(double ewma_alpha = 0.02, std::size_t window = 256)
      : alpha_(ewma_alpha), window_(window) {}

  void update(std::complex<double> error) {
    const double e2 = std::norm(error);
    ewma_ = count_ == 0 ? e2 : (1 - alpha_) * ewma_ + alpha_ * e2;
    ++count_;
    win_.push_back(e2);
    win_sum_ += e2;
    if (win_.size() > window_) {
      win_sum_ -= win_.front();
      win_.pop_front();
    }
  }

  double ewma_mse() const { return ewma_; }
  double windowed_mse() const {
    return win_.empty() ? 0.0 : win_sum_ / static_cast<double>(win_.size());
  }
  double windowed_mse_db() const {
    return 10.0 * std::log10(windowed_mse() + 1e-300);
  }
  uint64_t count() const { return count_; }

 private:
  double alpha_;
  std::size_t window_;
  double ewma_ = 0;
  uint64_t count_ = 0;
  std::deque<double> win_;
  double win_sum_ = 0;
};

// Symbol and bit error counters against known transmitted data.
class ErrorCounter {
 public:
  void update(int sent_symbol, int decided_symbol, int bits_per_symbol) {
    ++symbols_;
    bits_ += static_cast<uint64_t>(bits_per_symbol);
    if (sent_symbol != decided_symbol) {
      ++symbol_errors_;
      bit_errors_ += static_cast<uint64_t>(
          __builtin_popcount(static_cast<unsigned>(sent_symbol ^ decided_symbol)));
    }
  }

  uint64_t symbols() const { return symbols_; }
  uint64_t symbol_errors() const { return symbol_errors_; }
  uint64_t bit_errors() const { return bit_errors_; }
  double ser() const {
    return symbols_ ? static_cast<double>(symbol_errors_) /
                          static_cast<double>(symbols_)
                    : 0.0;
  }
  double ber() const {
    return bits_ ? static_cast<double>(bit_errors_) / static_cast<double>(bits_)
                 : 0.0;
  }
  void reset() { *this = ErrorCounter(); }

 private:
  uint64_t symbols_ = 0;
  uint64_t bits_ = 0;
  uint64_t symbol_errors_ = 0;
  uint64_t bit_errors_ = 0;
};

}  // namespace hlsw::dsp
