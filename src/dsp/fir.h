// Complex FIR filter building block. The FFE and DFE of Figure 3 are both
// FIR structures over complex data with complex coefficients; this template
// is the double-precision reference used by the floating-point model and
// the channel simulator.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <vector>

namespace hlsw::dsp {

// Tapped delay line y(n) = sum_k c[k] * x(n-k). `push` shifts in a new
// sample; `output` computes the dot product against the current line.
template <typename T = std::complex<double>>
class FirFilter {
 public:
  explicit FirFilter(std::vector<T> coeffs)
      : coeffs_(std::move(coeffs)), line_(coeffs_.size(), T{}) {
    assert(!coeffs_.empty());
  }
  explicit FirFilter(std::size_t taps) : coeffs_(taps, T{}), line_(taps, T{}) {
    assert(taps > 0);
  }

  std::size_t taps() const { return coeffs_.size(); }
  const std::vector<T>& coeffs() const { return coeffs_; }
  std::vector<T>& coeffs() { return coeffs_; }
  const std::vector<T>& delay_line() const { return line_; }

  void push(T x) {
    for (std::size_t k = line_.size() - 1; k > 0; --k) line_[k] = line_[k - 1];
    line_[0] = x;
  }

  T output() const {
    T acc{};
    for (std::size_t k = 0; k < coeffs_.size(); ++k)
      acc += coeffs_[k] * line_[k];
    return acc;
  }

  // Convenience: push then compute.
  T step(T x) {
    push(x);
    return output();
  }

  void reset() { std::fill(line_.begin(), line_.end(), T{}); }

 private:
  std::vector<T> coeffs_;
  std::vector<T> line_;
};

}  // namespace hlsw::dsp
