// Abstract syntax for the Verilog-2001 subset hlsw emits and consumes: the
// synthesizable constructs produced by rtl::emit_verilog (nets, register
// files, continuous assigns, one-always FSMs with nonblocking assignment)
// plus the behavioral constructs the generated self-checking testbench uses
// (initial blocks, tasks, event/delay control, $display and friends).
//
// The parser builds this tree verbatim; elaboration (elab.h) resolves
// identifiers, folds localparams, annotates every expression with its
// self-determined size and signedness per IEEE 1364-2001 section 4.4/4.5,
// and flattens module instances into a single executable Design.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hlsw::vsim {

enum class ExprKind {
  kNumber,     // sized or unsized literal
  kString,     // "..." ($display format)
  kIdent,      // signal or localparam reference
  kSelect,     // base[index] — array element or bit select
  kRange,      // base[hi:lo] — constant part select
  kUnary,      // ~ - + ! and reduction & | ^ ~& ~| ~^
  kBinary,     // arithmetic / bitwise / compare / logical / shift
  kTernary,    // c ? a : b
  kConcat,     // {a, b, ...}
  kReplicate,  // {n{a}}
  kSysCall,    // $signed(x), $unsigned(x)
};

struct Expr {
  ExprKind kind;
  // kNumber payload (value bits, declared width, 's flag, sized flag).
  unsigned long long num = 0;
  int num_width = 32;
  bool num_sized = false;
  bool num_signed = false;
  // kString payload.
  std::string str;
  // kIdent name, kUnary/kBinary operator spelling, kSysCall function name.
  std::string name;
  std::vector<std::shared_ptr<Expr>> kids;

  // ---- Elaboration annotations (elab.cpp fills these in) ----
  int sig = -1;       // resolved signal index for kIdent
  int hi = 0, lo = 0; // folded bounds for kRange
  long long repl = 1; // folded replication count
  int self_w = 0;     // self-determined width (LRM 4.4.1 table)
  bool self_sgn = false;  // self-determined signedness (LRM 4.5.1)
};

using ExprPtr = std::shared_ptr<Expr>;

enum class StmtKind {
  kBlock,          // begin ... end
  kBlockingAssign, // lhs = rhs
  kNbAssign,       // lhs <= rhs
  kIf,             // cond, sub[0] then, sub[1] else (optional)
  kCase,           // cond subject + items
  kRepeat,         // cond count, sub[0] body
  kForever,        // sub[0] body
  kEventCtrl,      // @(events) sub[0]
  kDelay,          // #delay sub[0]
  kTaskCall,       // callee(args) — inlined away during elaboration
  kSysTask,        // $display / $finish / $stop / $dumpfile / $dumpvars
  kNull,           // ;
};

enum class Edge { kPos, kNeg, kAny };

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;

struct CaseItem {
  std::vector<ExprPtr> labels;  // empty + is_default for `default:`
  StmtPtr body;
  bool is_default = false;
};

struct Stmt {
  StmtKind kind;
  ExprPtr lhs, rhs, cond;
  std::vector<StmtPtr> sub;
  std::vector<CaseItem> items;
  std::vector<std::pair<Edge, ExprPtr>> events;
  double delay = 0;  // time units for kDelay
  std::string callee;
  std::vector<ExprPtr> args;
};

// One declared net/variable (reg, wire, integer, or port).
struct NetDecl {
  std::string name;
  bool is_reg = false;     // reg / integer (procedurally assigned)
  bool is_signed = false;
  int width = 1;
  int array_len = 0;       // 0 = scalar, else register file [0:len-1]
  bool has_init = false;
  long long init = 0;
  bool is_input = false;
  bool is_output = false;
};

struct ContAssign {
  ExprPtr lhs;
  ExprPtr rhs;
};

struct PortConn {
  std::string port;
  ExprPtr expr;
};

struct Instance {
  std::string module_name;
  std::string inst_name;
  std::vector<PortConn> conns;
};

struct TaskDecl {
  std::string name;
  std::vector<NetDecl> args;  // ANSI input arguments
  StmtPtr body;
};

struct Module {
  std::string name;
  std::vector<std::string> port_order;
  std::vector<NetDecl> nets;  // ports included
  std::vector<std::pair<std::string, long long>> localparams;
  std::vector<ContAssign> assigns;
  std::vector<StmtPtr> initials;
  std::vector<StmtPtr> always;
  std::vector<TaskDecl> tasks;
  std::vector<Instance> instances;
};

struct SourceUnit {
  std::vector<Module> modules;
};

}  // namespace hlsw::vsim
