// Codegen backend for vsim — the third rung of the backend ladder
// (event kernel -> compiled tape interpreter -> generated native code).
//
// The compiled backend (compile.h) already levelizes the design into a
// combinational DAG of expression tapes plus branch-resolved process
// programs; this backend pretty-prints that CompiledDesign as one
// self-contained C++ translation unit (straight-line level-ordered comb
// flush with per-node change detection, goto-based process bodies with the
// same double-buffered NBA commit, statically baked fanout/trigger
// bookkeeping), compiles it with the host toolchain and dlopen()s the
// result. Where the interpreter activity-gates (only re-evaluating nodes
// whose fanin changed), the generated flush simply evaluates EVERY node in
// level order: full re-evaluation of a pure levelized DAG is idempotent,
// change detection keeps the SimStats event counts identical, and
// straight-line native code beats the gated interpreter by a wide margin
// (bench/bench_vsim.cpp, vsim_harness_100_symbols_codegen).
//
// Fallback chain (silent, typed, reason recorded): codegen refuses designs
// the compiled backend refuses (it consumes the compiled plan), designs
// with $display/$dumpfile/$dumpvars (testbenches keep the interpreter
// tiers, which own the display log and VCD writer), and any environment
// without a working host toolchain — Simulation then degrades to the
// compiled interpreter with fallback_reason() prefixed "codegen: ".
//
// Shared-object cache: generated sources are fingerprinted (FNV-1a over
// the full generated text) and compiled artifacts live under
// $HLSW_VSIM_CODEGEN_CACHE (default <tmp>/hlsw-vsim-codegen) as
// <fingerprint>.{cpp,so,log} — the same content-keyed discipline as
// hls::SynthesisCache. A cached .so is dlopen()ed and verified against its
// embedded fingerprint + ABI version before reuse; compilation of one
// fingerprint is serialized process-wide. Counters:
// vsim.codegen.so_cache.{hits,misses}, vsim.codegen.compiles,
// vsim.codegen.fallbacks; the toolchain invocation runs under a
// "vsim.codegen.compile" span. Toolchain resolution: $HLSW_CODEGEN_CXX
// (value "none" or "" disables codegen outright — the fallback tests use
// this), else $CXX, else the first of c++/g++/clang++ that answers
// --version.
// Packed codegen (the top rung, lanes > 1): the same generator also emits a
// LANE-MAJOR engine for one (CompiledDesign, lane count) pair — every comb
// node and branch-resolved process body becomes a fixed-trip
// `for (l = 0; l < kL; ++l)` loop over [sig][lane] state planes that the
// host compiler vectorizes, with per-lane execution masks and the exact
// context-splitting divergence semantics of the interpreted PackedSim
// (pack.h), which serves as the bit-identity oracle. The packed ABI is
// hlsw_cg_pk_* and the lane count is baked into the generated text, so
// fingerprints differ per lane count and from the scalar ABI by
// construction (tests/vsim/codegen_test.cpp pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vsim/compile.h"
#include "vsim/pack.h"
#include "vsim/sim.h"

namespace hlsw::vsim {

// A generated, compiled and loaded engine for one CompiledDesign. The
// dlopen handle is retained for the process lifetime (never dlclose()d);
// instances only hold resolved entry points. Immutable and shared across
// every CodegenSim built from it, like CompiledDesign itself.
struct CodegenModule {
  std::shared_ptr<const CompiledDesign> plan;
  std::string fingerprint;
  std::string so_path;

  // Resolved extern "C" entry points of the generated engine.
  void* (*create)() = nullptr;
  void (*destroy)(void*) = nullptr;
  void (*poke)(void*, int, std::uint64_t) = nullptr;
  std::uint64_t (*peek)(void*, int) = nullptr;
  std::uint64_t (*peek_elem)(void*, int, int) = nullptr;
  // Runs the settle loop with the given zero-delay instruction budget.
  // Returns 0 when quiescent, or 1 + proc index when the budget blew.
  int (*settle)(void*, long long) = nullptr;
  // Copies {events, nba_commits, delta_cycles, instrs, flushes} into
  // out[0..4].
  void (*stats)(void*, long long*) = nullptr;
};

// A generated, compiled and loaded LANE-MAJOR engine for one
// (CompiledDesign, lanes) pair. Same lifetime rules as CodegenModule.
struct PackedCodegenModule {
  std::shared_ptr<const CompiledDesign> plan;
  int lanes = 0;
  std::string fingerprint;
  std::string so_path;

  void* (*create)() = nullptr;
  void (*destroy)(void*) = nullptr;
  // Broadcasts one value to every lane in `mask` (change-detected per
  // lane, edge triggers fired for the changed lanes).
  void (*poke)(void*, int, std::uint64_t, std::uint64_t) = nullptr;
  // Per-lane values: plane[l] applied to every lane in `mask`.
  void (*poke_plane)(void*, int, const std::uint64_t*,
                     std::uint64_t) = nullptr;
  std::uint64_t (*peek)(void*, int, int) = nullptr;            // sig, lane
  std::uint64_t (*peek_elem)(void*, int, int, int) = nullptr;  // sig,idx,lane
  // Bitmask over lanes whose current value of `sig` is nonzero.
  std::uint64_t (*nonzero)(void*, int) = nullptr;
  // Settle loop; the budget is the PRE-SCALED per-slot instruction cap
  // (max_instrs_per_slot * lanes — packed instr counts are lane sums).
  // Returns 0 when quiescent, or 1 + proc index when the budget blew.
  int (*settle)(void*, long long) = nullptr;
  // Copies {events, nba_commits, delta_cycles, instrs, flushes,
  // divergence_splits} into out[0..5].
  void (*stats)(void*, long long*) = nullptr;
};

// True when a host C++ toolchain is available to this process (and codegen
// has not been disabled via HLSW_CODEGEN_CXX=none). Cheap after the first
// probe; re-reads the environment on every call so tests can flip it.
bool codegen_available();

// The compiler command codegen would invoke ("" when unavailable).
std::string codegen_toolchain();

// Generates the C++ translation unit for one compiled plan (exposed for
// tests and for inspecting what the backend emits).
std::string codegen_source(const CompiledDesign& cd);

// Memoized generate+compile+dlopen for `design`. Returns nullptr with a
// human-readable reason in *why (may be nullptr) when the design is not
// codegen-able or no toolchain exists. Success and failure are both
// memoized per compiled plan; the toolchain-disabled case is decided
// before the memo so re-enabling the toolchain is not poisoned.
std::shared_ptr<const CodegenModule> codegen_plan(
    const std::shared_ptr<const Design>& design, std::string* why);

// Generates the lane-major C++ translation unit for one compiled plan at a
// fixed lane count (exposed for tests).
std::string packed_codegen_source(const CompiledDesign& cd, int lanes);

// Memoized generate+compile+dlopen of the lane-major engine, keyed
// (plan, lanes). Takes the compiled plan directly — packed callers always
// hold one — and refuses plans with $display/$dump (plan_packable) the same
// way the scalar generator does. Same toolchain and cache discipline as
// codegen_plan.
std::shared_ptr<const PackedCodegenModule> packed_codegen_plan(
    const std::shared_ptr<const CompiledDesign>& plan, int lanes,
    std::string* why);

// Execution engine over one loaded CodegenModule: the same poke/settle
// delta-cycle contract as CompiledSim, with the whole settle loop (comb
// flush, process scheduling, NBA commit) running inside the generated
// shared object. No $display/VCD support by construction (such designs
// never reach this backend).
class CodegenSim {
 public:
  CodegenSim(std::shared_ptr<const CodegenModule> mod, const SimConfig& cfg);
  ~CodegenSim();
  CodegenSim(const CodegenSim&) = delete;
  CodegenSim& operator=(const CodegenSim&) = delete;

  void poke(int sig, std::uint64_t value);
  std::uint64_t peek(int sig) const { return mod_->peek(st_, sig); }
  long long peek_signed(int sig) const;
  std::uint64_t peek_elem(int sig, int index) const;
  void settle();
  RunResult run();  // no timers on this backend: settle and report

  long long now() const { return 0; }
  const SimStats& stats() const;
  const std::vector<std::string>& display_log() const { return display_; }

 private:
  std::shared_ptr<const CodegenModule> mod_;
  SimConfig cfg_;
  void* st_ = nullptr;                  // generated engine state
  mutable SimStats stats_;              // refreshed from the engine on read
  std::vector<std::string> display_;    // always empty on this backend
};

// Multi-lane execution over one loaded PackedCodegenModule: the
// PackedEngine contract (pack.h) with the whole settle loop — lane-loop
// comb flush, masked process scheduling with context splitting, plane
// NBA commit — running inside the generated shared object. Bit-identical
// to the interpreted PackedSim on values, lane masks, divergence counts
// and SimStats (pack_test certifies it against the oracle).
class PackedCodegenSim : public PackedEngine {
 public:
  PackedCodegenSim(std::shared_ptr<const PackedCodegenModule> mod,
                   const SimConfig& cfg);
  ~PackedCodegenSim() override;
  PackedCodegenSim(const PackedCodegenSim&) = delete;
  PackedCodegenSim& operator=(const PackedCodegenSim&) = delete;

  int lanes() const override { return mod_->lanes; }
  std::uint64_t full_mask() const override { return full_mask_; }
  const CompiledDesign& compiled() const override { return *mod_->plan; }

  void poke(int sig, std::uint64_t value, std::uint64_t mask) override;
  void poke_lane(int sig, int lane, std::uint64_t value) override;
  void poke_plane(int sig, const std::uint64_t* plane,
                  std::uint64_t mask) override;
  std::uint64_t peek(int sig, int lane) const override;
  long long peek_signed(int sig, int lane) const override;
  std::uint64_t peek_elem(int sig, int index, int lane) const override;
  std::uint64_t peek_nonzero_mask(int sig) const override;
  void settle() override;

  const SimStats& stats() const override;
  long long divergence_splits() const override;
  const char* backend() const override { return "packed_codegen"; }

 private:
  void refresh_stats() const;

  std::shared_ptr<const PackedCodegenModule> mod_;
  SimConfig cfg_;
  std::uint64_t full_mask_;
  void* st_ = nullptr;
  mutable SimStats stats_;
  mutable long long divergence_splits_ = 0;
};

}  // namespace hlsw::vsim
