// Codegen backend for vsim — the third rung of the backend ladder
// (event kernel -> compiled tape interpreter -> generated native code).
//
// The compiled backend (compile.h) already levelizes the design into a
// combinational DAG of expression tapes plus branch-resolved process
// programs; this backend pretty-prints that CompiledDesign as one
// self-contained C++ translation unit (straight-line level-ordered comb
// flush with per-node change detection, goto-based process bodies with the
// same double-buffered NBA commit, statically baked fanout/trigger
// bookkeeping), compiles it with the host toolchain and dlopen()s the
// result. Where the interpreter activity-gates (only re-evaluating nodes
// whose fanin changed), the generated flush simply evaluates EVERY node in
// level order: full re-evaluation of a pure levelized DAG is idempotent,
// change detection keeps the SimStats event counts identical, and
// straight-line native code beats the gated interpreter by a wide margin
// (bench/bench_vsim.cpp, vsim_harness_100_symbols_codegen).
//
// Fallback chain (silent, typed, reason recorded): codegen refuses designs
// the compiled backend refuses (it consumes the compiled plan), designs
// with $display/$dumpfile/$dumpvars (testbenches keep the interpreter
// tiers, which own the display log and VCD writer), and any environment
// without a working host toolchain — Simulation then degrades to the
// compiled interpreter with fallback_reason() prefixed "codegen: ".
//
// Shared-object cache: generated sources are fingerprinted (FNV-1a over
// the full generated text) and compiled artifacts live under
// $HLSW_VSIM_CODEGEN_CACHE (default <tmp>/hlsw-vsim-codegen) as
// <fingerprint>.{cpp,so,log} — the same content-keyed discipline as
// hls::SynthesisCache. A cached .so is dlopen()ed and verified against its
// embedded fingerprint + ABI version before reuse; compilation of one
// fingerprint is serialized process-wide. Counters:
// vsim.codegen.so_cache.{hits,misses}, vsim.codegen.compiles,
// vsim.codegen.fallbacks; the toolchain invocation runs under a
// "vsim.codegen.compile" span. Toolchain resolution: $HLSW_CODEGEN_CXX
// (value "none" or "" disables codegen outright — the fallback tests use
// this), else $CXX, else the first of c++/g++/clang++ that answers
// --version.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "vsim/compile.h"
#include "vsim/sim.h"

namespace hlsw::vsim {

// A generated, compiled and loaded engine for one CompiledDesign. The
// dlopen handle is retained for the process lifetime (never dlclose()d);
// instances only hold resolved entry points. Immutable and shared across
// every CodegenSim built from it, like CompiledDesign itself.
struct CodegenModule {
  std::shared_ptr<const CompiledDesign> plan;
  std::string fingerprint;
  std::string so_path;

  // Resolved extern "C" entry points of the generated engine.
  void* (*create)() = nullptr;
  void (*destroy)(void*) = nullptr;
  void (*poke)(void*, int, std::uint64_t) = nullptr;
  std::uint64_t (*peek)(void*, int) = nullptr;
  std::uint64_t (*peek_elem)(void*, int, int) = nullptr;
  // Runs the settle loop with the given zero-delay instruction budget.
  // Returns 0 when quiescent, or 1 + proc index when the budget blew.
  int (*settle)(void*, long long) = nullptr;
  // Copies {events, nba_commits, delta_cycles, instrs, flushes} into
  // out[0..4].
  void (*stats)(void*, long long*) = nullptr;
};

// True when a host C++ toolchain is available to this process (and codegen
// has not been disabled via HLSW_CODEGEN_CXX=none). Cheap after the first
// probe; re-reads the environment on every call so tests can flip it.
bool codegen_available();

// The compiler command codegen would invoke ("" when unavailable).
std::string codegen_toolchain();

// Generates the C++ translation unit for one compiled plan (exposed for
// tests and for inspecting what the backend emits).
std::string codegen_source(const CompiledDesign& cd);

// Memoized generate+compile+dlopen for `design`. Returns nullptr with a
// human-readable reason in *why (may be nullptr) when the design is not
// codegen-able or no toolchain exists. Success and failure are both
// memoized per compiled plan; the toolchain-disabled case is decided
// before the memo so re-enabling the toolchain is not poisoned.
std::shared_ptr<const CodegenModule> codegen_plan(
    const std::shared_ptr<const Design>& design, std::string* why);

// Execution engine over one loaded CodegenModule: the same poke/settle
// delta-cycle contract as CompiledSim, with the whole settle loop (comb
// flush, process scheduling, NBA commit) running inside the generated
// shared object. No $display/VCD support by construction (such designs
// never reach this backend).
class CodegenSim {
 public:
  CodegenSim(std::shared_ptr<const CodegenModule> mod, const SimConfig& cfg);
  ~CodegenSim();
  CodegenSim(const CodegenSim&) = delete;
  CodegenSim& operator=(const CodegenSim&) = delete;

  void poke(int sig, std::uint64_t value);
  std::uint64_t peek(int sig) const { return mod_->peek(st_, sig); }
  long long peek_signed(int sig) const;
  std::uint64_t peek_elem(int sig, int index) const;
  void settle();
  RunResult run();  // no timers on this backend: settle and report

  long long now() const { return 0; }
  const SimStats& stats() const;
  const std::vector<std::string>& display_log() const { return display_; }

 private:
  std::shared_ptr<const CodegenModule> mod_;
  SimConfig cfg_;
  void* st_ = nullptr;                  // generated engine state
  mutable SimStats stats_;              // refreshed from the engine on read
  std::vector<std::string> display_;    // always empty on this backend
};

}  // namespace hlsw::vsim
