// Recursive-descent parser for the vsim Verilog subset: module headers with
// ANSI port lists, net/reg/integer/array declarations, localparams,
// continuous assigns, always/initial processes, ANSI tasks, module
// instantiation by named port connection, and the full expression grammar
// the rtl emitter and testbench generator produce (signed arithmetic,
// shifts including <<</>>>, part/bit selects, concatenation, replication,
// ternaries, $signed/$unsigned).
//
// Malformed input throws std::runtime_error with a line number — the parser
// negative tests pin this contract.
#pragma once

#include <string>

#include "vsim/ast.h"

namespace hlsw::vsim {

// Parses one or more modules from `src`.
SourceUnit parse(const std::string& src);

}  // namespace hlsw::vsim
