// Bit-packed multi-lane execution for the compiled vsim backend.
//
// Signals are 2-state and at most 64 bits wide, so the same signal across
// up to 64 *independent* stimulus streams packs into a lane-major array:
// lane l of signal s lives at vals[s*L + l]. One PackedSim then advances
// all L streams in a single pass over the CompiledDesign — every tape op
// executes as a tight loop over the lane array (one dispatch amortized
// over L lanes, and the loops autovectorize), turning vsim_sweep's
// block-per-Simulation replay into a single multi-lane run.
//
// Lane divergence: processes execute under a 64-bit lane mask. Each
// activation starts as one (pc, mask) context; a data-dependent branch
// (kJumpIfFalse / kCaseJump / kRepeatTest) whose lanes disagree splits the
// context and the subsets run one after another — in the limit a context
// shrinks to a single lane, which IS the scalar fallback for fully
// divergent processes (counted as vsim.packed.divergence_splits). Lanes
// are state-disjoint by construction, so subset execution order cannot be
// observed; per-lane NBA order is preserved because every lane is in
// exactly one subset of any split.
//
// Equivalence contract (tests/vsim/pack_test.cpp): running N lanes packed
// is bit-identical to N scalar CompiledSim runs of the same streams —
// including event/NBA-commit accounting summed over lanes. The packed
// harness freezes finished lanes (clock gated via masked pokes) so a lane
// that asserts `done` early sees exactly the clock edges its scalar replay
// would.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/ir.h"
#include "hls/profile.h"
#include "rtl/testbench.h"
#include "vsim/compile.h"

namespace hlsw::vsim {

// Maximum lanes per PackedSim: one lane per bit of the lane masks.
inline constexpr int kMaxLanes = 64;

// The multi-lane engine contract shared by the interpreted PackedSim and
// the generated-native PackedCodegenSim (codegen.h): lane-masked pokes,
// per-lane peeks, a settle loop and lane-summed accounting. The two are
// bit-identical by construction (pack_test proves it), so PackedDutHarness
// selects whichever tier SimConfig::backend admits and drives it through
// this interface.
class PackedEngine {
 public:
  virtual ~PackedEngine() = default;

  virtual int lanes() const = 0;
  // All-ones over the configured lane count.
  virtual std::uint64_t full_mask() const = 0;
  // The shared plan this engine executes (signal handles resolve through
  // its elaborated design).
  virtual const CompiledDesign& compiled() const = 0;

  // Sets signal `sig` to `value` on every lane in `mask` (other lanes are
  // untouched — the masked poke is how the harness freezes lanes).
  virtual void poke(int sig, std::uint64_t value, std::uint64_t mask) = 0;
  virtual void poke_lane(int sig, int lane, std::uint64_t value) = 0;
  // Per-lane values in one call: plane[l] is applied to every lane in
  // `mask`. One change-detection pass instead of lanes() masked pokes.
  virtual void poke_plane(int sig, const std::uint64_t* plane,
                          std::uint64_t mask) = 0;
  virtual std::uint64_t peek(int sig, int lane) const = 0;
  virtual long long peek_signed(int sig, int lane) const = 0;
  virtual std::uint64_t peek_elem(int sig, int index, int lane) const = 0;
  // Bitmask over lanes whose current value of `sig` is nonzero (forces a
  // lazy node once, like peek). The harness polls `done` with this.
  virtual std::uint64_t peek_nonzero_mask(int sig) const = 0;

  // Runs delta cycles at the current time until every lane is quiescent.
  virtual void settle() = 0;

  // Aggregate over all lanes; equals the sum of the per-lane scalar runs.
  virtual const SimStats& stats() const = 0;
  // Contexts created by divergent branches (0 = lanes stayed in lockstep).
  virtual long long divergence_splits() const = 0;

  // Which engine this is: "packed_codegen" or "compiled" (the interpreted
  // tier keeps the name profile_run has always recorded for it).
  virtual const char* backend() const = 0;
};

// Multi-lane interpreter over one CompiledDesign. The same activity-gated
// level-ordered flush, lowest-ready-process scheduling and double-buffered
// NBA commit as CompiledSim, with every value plane L lanes wide. No
// $display/VCD support (sweep DUTs have neither; designs that can dump
// still work — the dump simply never starts because run() is never used).
class PackedSim : public PackedEngine {
 public:
  PackedSim(std::shared_ptr<const CompiledDesign> cd, int lanes,
            const SimConfig& cfg = {});
  PackedSim(const PackedSim&) = delete;
  PackedSim& operator=(const PackedSim&) = delete;
  ~PackedSim() override;

  int lanes() const override { return lanes_; }
  std::uint64_t full_mask() const override { return full_mask_; }
  const CompiledDesign& compiled() const override { return *cd_; }

  void poke(int sig, std::uint64_t value, std::uint64_t mask) override;
  void poke_lane(int sig, int lane, std::uint64_t value) override;
  void poke_plane(int sig, const std::uint64_t* plane,
                  std::uint64_t mask) override;
  std::uint64_t peek(int sig, int lane) const override;
  long long peek_signed(int sig, int lane) const override;
  std::uint64_t peek_elem(int sig, int index, int lane) const override;
  std::uint64_t peek_nonzero_mask(int sig) const override;

  void settle() override;

  const SimStats& stats() const override { return stats_; }
  long long divergence_splits() const override { return divergence_splits_; }
  const char* backend() const override { return "compiled"; }

 private:
  struct Ctx {
    int pc;
    std::uint64_t mask;
  };

  std::uint64_t* at(int slot) { return stack_.data() + slot * lanes_; }
  std::uint64_t* val(int sig) {
    return vals_.data() + static_cast<std::size_t>(sig) * lanes_;
  }
  const std::uint64_t* val(int sig) const {
    return vals_.data() + static_cast<std::size_t>(sig) * lanes_;
  }

  // Evaluates `tape` for every lane; returns the result plane (top of
  // stack, valid until the next run_tape call).
  const std::uint64_t* run_tape(int tape);
  // Masked scalar write: change-detects per lane, counts events, marks
  // fanout and fires edge triggers for the changed lanes.
  void set_masked(int sig, const std::uint64_t* nv, std::uint64_t mask);
  void set_masked_const(int sig, std::uint64_t nv, std::uint64_t mask);
  void set_elem_lane(int sig, int lane, long long index, std::uint64_t v);
  void mark_fanout(int sig);
  void force_lazy(int node);
  void flush_comb();
  void commit_nba();
  void run_proc(int p, std::uint64_t mask);
  [[noreturn]] void fail_budget(int proc) const;

  std::shared_ptr<const CompiledDesign> cd_;
  SimConfig cfg_;
  int lanes_;
  std::uint64_t full_mask_;

  std::vector<std::uint64_t> vals_;  // lane-major: [sig][lane]
  // Lane-major per array signal: arr_[sig][elem * lanes_ + lane].
  std::vector<std::vector<std::uint64_t>> arr_;
  std::vector<std::uint64_t> stack_;   // max_stack planes of L lanes
  std::vector<std::uint64_t> scratch_;  // two planes, instr staging

  // Activity gating, as CompiledSim: per-level pending queues.
  std::vector<std::vector<std::int32_t>> level_q_;
  std::vector<char> node_pending_;
  long long pending_ = 0;

  std::vector<std::uint64_t> ready_;  // per proc: mask of ready lanes
  int running_proc_ = -1;
  // Per-proc per-lane repeat-counter stacks (outer index proc, then lane).
  std::vector<std::vector<std::vector<long long>>> reps_;

  // NBA queue. Entries reference lane planes in the value/index arenas so
  // enqueueing never allocates once warm.
  struct NbaEntry {
    int sig;
    std::uint64_t mask;
    std::int64_t val_ofs;  // plane offset into nba_vals_
    std::int64_t idx_ofs;  // plane offset into nba_idx_, -1 for scalars
  };
  std::vector<NbaEntry> nba_, nba_scratch_;
  std::vector<std::uint64_t> nba_vals_, nba_vals_scratch_;
  std::vector<long long> nba_idx_, nba_idx_scratch_;
  std::int64_t push_val_plane(const std::uint64_t* v, std::uint64_t pmask);
  std::int64_t push_idx_plane(const std::uint64_t* v, std::uint64_t pmask);

  long long slot_instr_base_ = 0;
  long long divergence_splits_ = 0;
  SimStats stats_;
};

// Lockstep multi-lane DutHarness: each lane is an independent block of a
// sweep, driven through the same clk/rst/start/done protocol as
// vsim::DutHarness. Lanes whose stream is exhausted — or whose `done`
// arrived before the slowest lane's — are frozen by clock-gating their
// lane in the masked pokes, preserving bit-identity with per-lane scalar
// replay.
//
// Engine selection: kAuto/kCodegen/kPackedCodegen try the generated
// lane-major engine (PackedCodegenSim) first and degrade to the
// interpreted PackedSim with a "packed-codegen: " prefixed
// fallback_reason(); kEvent/kCompiled force the interpreted tier (the
// benchmarks use this to keep the interpreted baseline measurable).
class PackedDutHarness {
 public:
  PackedDutHarness(const hls::Function& f,
                   std::shared_ptr<const CompiledDesign> plan, int lanes,
                   const SimConfig& cfg = {});

  void reset();  // rst high across 3 edges, all lanes

  // Runs one stream of vectors per lane (streams.size() == lanes();
  // lengths may differ) and returns the per-lane outputs.
  std::vector<std::vector<hls::PortIo>> run_streams(
      const std::vector<std::vector<hls::PortIo>>& streams);

  // Reads the instrumented design's perf_* counters summed across lanes.
  // Every counter accumulates per invocation, so the lane sum equals what
  // one scalar harness replaying all the lanes' streams back to back would
  // measure — the identity profile_run's packed leg relies on.
  hls::CounterValues read_counters(
      const std::vector<hls::PerfCounter>& map) const;

  PackedEngine& sim() { return *sim_; }
  // "packed_codegen" or "compiled" — which tier actually runs the lanes.
  const char* backend() const { return sim_->backend(); }
  // Why the generated tier was not used ("" when it runs, or when the
  // interpreted tier was requested explicitly); prefixed "packed-codegen: ".
  const std::string& fallback_reason() const { return fallback_reason_; }

 private:
  void tick(std::uint64_t mask);

  std::vector<rtl::PortPin> pins_;
  std::unique_ptr<PackedEngine> sim_;
  std::string fallback_reason_;
  std::vector<int> pin_handle_;
  std::vector<std::uint64_t> in_plane_;  // staging for per-pin input pokes
  int h_clk_ = -1;
  int h_rst_ = -1;
  int h_start_ = -1;
  int h_done_ = -1;
};

}  // namespace hlsw::vsim
