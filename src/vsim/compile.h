// Compiled cycle-based backend for vsim — the Verilator-style counterpart
// to the event-driven kernel in sim.h, mirroring what rtl::Simulator's
// compiled execution plans did for the scheduled RTL model.
//
// After elaboration the design is *levelized*: every continuous assign
// becomes a node in a combinational DAG (level = 1 + max level of its
// writers), and every expression is flattened into a tape of stack-machine
// ops with all width/signedness context resolved at compile time — the
// exact IEEE 1364-2001 4.4/4.5 propagation the event kernel performs per
// evaluation (context width, sign extension at self-determined boundaries,
// comparison/shift/division special cases) is baked into the op stream
// once. Edge-triggered `always @(posedge ...)` bodies compile into
// sequential update programs with the same double-buffered NBA commit
// queue as the event kernel; `always @(a or b)`/`@*` bodies become
// sensitivity-triggered combinational programs. Execution per delta is
// activity-gated: only assign nodes whose fanin actually changed are
// re-evaluated, in level order, so a clock tick costs O(changed cone)
// instead of O(event heap).
//
// Designs the levelizer cannot prove cycle-schedulable fall back to the
// event-driven engine (compile_design returns nullptr with a reason):
//   - explicit `#` delays or `forever` loops (time control),
//   - nested event control inside a process body,
//   - $finish/$stop interactivity (testbenches keep the event kernel),
//   - zero-delay combinational feedback (a cycle through assigns and/or
//     blocking writes of sensitivity-triggered always blocks),
//   - constructs the event kernel itself only rejects dynamically
//     (string operands, register files read without a select, ...).
// The dispatch lives in Simulation (sim.h): VsimOptions::compiled (default
// true) selects this backend when the design compiles, silently keeping
// the event engine otherwise. $display, VCD dumping, DutHarness pokes and
// SimStats event/NBA accounting behave identically on both backends.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vsim/elab.h"
#include "vsim/sim.h"

namespace hlsw::vsim {

// One stack-machine op. `w` carries an operand width where the semantics
// need it (sign bit position, shift/compare width); `a` is a signal index,
// bit offset or replication count; `imm` is a constant or result mask.
struct TOp {
  enum Code : std::uint8_t {
    kConst,     // push imm
    kLoad,      // push val[a] (invariant: already masked to declared width)
    kLoadSx,    // push sign-extend(val[a] from w bits) & imm (kLoad+kSext)
    kLoadTr,    // push val[a] & imm (kLoad+kTrunc)
    kLoadElem,  // pop signed index, push arr[a][idx] (out of range -> 0)
    kTrunc,     // v &= imm
    kSext,      // sign-extend from w bits, then &= imm
    kToSigned,  // reinterpret low w bits as signed (64-bit extend, no mask)
    kBitSel,    // pop signed index, pop base (w bits wide), push bit or 0
    kRange,     // v = (v >> a) & imm
    kNeg,       // v = (0 - v) & imm
    kNot,       // v = ~v & imm
    kLNot,      // v = (v == 0)
    kNeZero,    // v = (v != 0)
    kRedAnd,    // v = (v == imm)
    kRedNand,   // v = (v != imm)
    kRedOr,     // v = (v != 0)
    kRedNor,    // v = (v == 0)
    kRedXor,    // v = parity(v)
    kRedXnor,   // v = !parity(v)
    kAnd, kOr, kXor,   // pop b, a; push a op b
    kXnorB,     // push ~(a ^ b) & imm
    kAdd, kSub, kMul,  // push (a op b) & imm
    kDivU, kModU,      // b == 0 -> 0
    kDivS, kModS,      // w-bit signed; b == 0 -> 0, b == -1 special-cased
    kEq, kNe,
    kLtU, kLeU, kGtU, kGeU,
    kLtS, kLeS, kGtS, kGeS,  // w-bit signed compares
    kShl,       // pop sh, a; sh >= 64 -> 0 else (a << sh) & imm
    kShrU,      // sh >= 64 -> 0 else a >> sh
    kShrS,      // w-bit arithmetic shift, clamped at 63, & imm
    kConcatAcc, // pop kid, acc; push (acc << w) | kid
    kRepl,      // pop v; push v repeated a times at width w
    kMux,       // pop else_v, then_v, cond; push cond ? then_v : else_v
    kTime,      // push current simulation time (always 0 on this backend)
    // Superinstructions, formed by the finish_tape peephole. The xC family
    // folds a kConst operand into the binop (constant in `a`, except the
    // maskless bitwise ops which keep it in `imm`); the xL family folds a
    // plain kLoad of signal `a` (these are load sites: every scan that
    // looks for kLoad must treat them as reads of val[a]).
    kLoadElemSx,  // pop idx, push sign-extend(arr[a][idx] from w) & imm
    kLoadElemTr,  // pop idx, push arr[a][idx] & imm
                  // (kLoadElem/kLoadElemTr: w != 0 sign-extends the
                  // popped index from w bits first — a folded cx_index)
    kAddC, kSubC, kMulC,  // v = (v op a) & imm
    kOrC, kXorC,          // v = v op imm (const-AND folds to kTrunc)
    kShlC,                // v = (v << a) & imm (a < 64)
    kConcatC,             // v = (v << w) | a
    kAddL, kSubL, kMulL,  // v = (v op val[a]) & imm
    kAndL, kOrL, kXorL,   // v = v op val[a]
    kConcatL,             // v = (v << w) | val[a]
    kRangeL,              // push (val[a] >> w) & imm
    kLoadShlC,            // push (val[a] << w) & imm
    kHalt,      // end of tape: return sp[-1] (sentinel, appended by
                // finish_tape; must stay the last enumerator)
  };
  Code code;
  std::uint8_t w = 0;
  std::int32_t a = 0;
  std::uint64_t imm = 0;
};

// A compiled expression: a [begin, begin+len) slice of CompiledDesign::ops
// leaving one value on the stack, masked to the expression's context
// width. `w`/`sgn` record the self-determined type for consumers that
// need a signed reinterpretation ($display %d, repeat counts).
struct TapeRef {
  std::uint32_t begin = 0;
  std::uint32_t len = 0;
  std::uint8_t w = 0;
  bool sgn = false;
};

// One program instruction of a compiled process body.
struct PInstr {
  enum Code : std::uint8_t {
    kAssign,      // val[sig] = tape(t0) (blocking; masks to width)
    kAssignCopy,  // val[sig] = val[a] (ident RHS needing no extension)
    kAssignConst, // val[sig] = imm
    kAssignElem,  // arr[sig][tape(t1)] = tape(t0)
    kAssignBit,   // val[sig] bit tape(t1) = tape(t0) & 1 (RMW)
    kNb,          // queue scalar NBA (masked at enqueue, like the kernel)
    kNbCopy,      // queue scalar NBA of val[a] (pre-masked variant of kNb)
    kNbConst,     // queue scalar NBA of imm (masked at compile time)
    kNbElem,      // queue array-element NBA
    kNbBit,       // queue bit NBA
    kJump,        // pc = a
    kJumpIfFalse, // pc = tape(t0) != 0 ? pc + 1 : a
    kJumpIfFalseSig,  // pc = val[sig] != 0 ? pc + 1 : a (ident condition)
    kCaseJump,    // pc = case_tables[a] lookup of val[sig] (FSM dispatch)
    kRepeatInit,  // push signed tape(t0) on the repeat stack
    kRepeatTest,  // top > 0 ? (top--, fall through) : (pop, pc = a)
    kDisplay,     // format displays[a] against live state
    kDumpFile,    // dump_name = dumpfiles[a]
    kDumpVars,    // start VCD recording
    kHalt,        // body done: initial -> dead, always -> park for trigger
  };
  Code code;
  std::int32_t sig = -1;
  std::int32_t t0 = -1;
  std::int32_t t1 = -1;
  std::int32_t a = 0;
  std::uint64_t imm = 0;  // kAssignConst / kNbConst payload
};

// Pre-parsed $display/$write call: literal pieces interleaved with
// conversion specs, each spec bound to a compiled argument tape.
struct DisplayEntry {
  struct Arg {
    int tape = -1;  // -1 for string arguments
    int w = 0;
    bool sgn = false;
    std::string str;
  };
  struct Piece {
    std::string lit;   // literal text when spec == 0
    char spec = 0;     // 'd', 't', 'h', 'b', 's' (lowercased)
    int arg = -1;
  };
  bool bare = false;   // $display(expr, ...) without a format string
  std::vector<Piece> pieces;
  std::vector<Arg> args;
};

// The immutable compiled form of one Design. Shared (like the Design
// itself) across every Simulation instantiated from it — sweep legs and
// repeated harness runs reuse one plan via compiled_plan().
struct CompiledDesign {
  std::shared_ptr<const Design> design;

  std::vector<TOp> ops;
  std::vector<TapeRef> tapes;
  int max_stack = 0;

  // Levelized continuous assigns, in declaration order; level_of[i] is the
  // topological level of node i (0 = reads no other assign's target).
  // `tape` is the original expression (the reference semantics, used for
  // lazy forcing); `exec_tape` is what flush_comb runs — the same tape, or
  // a fused copy with single-reader producers spliced in.
  struct Node {
    int target = -1;
    int tape = -1;
    int exec_tape = -1;
    int level = 0;
  };
  std::vector<Node> nodes;
  int num_levels = 0;

  // Single-reader fusion results. node_of[sig] is the node driving sig
  // (-1 when sig is not an assign target). A *lazy* node's target is
  // observed by nothing inside the design (no process tape, no trigger,
  // no other eager assign) — typically an output port at the end of a
  // fused chain — so it is excluded from delta scheduling entirely and
  // recomputed on demand by CompiledSim::peek. num_eager counts the nodes
  // that still run in flush_comb. Designs that can start VCD dumping keep
  // every node eager and unfused (the dump observes every wire).
  std::vector<std::int32_t> node_of;
  std::vector<std::uint8_t> node_lazy;
  int num_eager = 0;

  // CSR: signal -> assign nodes reading it (the dep_map equivalent).
  std::vector<std::int32_t> fan_index;
  std::vector<std::int32_t> fan_nodes;

  // CSR: signal -> processes triggered by a change of it.
  struct Trigger {
    std::int32_t proc;
    Edge edge;
  };
  std::vector<std::int32_t> trig_index;
  std::vector<Trigger> trigs;

  // Compiled process bodies, in design process order (wake order matters:
  // the scheduler always runs the lowest-index ready process first).
  struct ProcMeta {
    int entry = 0;        // index into prog
    bool is_always = false;
    bool initially_ready = false;  // initial bodies run at time 0
    std::string origin;
  };
  std::vector<PInstr> prog;
  std::vector<ProcMeta> procs;

  // Direct dispatch for `case` over an unsigned scalar with all-constant
  // unsigned labels (the emitted FSM's state case): arms sorted by value
  // for binary search, first-match-wins duplicates already dropped.
  // Zero-extended equality over a shared context equals raw u64 equality,
  // so the lookup is exactly the chained-compare semantics.
  struct CaseTable {
    std::vector<std::pair<std::uint64_t, std::int32_t>> arms;  // value -> pc
    std::int32_t def_pc = 0;  // default body (or exit) when no arm matches
  };
  std::vector<CaseTable> case_tables;

  std::vector<DisplayEntry> displays;
  std::vector<std::string> dumpfiles;

  std::vector<std::uint64_t> sig_mask;  // per-signal width mask
};

// Attempts to levelize + compile `design`. Returns nullptr if the design
// is not cycle-schedulable, storing a human-readable reason in *why (may
// be nullptr). Emits a "vsim.compile" span with levels/nodes/procs args.
std::shared_ptr<const CompiledDesign> compile_design(
    const std::shared_ptr<const Design>& design, std::string* why);

// Process-wide memoized compile_design keyed by Design identity: every
// Simulation (and so every sweep leg / harness replay) sharing one
// elaborated design shares one plan. Failures are memoized too, so
// event-only designs pay the classification walk once. Thread-safe.
// Cache hits/misses are counted as vsim.plan_cache.{hits,misses}.
std::shared_ptr<const CompiledDesign> compiled_plan(
    const std::shared_ptr<const Design>& design, std::string* why);

// True when the plan can execute under the bit-packed multi-lane engine
// (vsim/pack.h): PackedSim supports neither $display nor VCD dumping, so a
// plan touching either must stay on the scalar backends. Shared by
// vsim_sweep's lane routing and profile_run's packed auto-selection.
bool plan_packable(const CompiledDesign& cd);

// The cycle-based execution engine over one CompiledDesign. Mirrors the
// externally observable behavior of the event kernel: poke/settle
// delta-cycle semantics (flush changed comb cone in level order, run the
// lowest-index ready process, commit NBAs in assignment order, repeat),
// $display logs, VCD text, and SimStats events/nba_commits/delta_cycles.
class CompiledSim {
 public:
  CompiledSim(std::shared_ptr<const CompiledDesign> cd, const SimConfig& cfg);
  ~CompiledSim();
  CompiledSim(const CompiledSim&) = delete;
  CompiledSim& operator=(const CompiledSim&) = delete;

  void poke(int sig, std::uint64_t value);
  // Lazy node targets are recomputed here on demand; forcing only touches
  // shadow state invisible to the rest of the simulation (logical const).
  std::uint64_t peek(int sig) const {
    const std::int32_t n = cd_->node_of[static_cast<std::size_t>(sig)];
    if (n >= 0 && cd_->node_lazy[static_cast<std::size_t>(n)])
      const_cast<CompiledSim*>(this)->force_lazy(n);
    return val_[static_cast<std::size_t>(sig)];
  }
  long long peek_signed(int sig) const;
  std::uint64_t peek_elem(int sig, int index) const;
  void settle();
  RunResult run();  // no timers on this backend: settle and report

  long long now() const { return 0; }
  const SimStats& stats() const { return stats_; }
  const std::vector<std::string>& display_log() const { return display_; }

  // Activity-gating observability (also flushed to MetricsRegistry as
  // vsim.compiled.comb_evals / vsim.compiled.gated_evals on destruction).
  long long comb_evals() const { return comb_evals_; }
  long long gated_evals() const { return gated_evals_; }

 private:
  [[noreturn]] void fail_budget(int proc) const;
  std::uint64_t run_tape(int tape);
  long long run_tape_signed(int tape);
  void set_scalar(int sig, std::uint64_t v);
  void set_elem(int sig, long long index, std::uint64_t v);
  void force_lazy(int node);
  void mark_fanout(int sig);
  void trigger(int sig, bool pos, bool neg, bool any);
  void flush_comb();
  void commit_nba();
  void run_proc(int p);
  std::string format_display(const DisplayEntry& d);
  void start_dump();
  void dump_change(int sig, long long index) const;
  void flush_dump() const;

  std::shared_ptr<const CompiledDesign> cd_;
  SimConfig cfg_;
  std::vector<std::uint64_t> val_;
  std::vector<std::vector<std::uint64_t>> arr_;
  std::vector<std::uint64_t> stack_;

  // Activity gating: per-level pending buckets + membership flags.
  std::vector<std::vector<std::int32_t>> level_q_;
  std::vector<char> node_pending_;
  long long pending_ = 0;

  std::vector<char> ready_;
  int ready_count_ = 0;
  int running_proc_ = -1;
  std::vector<std::vector<long long>> reps_;  // per-proc repeat stacks

  struct NbaEntry {
    int sig;
    long long index;  // -1 for scalars, else array index or bit position
    std::uint64_t value;
  };
  std::vector<NbaEntry> nba_;
  std::vector<NbaEntry> nba_scratch_;  // commit-time swap target, capacity kept

  long long slot_instr_base_ = 0;
  SimStats stats_;
  long long comb_evals_ = 0;
  long long gated_evals_ = 0;
  std::vector<std::string> display_;
  std::string dump_name_;
  bool dumping_ = false;
  struct Dump;  // rtl::VcdCore, pimpl'd like the event kernel's
  std::unique_ptr<Dump> dump_;
  std::vector<int> dump_handle_;
  std::vector<std::vector<int>> dump_elem_handle_;
};

}  // namespace hlsw::vsim
