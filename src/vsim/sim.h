// Event-driven simulation kernel for elaborated Designs, after the
// stratified event queue of IEEE 1364 section 11: an active region (process
// execution and continuous-assign propagation, with blocking assignments
// visible immediately) and an NBA region (nonblocking updates committed in
// assignment order once the active region drains), iterated as delta cycles
// until the time slot is quiescent, then time advances to the next timer
// (# delay) event. Two-state semantics: every net starts at 0, there is no
// X/Z, and `===`/`!==` behave as `==`/`!=`.
//
// Processes (initial and always bodies alike) are compiled to a flat
// bytecode — assignments, jumps, edge waits, delays, repeat counters and
// system tasks — so multi-statement behavioral code (the generated
// testbench with its tasks, repeat loops and @(edge) waits) runs without
// recursion or coroutines. $display/$finish/$stop complete the testbench
// contract; $dumpfile/$dumpvars record a VCD through rtl::VcdCore.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "vsim/elab.h"

namespace hlsw::vsim {

// Execution engine selection. kAuto defers to the legacy `compiled` flag
// (compiled interpreter when the design cycle-schedules, event kernel
// otherwise). Each tier degrades silently down the chain
//   packed-codegen -> packed-interp -> codegen -> compiled -> event
// with the reason recorded in fallback_reason() (Simulation, or
// PackedDutHarness for the multi-lane tiers). The two packed tiers only
// exist inside PackedSim/PackedDutHarness (lanes > 1); a scalar Simulation
// asked for kPackedCodegen degrades straight through the codegen tier with
// a "packed-codegen: " prefixed reason.
enum class Backend {
  kAuto,      // honor SimConfig::compiled (the pre-codegen default)
  kEvent,     // stratified event kernel (sim.cpp)
  kCompiled,  // levelized tape interpreter (compile.cpp)
  kCodegen,   // generated + dlopen'd native engine (codegen.cpp)
  kPackedCodegen,  // generated lane-major engine (codegen.cpp + pack.cpp)
};

struct SimConfig {
  long long max_time = 1'000'000'000;  // free-run safety stop (time units)
  long long max_instrs_per_slot = 50'000'000;  // zero-delay-loop guard
  int max_comb_iterations = 1'000'000;         // combinational-loop guard
  // Prefer the compiled cycle-based backend (compile.h) when the design is
  // cycle-schedulable; designs with time control, $finish/$stop or
  // zero-delay feedback silently keep the event-driven kernel. Mirrors
  // rtl::SimOptions::compiled. Consulted only when backend == kAuto.
  bool compiled = true;
  Backend backend = Backend::kAuto;
};

// The vsim-facing name for the simulation options (ISSUE wording parity
// with rtl::SimOptions).
using VsimOptions = SimConfig;

struct SimStats {
  long long events = 0;        // observed value changes
  long long nba_commits = 0;   // nonblocking updates applied
  long long delta_cycles = 0;  // NBA->active iterations within time slots
  long long time_slots = 0;    // distinct simulation times executed
  long long instrs = 0;        // bytecode instructions retired
  bool operator==(const SimStats&) const = default;
};

struct RunResult {
  bool finished = false;   // reached $finish
  bool stopped = false;    // reached $stop
  bool timed_out = false;  // hit SimConfig::max_time
  long long end_time = 0;
  std::vector<std::string> display;  // $display output, in order
  std::string vcd_name;              // $dumpfile argument ("" if none)
  std::string vcd_text;              // VCD contents when $dumpvars ran
};

class CompiledSim;
class CodegenSim;

class Simulation {
 public:
  // Compiles every process and runs the time-0 active region (initial
  // blocks up to their first wait, all continuous assigns). When
  // cfg.compiled is true (the default) and the design is
  // cycle-schedulable, execution is delegated to the levelized compiled
  // backend (compile.h) — observable behavior is identical.
  explicit Simulation(std::shared_ptr<const Design> design,
                      const SimConfig& cfg = {});
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // ---- External-driver mode (DutHarness): poke, then settle ----
  void poke(const std::string& name, unsigned long long value);
  unsigned long long peek(const std::string& name) const;
  long long peek_signed(const std::string& name) const;
  unsigned long long peek_elem(const std::string& name, int index) const;
  // Handle-based access for hot drivers (DutHarness): resolve the name
  // once, then poke/peek by signal index on either backend.
  int signal_handle(const std::string& name) const;
  void poke(int sig, unsigned long long value);
  unsigned long long peek(int sig) const;
  long long peek_signed(int sig) const;
  // Runs delta cycles at the current time until quiescent.
  void settle();

  // ---- Free-run mode (testbench): advance time until $finish/$stop,
  // timer exhaustion, or max_time.
  RunResult run();

  bool finished() const { return finished_; }
  long long now() const;
  const SimStats& stats() const;
  const std::vector<std::string>& display_log() const;
  const Design& design() const { return *design_; }

  // Which engine executes this simulation: "codegen", "compiled" or
  // "event".
  const char* backend() const;
  // Why a preferred backend was not used ("" when the requested tier runs,
  // or when a lower tier was requested explicitly). When codegen degrades
  // to the compiled interpreter the reason is prefixed "codegen: ".
  const std::string& fallback_reason() const { return fallback_reason_; }

 private:
  struct Instr;
  struct Thread;
  struct Compiler;

  static std::uint64_t mask(int w) {
    return w >= 64 ? ~0ULL : (1ULL << w) - 1ULL;
  }
  static std::uint64_t extend(std::uint64_t v, int from, int to, bool sgn);

  std::uint64_t eval(const Expr& e, int ctx_w, bool ctx_sgn) const;
  std::uint64_t eval_self(const Expr& e) const;
  long long eval_signed_self(const Expr& e) const;

  void set_scalar(int sig, std::uint64_t v);
  void set_elem(int sig, long long index, std::uint64_t v);
  void on_change(int sig, std::uint64_t old_v, std::uint64_t new_v);
  void flush_comb();
  void commit_nba();
  void run_thread(int tid);
  void exec_assign(const Expr& lhs, const Expr& rhs, bool nonblocking);
  void exec_sys(const Stmt& st);
  std::string format_display(const Stmt& st) const;
  void start_dump();
  void dump_change(int sig, long long index) const;
  void flush_dump() const;
  int require(const std::string& name) const;

  std::shared_ptr<const Design> design_;
  SimConfig cfg_;
  // Non-null when the compiled cycle-based backend executes this design;
  // every public entry point dispatches to it. The event-kernel state
  // below stays unconstructed in that case.
  std::unique_ptr<CompiledSim> compiled_;
  // Non-null when the generated native engine executes this design; takes
  // precedence over compiled_ (at most one of the two is set).
  std::unique_ptr<CodegenSim> codegen_;
  std::string fallback_reason_;
  std::vector<std::uint64_t> val_;
  std::vector<std::vector<std::uint64_t>> arr_;
  std::vector<std::vector<int>> dep_map_;  // signal -> dependent assigns
  std::vector<Thread> threads_;

  std::vector<int> comb_q_;
  std::vector<char> comb_queued_;
  std::size_t comb_head_ = 0;

  struct NbaEntry {
    int sig;
    long long index;  // -1 for scalars
    std::uint64_t value;
  };
  std::vector<NbaEntry> nba_q_;

  struct TimerEntry {
    long long time;
    long long seq;
    int tid;
    bool operator>(const TimerEntry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  long long timer_seq_ = 0;

  long long time_ = 0;
  long long slot_instr_base_ = 0;  // stats_.instrs at activation start
  std::vector<ExprPtr> synth_;     // synthetic case-compare expressions
  bool finished_ = false;
  bool stopped_ = false;
  SimStats stats_;
  std::vector<std::string> display_;
  std::string dump_name_;
  bool dumping_ = false;
  // VCD recording (pimpl'd so vsim/sim.h does not pull rtl/vcd.h in).
  struct Dump;
  std::unique_ptr<Dump> dump_;
  std::vector<int> dump_handle_;        // scalar signal -> VCD handle
  std::vector<std::vector<int>> dump_elem_handle_;
};

}  // namespace hlsw::vsim
