#include "vsim/sim.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtl/vcd.h"
#include "vsim/codegen.h"
#include "vsim/compile.h"

namespace hlsw::vsim {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("vsim runtime error: " + what);
}

inline std::uint64_t umask(int w) {
  return w >= 64 ? ~0ULL : (1ULL << w) - 1ULL;
}

// Reinterprets the low `w` bits of `v` as a signed value.
inline long long s64(std::uint64_t v, int w) {
  if (w < 64 && ((v >> (w - 1)) & 1)) v |= ~umask(w);
  return static_cast<long long>(v);
}

}  // namespace

// ---- Bytecode ---------------------------------------------------------------

struct Simulation::Instr {
  enum Op {
    kAssign,      // st->lhs = st->rhs (blocking)
    kNb,          // st->lhs <= st->rhs
    kJump,        // pc = target
    kJumpIfFalse, // pc = cond ? pc+1 : target
    kWaitEdge,    // block until an edge in st->events fires
    kDelay,       // schedule wake at now+delay, block
    kRepeatInit,  // push eval(cond) on the repeat stack
    kRepeatTest,  // top>0 ? (top--, fall through) : (pop, pc = target)
    kSys,         // $display / $finish / $stop / $dumpfile / $dumpvars
    kEnd,         // initial block completed
  };
  Op op;
  const Stmt* st = nullptr;
  const Expr* cond = nullptr;
  int target = 0;
  long long delay = 0;
};

struct Simulation::Thread {
  enum class St { kReady, kWaitEdge, kWaitTimer, kDone };
  std::vector<Instr> code;
  int pc = 0;
  int wait_pc = -1;  // index of the kWaitEdge instruction we are parked on
  St st = St::kReady;
  std::vector<long long> reps;
  bool is_always = false;
  std::string origin;
};

struct Simulation::Compiler {
  Simulation* sim;
  std::vector<Instr>* code;

  int size() const { return static_cast<int>(code->size()); }
  int emit(Instr in) {
    code->push_back(in);
    return size() - 1;
  }

  // case items compile to chained synthetic `subject == label` compares so
  // the kernel needs no dedicated case dispatch. The synthetic nodes live in
  // sim->synth_ for the simulation's lifetime.
  const Expr* match_cond(const ExprPtr& subject, const CaseItem& item) {
    if (item.labels.empty()) fail("case item without labels");
    ExprPtr acc;
    for (const auto& label : item.labels) {
      auto eq = std::make_shared<Expr>();
      eq->kind = ExprKind::kBinary;
      eq->name = "==";
      eq->kids = {subject, label};
      eq->self_w = 1;
      eq->self_sgn = false;
      if (acc == nullptr) {
        acc = std::move(eq);
      } else {
        auto orr = std::make_shared<Expr>();
        orr->kind = ExprKind::kBinary;
        orr->name = "||";
        orr->kids = {acc, eq};
        orr->self_w = 1;
        orr->self_sgn = false;
        acc = std::move(orr);
      }
    }
    sim->synth_.push_back(acc);
    return acc.get();
  }

  void stmt(const Stmt& st) {
    switch (st.kind) {
      case StmtKind::kBlock:
        for (const auto& s : st.sub) stmt(*s);
        break;
      case StmtKind::kBlockingAssign: {
        Instr in;
        in.op = Instr::kAssign;
        in.st = &st;
        emit(in);
        break;
      }
      case StmtKind::kNbAssign: {
        Instr in;
        in.op = Instr::kNb;
        in.st = &st;
        emit(in);
        break;
      }
      case StmtKind::kIf: {
        Instr jf;
        jf.op = Instr::kJumpIfFalse;
        jf.cond = st.cond.get();
        const int j = emit(jf);
        stmt(*st.sub[0]);
        if (st.sub.size() > 1 && st.sub[1] != nullptr) {
          Instr jmp;
          jmp.op = Instr::kJump;
          const int j2 = emit(jmp);
          (*code)[static_cast<size_t>(j)].target = size();
          stmt(*st.sub[1]);
          (*code)[static_cast<size_t>(j2)].target = size();
        } else {
          (*code)[static_cast<size_t>(j)].target = size();
        }
        break;
      }
      case StmtKind::kCase: {
        std::vector<int> exits;
        const CaseItem* def = nullptr;
        for (const auto& item : st.items) {
          if (item.is_default) {
            def = &item;
            continue;
          }
          Instr jf;
          jf.op = Instr::kJumpIfFalse;
          jf.cond = match_cond(st.cond, item);
          const int j = emit(jf);
          stmt(*item.body);
          Instr jmp;
          jmp.op = Instr::kJump;
          exits.push_back(emit(jmp));
          (*code)[static_cast<size_t>(j)].target = size();
        }
        if (def != nullptr) stmt(*def->body);
        for (const int j : exits) (*code)[static_cast<size_t>(j)].target = size();
        break;
      }
      case StmtKind::kRepeat: {
        Instr init;
        init.op = Instr::kRepeatInit;
        init.cond = st.cond.get();
        emit(init);
        Instr test;
        test.op = Instr::kRepeatTest;
        const int t = emit(test);
        stmt(*st.sub[0]);
        Instr jmp;
        jmp.op = Instr::kJump;
        jmp.target = t;
        emit(jmp);
        (*code)[static_cast<size_t>(t)].target = size();
        break;
      }
      case StmtKind::kForever: {
        const int top = size();
        stmt(*st.sub[0]);
        Instr jmp;
        jmp.op = Instr::kJump;
        jmp.target = top;
        emit(jmp);
        break;
      }
      case StmtKind::kEventCtrl: {
        Instr in;
        in.op = Instr::kWaitEdge;
        in.st = &st;
        emit(in);
        stmt(*st.sub[0]);
        break;
      }
      case StmtKind::kDelay: {
        Instr in;
        in.op = Instr::kDelay;
        in.delay = static_cast<long long>(st.delay);
        emit(in);
        stmt(*st.sub[0]);
        break;
      }
      case StmtKind::kSysTask: {
        Instr in;
        in.op = Instr::kSys;
        in.st = &st;
        emit(in);
        break;
      }
      case StmtKind::kNull:
        break;
      case StmtKind::kTaskCall:
        fail("task call survived elaboration");
    }
  }
};

// ---- VCD recording ----------------------------------------------------------

struct Simulation::Dump {
  rtl::VcdCore core;
  // Signals touched since the last flush, as (signal, element) pairs with
  // element -1 for scalars. Changes are coalesced here and emitted in
  // ascending (signal, element) order at time-slot boundaries, so the VCD
  // records each slot's NET state delta — independent of the order the
  // engine happened to evaluate processes in. This is what makes the event
  // kernel and the compiled/codegen interpreters byte-identical dumpers.
  std::set<std::pair<int, long long>> pending;
  explicit Dump(const std::string& scope)
      : core(/*timescale_ns=*/1.0, scope, "hlsw vsim") {}
};

// ---- Construction -----------------------------------------------------------

Simulation::Simulation(std::shared_ptr<const Design> design,
                       const SimConfig& cfg)
    : design_(std::move(design)), cfg_(cfg) {
  Backend want = cfg_.backend;
  if (want == Backend::kAuto)
    want = cfg_.compiled ? Backend::kCompiled : Backend::kEvent;
  if (want == Backend::kPackedCodegen) {
    // The packed tiers only exist inside PackedDutHarness (lanes > 1); a
    // scalar Simulation degrades straight through the codegen tier.
    fallback_reason_ =
        "packed-codegen: multi-lane engine needs PackedDutHarness "
        "(scalar Simulation has one lane)";
    want = Backend::kCodegen;
  }
  if (want == Backend::kCodegen) {
    // Top tier: generated + dlopen'd native engine. Degrades to the
    // compiled interpreter when no host toolchain is available or the
    // design uses constructs codegen refuses ($display, VCD dumping).
    std::string why;
    if (auto mod = codegen_plan(design_, &why)) {
      codegen_ = std::make_unique<CodegenSim>(std::move(mod), cfg_);
      return;
    }
    if (!fallback_reason_.empty()) fallback_reason_ += "; ";
    fallback_reason_ += "codegen: " + why;
    want = Backend::kCompiled;
  }
  if (want == Backend::kCompiled) {
    // Cycle-schedulable designs run on the levelized compiled backend;
    // everything else (delays, $finish/$stop, feedback) silently keeps
    // the event kernel below. The plan is memoized per Design, so sweep
    // legs and harness replays share one compilation.
    std::string why;
    if (auto plan = compiled_plan(design_, &why)) {
      compiled_ = std::make_unique<CompiledSim>(std::move(plan), cfg_);
      return;
    }
    if (!fallback_reason_.empty()) fallback_reason_ += "; ";
    fallback_reason_ += why;
  }
  const auto n = design_->signals.size();
  val_.assign(n, 0);
  arr_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Signal& s = design_->signals[i];
    if (s.array_len > 0)
      arr_[i].assign(static_cast<size_t>(s.array_len), 0);
    else if (s.has_init)
      val_[i] = static_cast<std::uint64_t>(s.init) & mask(s.width);
  }

  dep_map_.resize(n);
  for (std::size_t ai = 0; ai < design_->assigns.size(); ++ai)
    for (const int dep : design_->assigns[ai].deps)
      dep_map_[static_cast<size_t>(dep)].push_back(static_cast<int>(ai));

  // Every continuous assign evaluates once at time zero.
  comb_queued_.assign(design_->assigns.size(), 1);
  for (std::size_t ai = 0; ai < design_->assigns.size(); ++ai)
    comb_q_.push_back(static_cast<int>(ai));

  threads_.reserve(design_->processes.size());
  for (const Process& p : design_->processes) {
    Thread th;
    th.origin = p.origin;
    th.is_always = p.is_always;
    Compiler c{this, &th.code};
    c.stmt(*p.body);
    Instr tail;
    if (p.is_always) {
      tail.op = Instr::kJump;
      tail.target = 0;
      bool blocks = false;
      for (const Instr& in : th.code)
        if (in.op == Instr::kWaitEdge || in.op == Instr::kDelay) blocks = true;
      if (!blocks)
        fail("always block '" + p.origin + "' has no event or delay control");
    } else {
      tail.op = Instr::kEnd;
    }
    th.code.push_back(tail);
    threads_.push_back(std::move(th));
  }

  settle();  // time-0 active region
}

Simulation::~Simulation() = default;

// ---- Evaluation -------------------------------------------------------------

std::uint64_t Simulation::extend(std::uint64_t v, int from, int to, bool sgn) {
  if (to <= from) return v & umask(to);
  if (sgn && ((v >> (from - 1)) & 1)) v |= ~umask(from);
  return v & umask(to);
}

std::uint64_t Simulation::eval_self(const Expr& e) const {
  return eval(e, e.self_w, e.self_sgn);
}

long long Simulation::eval_signed_self(const Expr& e) const {
  const std::uint64_t v = eval_self(e);
  return e.self_sgn ? s64(v, e.self_w) : static_cast<long long>(v);
}

// Context-determined evaluation per IEEE 1364-2001 4.4/4.5: `W` is the
// propagated expression width, `S` the propagated signedness. Operands whose
// own kind forms a self-determined boundary (numbers, idents, selects,
// concats, reductions, comparisons) produce their self-sized value and are
// then extended to W — sign-extended iff S.
std::uint64_t Simulation::eval(const Expr& e, int ctx_w, bool ctx_sgn) const {
  const int W = ctx_w;
  const bool S = ctx_sgn;
  switch (e.kind) {
    case ExprKind::kNumber:
      return extend(e.num & umask(e.self_w), e.self_w, W, S);
    case ExprKind::kString:
      fail("string literal used as a value");
    case ExprKind::kIdent: {
      const Signal& s = design_->signals[static_cast<size_t>(e.sig)];
      if (s.array_len > 0)
        fail("register file '" + s.name + "' used without an element select");
      return extend(val_[static_cast<size_t>(e.sig)], e.self_w, W, S);
    }
    case ExprKind::kSelect: {
      const Expr& base = *e.kids[0];
      const long long idx = eval_signed_self(*e.kids[1]);
      if (base.kind == ExprKind::kIdent && base.sig >= 0) {
        const Signal& s = design_->signals[static_cast<size_t>(base.sig)];
        if (s.array_len > 0) {  // register-file element (reads past the end
          const auto& a = arr_[static_cast<size_t>(base.sig)];  // read as 0)
          const std::uint64_t v =
              (idx >= 0 && idx < static_cast<long long>(a.size()))
                  ? a[static_cast<size_t>(idx)]
                  : 0;
          return extend(v, e.self_w, W, S);
        }
      }
      const std::uint64_t bv = eval_self(base);
      const std::uint64_t bit =
          (idx >= 0 && idx < base.self_w) ? (bv >> idx) & 1 : 0;
      return extend(bit, 1, W, S);
    }
    case ExprKind::kRange: {
      const std::uint64_t bv = eval_self(*e.kids[0]);
      return extend((bv >> e.lo) & umask(e.self_w), e.self_w, W, S);
    }
    case ExprKind::kUnary: {
      const std::string& op = e.name;
      if (op == "-") return (0 - eval(*e.kids[0], W, S)) & umask(W);
      if (op == "+") return eval(*e.kids[0], W, S);
      if (op == "~") return ~eval(*e.kids[0], W, S) & umask(W);
      const std::uint64_t x = eval_self(*e.kids[0]);
      const int w = e.kids[0]->self_w;
      std::uint64_t r = 0;
      if (op == "!") r = x == 0;
      else if (op == "&") r = x == umask(w);
      else if (op == "~&") r = x != umask(w);
      else if (op == "|") r = x != 0;
      else if (op == "~|") r = x == 0;
      else if (op == "^") r = static_cast<std::uint64_t>(
                               __builtin_parityll(static_cast<long long>(x)));
      else if (op == "~^" || op == "^~")
        r = static_cast<std::uint64_t>(
                !__builtin_parityll(static_cast<long long>(x)));
      else fail("unknown unary operator '" + op + "'");
      return extend(r, 1, W, S);
    }
    case ExprKind::kBinary: {
      const std::string& op = e.name;
      const Expr& k0 = *e.kids[0];
      const Expr& k1 = *e.kids[1];
      if (op == "&&" || op == "||") {
        const bool a = eval_self(k0) != 0;
        const bool b = eval_self(k1) != 0;
        return extend(op == "&&" ? (a && b) : (a || b), 1, W, S);
      }
      if (op == "==" || op == "!=" || op == "===" || op == "!==" ||
          op == "<" || op == "<=" || op == ">" || op == ">=") {
        // Comparison context: operands sized to the larger self width,
        // compared signed iff both are signed (two-state, so === is ==).
        const int wc = std::max(k0.self_w, k1.self_w);
        const bool sc = k0.self_sgn && k1.self_sgn;
        const std::uint64_t a = eval(k0, wc, sc);
        const std::uint64_t b = eval(k1, wc, sc);
        bool r;
        if (op == "==" || op == "===") r = a == b;
        else if (op == "!=" || op == "!==") r = a != b;
        else if (sc) {
          const long long sa = s64(a, wc), sb = s64(b, wc);
          r = op == "<" ? sa < sb : op == "<=" ? sa <= sb
              : op == ">" ? sa > sb : sa >= sb;
        } else {
          r = op == "<" ? a < b : op == "<=" ? a <= b
              : op == ">" ? a > b : a >= b;
        }
        return extend(r, 1, W, S);
      }
      if (op == "<<" || op == "<<<" || op == ">>" || op == ">>>") {
        // Left operand is context-determined; the amount is self-determined.
        // >>> is arithmetic only when the propagated expression is signed.
        const std::uint64_t a = eval(k0, W, S);
        const std::uint64_t sh = eval_self(k1);
        if (op == "<<" || op == "<<<")
          return sh >= 64 ? 0 : (a << sh) & umask(W);
        if (op == ">>" || !S) return sh >= 64 ? 0 : a >> sh;
        const long long sa = s64(a, W);
        return static_cast<std::uint64_t>(sa >> (sh > 63 ? 63 : sh)) &
               umask(W);
      }
      const std::uint64_t a = eval(k0, W, S);
      const std::uint64_t b = eval(k1, W, S);
      std::uint64_t r = 0;
      if (op == "+") r = a + b;
      else if (op == "-") r = a - b;
      else if (op == "*") r = a * b;
      else if (op == "/" || op == "%") {
        if (S) {
          const long long sa = s64(a, W), sb = s64(b, W);
          if (sb == 0) r = 0;
          else if (sb == -1)  // avoid INT64_MIN / -1 overflow
            r = op == "/" ? 0 - a : 0;
          else
            r = static_cast<std::uint64_t>(op == "/" ? sa / sb : sa % sb);
        } else {
          r = b == 0 ? 0 : (op == "/" ? a / b : a % b);
        }
      } else if (op == "&") r = a & b;
      else if (op == "|") r = a | b;
      else if (op == "^") r = a ^ b;
      else if (op == "~^" || op == "^~") r = ~(a ^ b);
      else fail("unknown binary operator '" + op + "'");
      return r & umask(W);
    }
    case ExprKind::kTernary:
      return eval(eval_self(*e.kids[0]) != 0 ? *e.kids[1] : *e.kids[2], W, S);
    case ExprKind::kConcat: {
      std::uint64_t v = 0;
      for (const auto& k : e.kids)
        v = (v << k->self_w) | (eval_self(*k) & umask(k->self_w));
      return extend(v, e.self_w, W, S);
    }
    case ExprKind::kReplicate: {
      const Expr& k = *e.kids[1];
      const std::uint64_t kv = eval_self(k) & umask(k.self_w);
      std::uint64_t v = 0;
      for (long long i = 0; i < e.repl; ++i) v = (v << k.self_w) | kv;
      return extend(v, e.self_w, W, S);
    }
    case ExprKind::kSysCall: {
      if (e.name == "$time")
        return extend(static_cast<std::uint64_t>(time_), 64, W, S);
      // $signed/$unsigned: the argument is self-determined; its raw bits are
      // reinterpreted, and context extension follows the new signedness
      // already folded into self_sgn/S by elaboration.
      return extend(eval_self(*e.kids[0]), e.self_w, W, S);
    }
  }
  fail("unreachable expression kind");
}

// ---- State updates ----------------------------------------------------------

void Simulation::set_scalar(int sig, std::uint64_t v) {
  const Signal& s = design_->signals[static_cast<size_t>(sig)];
  v &= mask(s.width);
  const std::uint64_t old = val_[static_cast<size_t>(sig)];
  if (old == v) return;
  val_[static_cast<size_t>(sig)] = v;
  on_change(sig, old, v);
}

void Simulation::set_elem(int sig, long long index, std::uint64_t v) {
  auto& a = arr_[static_cast<size_t>(sig)];
  if (index < 0 || index >= static_cast<long long>(a.size())) return;
  const Signal& s = design_->signals[static_cast<size_t>(sig)];
  v &= mask(s.width);
  if (a[static_cast<size_t>(index)] == v) return;
  a[static_cast<size_t>(index)] = v;
  ++stats_.events;
  if (dumping_) dump_change(sig, index);
  for (const int ai : dep_map_[static_cast<size_t>(sig)]) {
    if (!comb_queued_[static_cast<size_t>(ai)]) {
      comb_queued_[static_cast<size_t>(ai)] = 1;
      comb_q_.push_back(ai);
    }
  }
}

void Simulation::on_change(int sig, std::uint64_t old_v, std::uint64_t new_v) {
  ++stats_.events;
  if (dumping_) dump_change(sig, -1);
  for (const int ai : dep_map_[static_cast<size_t>(sig)]) {
    if (!comb_queued_[static_cast<size_t>(ai)]) {
      comb_queued_[static_cast<size_t>(ai)] = 1;
      comb_q_.push_back(ai);
    }
  }
  const bool pos = !(old_v & 1) && (new_v & 1);
  const bool neg = (old_v & 1) && !(new_v & 1);
  for (auto& th : threads_) {
    if (th.st != Thread::St::kWaitEdge) continue;
    const Stmt& wait = *th.code[static_cast<size_t>(th.wait_pc)].st;
    for (const auto& [edge, ev] : wait.events) {
      if (ev->sig != sig) continue;
      if (edge == Edge::kAny || (edge == Edge::kPos && pos) ||
          (edge == Edge::kNeg && neg)) {
        th.st = Thread::St::kReady;
        th.wait_pc = -1;
        break;
      }
    }
  }
}

void Simulation::flush_comb() {
  int iters = 0;
  while (comb_head_ < comb_q_.size()) {
    if (++iters > cfg_.max_comb_iterations)
      fail("combinational loop did not converge");
    const int ai = comb_q_[comb_head_++];
    comb_queued_[static_cast<size_t>(ai)] = 0;
    const ElabAssign& a = design_->assigns[static_cast<size_t>(ai)];
    const Signal& t = design_->signals[static_cast<size_t>(a.target)];
    const int w = std::max(t.width, a.rhs->self_w);
    set_scalar(a.target, eval(*a.rhs, w, a.rhs->self_sgn));
  }
  comb_q_.clear();
  comb_head_ = 0;
}

void Simulation::commit_nba() {
  std::vector<NbaEntry> q;
  q.swap(nba_q_);
  stats_.nba_commits += static_cast<long long>(q.size());
  for (const NbaEntry& e : q) {
    const Signal& s = design_->signals[static_cast<size_t>(e.sig)];
    if (s.array_len > 0) {
      set_elem(e.sig, e.index, e.value);
    } else if (e.index >= 0) {  // nonblocking bit write, committed RMW
      if (e.index < s.width) {
        const std::uint64_t old = val_[static_cast<size_t>(e.sig)];
        set_scalar(e.sig, (old & ~(1ULL << e.index)) |
                              ((e.value & 1ULL) << e.index));
      }
    } else {
      set_scalar(e.sig, e.value);
    }
  }
}

void Simulation::exec_assign(const Expr& lhs, const Expr& rhs,
                             bool nonblocking) {
  // Assignment context: RHS evaluated at max(lhs, rhs) width with the RHS's
  // own signedness, then truncated to the target width.
  const int w = std::max(lhs.self_w, rhs.self_w);
  std::uint64_t v = eval(rhs, w, rhs.self_sgn);
  if (lhs.kind == ExprKind::kIdent) {
    const Signal& s = design_->signals[static_cast<size_t>(lhs.sig)];
    v &= mask(s.width);
    if (nonblocking) nba_q_.push_back({lhs.sig, -1, v});
    else set_scalar(lhs.sig, v);
    return;
  }
  const Expr& base = *lhs.kids[0];
  const long long idx = eval_signed_self(*lhs.kids[1]);
  const Signal& s = design_->signals[static_cast<size_t>(base.sig)];
  if (s.array_len > 0) {
    v &= mask(s.width);
    if (nonblocking) nba_q_.push_back({base.sig, idx, v});
    else set_elem(base.sig, idx, v);
  } else {
    if (nonblocking) {
      nba_q_.push_back({base.sig, idx, v & 1});
    } else if (idx >= 0 && idx < s.width) {
      const std::uint64_t old = val_[static_cast<size_t>(base.sig)];
      set_scalar(base.sig,
                 (old & ~(1ULL << idx)) | ((v & 1ULL) << idx));
    }
  }
}

// ---- Threads ----------------------------------------------------------------

void Simulation::run_thread(int tid) {
  Thread& th = threads_[static_cast<size_t>(tid)];
  for (;;) {
    if (stats_.instrs - slot_instr_base_ > cfg_.max_instrs_per_slot)
      fail("instruction budget exceeded without time advancing "
           "(zero-delay loop in " + th.origin + "?)");
    const Instr& in = th.code[static_cast<size_t>(th.pc)];
    ++stats_.instrs;
    switch (in.op) {
      case Instr::kAssign:
        exec_assign(*in.st->lhs, *in.st->rhs, false);
        ++th.pc;
        break;
      case Instr::kNb:
        exec_assign(*in.st->lhs, *in.st->rhs, true);
        ++th.pc;
        break;
      case Instr::kJump:
        th.pc = in.target;
        break;
      case Instr::kJumpIfFalse:
        th.pc = eval_self(*in.cond) != 0 ? th.pc + 1 : in.target;
        break;
      case Instr::kWaitEdge:
        th.wait_pc = th.pc;
        ++th.pc;
        th.st = Thread::St::kWaitEdge;
        return;
      case Instr::kDelay:
        timers_.push({time_ + in.delay, timer_seq_++, tid});
        ++th.pc;
        th.st = Thread::St::kWaitTimer;
        return;
      case Instr::kRepeatInit:
        th.reps.push_back(eval_signed_self(*in.cond));
        ++th.pc;
        break;
      case Instr::kRepeatTest:
        if (th.reps.back() > 0) {
          --th.reps.back();
          ++th.pc;
        } else {
          th.reps.pop_back();
          th.pc = in.target;
        }
        break;
      case Instr::kSys:
        exec_sys(*in.st);
        ++th.pc;
        if (finished_ || stopped_) {
          // $finish/$stop end this thread for good — a later settle() (the
          // ctor runs one, run() another) must not resume past the stop.
          th.st = Thread::St::kDone;
          return;
        }
        break;
      case Instr::kEnd:
        th.st = Thread::St::kDone;
        return;
    }
  }
}

// ---- Regions ----------------------------------------------------------------

void Simulation::settle() {
  if (codegen_) {
    codegen_->settle();
    return;
  }
  if (compiled_) {
    compiled_->settle();
    return;
  }
  slot_instr_base_ = stats_.instrs;
  for (;;) {
    flush_comb();
    int ready = -1;
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      if (threads_[t].st == Thread::St::kReady) {
        ready = static_cast<int>(t);
        break;
      }
    }
    if (ready >= 0) {
      run_thread(ready);
      if (finished_ || stopped_) break;
      continue;
    }
    if (nba_q_.empty()) break;
    commit_nba();
    ++stats_.delta_cycles;
  }
  if (dumping_) flush_dump();
}

RunResult Simulation::run() {
  if (codegen_) return codegen_->run();
  if (compiled_) return compiled_->run();
  obs::ScopedSpan span("vsim.run", "vsim");
  const bool metrics = obs::enabled();
  long long ev_base = stats_.events;
  RunResult r;
  settle();
  while (!finished_ && !stopped_ && !timers_.empty()) {
    const long long t = timers_.top().time;
    if (t > cfg_.max_time) {
      r.timed_out = true;
      break;
    }
    if (t != time_) {
      if (metrics)
        obs::MetricsRegistry::instance().observe(
            "vsim.events_per_cycle", static_cast<double>(stats_.events - ev_base));
      ev_base = stats_.events;
      time_ = t;
      ++stats_.time_slots;
    }
    while (!timers_.empty() && timers_.top().time == t) {
      threads_[static_cast<size_t>(timers_.top().tid)].st =
          Thread::St::kReady;
      timers_.pop();
    }
    settle();
  }
  if (metrics) {
    auto& m = obs::MetricsRegistry::instance();
    m.add("vsim.events", static_cast<double>(stats_.events));
    m.add("vsim.nba_commits", static_cast<double>(stats_.nba_commits));
  }
  r.finished = finished_;
  r.stopped = stopped_;
  r.end_time = time_;
  r.display = display_;
  r.vcd_name = dump_name_;
  if (dumping_) r.vcd_text = dump_->core.str(time_);
  return r;
}

// ---- External-driver mode ---------------------------------------------------

int Simulation::require(const std::string& name) const {
  const int sig = design_->find(name);
  if (sig < 0) fail("no signal named '" + name + "'");
  return sig;
}

void Simulation::poke(const std::string& name, unsigned long long value) {
  poke(require(name), value);
}

unsigned long long Simulation::peek(const std::string& name) const {
  return peek(require(name));
}

long long Simulation::peek_signed(const std::string& name) const {
  return peek_signed(require(name));
}

unsigned long long Simulation::peek_elem(const std::string& name,
                                         int index) const {
  const int sig = require(name);
  if (codegen_) return codegen_->peek_elem(sig, index);
  if (compiled_) return compiled_->peek_elem(sig, index);
  const auto& a = arr_[static_cast<size_t>(sig)];
  if (index < 0 || index >= static_cast<int>(a.size()))
    fail("element " + std::to_string(index) + " out of range for '" + name +
         "'");
  return a[static_cast<size_t>(index)];
}

int Simulation::signal_handle(const std::string& name) const {
  return require(name);
}

void Simulation::poke(int sig, unsigned long long value) {
  if (codegen_) {
    codegen_->poke(sig, value);
    return;
  }
  if (compiled_) {
    compiled_->poke(sig, value);
    return;
  }
  set_scalar(sig, value);
}

unsigned long long Simulation::peek(int sig) const {
  if (codegen_) return codegen_->peek(sig);
  if (compiled_) return compiled_->peek(sig);
  return val_[static_cast<size_t>(sig)];
}

long long Simulation::peek_signed(int sig) const {
  if (codegen_) return codegen_->peek_signed(sig);
  if (compiled_) return compiled_->peek_signed(sig);
  return s64(val_[static_cast<size_t>(sig)],
             design_->signals[static_cast<size_t>(sig)].width);
}

long long Simulation::now() const {
  if (codegen_) return codegen_->now();
  return compiled_ ? compiled_->now() : time_;
}

const SimStats& Simulation::stats() const {
  if (codegen_) return codegen_->stats();
  return compiled_ ? compiled_->stats() : stats_;
}

const std::vector<std::string>& Simulation::display_log() const {
  if (codegen_) return codegen_->display_log();
  return compiled_ ? compiled_->display_log() : display_;
}

const char* Simulation::backend() const {
  if (codegen_) return "codegen";
  return compiled_ ? "compiled" : "event";
}

// ---- System tasks -----------------------------------------------------------

std::string Simulation::format_display(const Stmt& st) const {
  if (st.args.empty()) return "";
  if (st.args[0]->kind != ExprKind::kString) {
    // Bare $display(expr, ...): space-separated decimal values.
    std::ostringstream os;
    for (std::size_t i = 0; i < st.args.size(); ++i) {
      if (i) os << " ";
      os << eval_signed_self(*st.args[i]);
    }
    return os.str();
  }
  const std::string& fmt = st.args[0]->str;
  std::ostringstream os;
  std::size_t arg = 1;
  auto next = [&]() -> const Expr& {
    if (arg >= st.args.size())
      fail("$display format has more specifiers than arguments");
    return *st.args[arg++];
  };
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      os << fmt[i];
      continue;
    }
    ++i;
    while (i < fmt.size() && (fmt[i] == '0' || std::isdigit(fmt[i]))) ++i;
    if (i >= fmt.size()) fail("dangling '%' in $display format");
    const char c = static_cast<char>(std::tolower(fmt[i]));
    switch (c) {
      case '%': os << '%'; break;
      case 'd': os << eval_signed_self(next()); break;
      case 't': os << static_cast<long long>(eval_self(next())); break;
      case 'h':
      case 'x': {
        std::ostringstream hx;
        hx << std::hex << eval_self(next());
        os << hx.str();
        break;
      }
      case 'b': {
        const Expr& e = next();
        const std::uint64_t v = eval_self(e);
        for (int bit = std::max(e.self_w, 1) - 1; bit >= 0; --bit)
          os << ((v >> bit) & 1 ? '1' : '0');
        break;
      }
      case 's': {
        const Expr& e = next();
        if (e.kind != ExprKind::kString) fail("%s needs a string argument");
        os << e.str;
        break;
      }
      default:
        fail(std::string("unsupported $display format specifier '%") + c +
             "'");
    }
  }
  return os.str();
}

void Simulation::start_dump() {
  if (dumping_) return;
  dump_ = std::make_unique<Dump>(design_->top);
  const auto n = design_->signals.size();
  dump_handle_.assign(n, -1);
  dump_elem_handle_.assign(n, {});
  // Mark everything pending rather than snapshotting the mid-slot state at
  // the instant $dumpvars ran: the flush at the end of this time slot then
  // records every signal's SETTLED value for the slot, which does not
  // depend on how the engine interleaved the other same-slot processes.
  for (std::size_t i = 0; i < n; ++i) {
    const Signal& s = design_->signals[i];
    if (s.array_len > 0) {
      for (int j = 0; j < s.array_len; ++j) {
        const int h = dump_->core.add_signal(
            s.name + "[" + std::to_string(j) + "]", s.width);
        dump_elem_handle_[i].push_back(h);
        dump_->pending.emplace(static_cast<int>(i), j);
      }
    } else {
      const int h = dump_->core.add_signal(s.name, s.width);
      dump_handle_[i] = h;
      dump_->pending.emplace(static_cast<int>(i), -1);
    }
  }
  dumping_ = true;
}

void Simulation::dump_change(int sig, long long index) const {
  dump_->pending.emplace(sig, index);
}

void Simulation::flush_dump() const {
  for (const auto& [sig, index] : dump_->pending) {
    if (index < 0) {
      const int h = dump_handle_[static_cast<size_t>(sig)];
      if (h >= 0)
        dump_->core.change(
            time_, h, static_cast<long long>(val_[static_cast<size_t>(sig)]));
      continue;
    }
    const auto& hs = dump_elem_handle_[static_cast<size_t>(sig)];
    if (index < static_cast<long long>(hs.size()))
      dump_->core.change(
          time_, hs[static_cast<size_t>(index)],
          static_cast<long long>(
              arr_[static_cast<size_t>(sig)][static_cast<size_t>(index)]));
  }
  dump_->pending.clear();
}

void Simulation::exec_sys(const Stmt& st) {
  const std::string& c = st.callee;
  if (c == "$display" || c == "$write") {
    display_.push_back(format_display(st));
  } else if (c == "$finish") {
    finished_ = true;
  } else if (c == "$stop") {
    stopped_ = true;
  } else if (c == "$dumpfile") {
    if (!st.args.empty() && st.args[0]->kind == ExprKind::kString)
      dump_name_ = st.args[0]->str;
  } else if (c == "$dumpvars") {
    start_dump();
  } else {
    fail("unsupported system task '" + c + "'");
  }
}

}  // namespace hlsw::vsim
