#include "vsim/lexer.h"

#include <cctype>
#include <stdexcept>

namespace hlsw::vsim {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("vsim lex error at line " + std::to_string(line) +
                           ": " + what);
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int digit_value(char c, int base, int line) {
  int v;
  if (c >= '0' && c <= '9') v = c - '0';
  else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
  else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
  else v = -1;
  if (v < 0 || v >= base) fail(line, std::string("bad digit '") + c + "'");
  return v;
}

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;

  const auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i >= n) fail(line, "unterminated block comment");
      i += 2;
      continue;
    }
    if (c == '`') {  // compiler directive: skip to end of line
      while (i < n && src[i] != '\n') ++i;
      continue;
    }

    Token t;
    t.line = line;

    if (c == '"') {
      t.kind = Tok::kString;
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\n') fail(line, "unterminated string");
        if (src[i] == '\\' && i + 1 < n) {
          const char e = src[i + 1];
          t.text.push_back(e == 'n' ? '\n' : e == 't' ? '\t' : e);
          i += 2;
        } else {
          t.text.push_back(src[i++]);
        }
      }
      if (i >= n) fail(line, "unterminated string");
      ++i;
      out.push_back(std::move(t));
      continue;
    }

    if (c == '$' && ident_start(peek(1))) {
      t.kind = Tok::kSysName;
      t.text.push_back(src[i++]);
      while (i < n && ident_char(src[i])) t.text.push_back(src[i++]);
      out.push_back(std::move(t));
      continue;
    }

    if (ident_start(c)) {
      t.kind = Tok::kIdent;
      while (i < n && ident_char(src[i])) t.text.push_back(src[i++]);
      out.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '\'' && ident_char(peek(1)))) {
      // Optional decimal size, then optional '<s><base> digits.
      unsigned long long size = 0;
      bool have_size = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) {
        size = size * 10 + static_cast<unsigned long long>(src[i] - '0');
        have_size = true;
        t.text.push_back(src[i++]);
      }
      if (i < n && src[i] == '\'') {
        t.text.push_back(src[i++]);
        bool sflag = false;
        if (i < n && (src[i] == 's' || src[i] == 'S')) {
          sflag = true;
          t.text.push_back(src[i++]);
        }
        if (i >= n) fail(line, "truncated based literal");
        int base;
        switch (src[i]) {
          case 'd': case 'D': base = 10; break;
          case 'h': case 'H': base = 16; break;
          case 'b': case 'B': base = 2; break;
          case 'o': case 'O': base = 8; break;
          default: fail(line, "unknown literal base");
        }
        t.text.push_back(src[i++]);
        unsigned long long v = 0;
        bool any = false;
        while (i < n && (ident_char(src[i]) || src[i] == '_')) {
          if (src[i] == '_') {
            ++i;
            continue;
          }
          v = v * static_cast<unsigned long long>(base) +
              static_cast<unsigned long long>(
                  digit_value(src[i], base, line));
          any = true;
          t.text.push_back(src[i++]);
        }
        if (!any) fail(line, "based literal without digits");
        t.kind = Tok::kNumber;
        t.value = v;
        t.width = have_size ? static_cast<int>(size) : 32;
        if (t.width < 1 || t.width > 64)
          fail(line, "literal width out of the supported 1..64 range");
        if (t.width < 64) t.value &= (1ULL << t.width) - 1;
        t.sized = have_size;
        t.is_signed = sflag;
        out.push_back(std::move(t));
        continue;
      }
      // Plain unsized decimal: 32-bit signed per the LRM.
      t.kind = Tok::kNumber;
      t.value = size;
      t.width = 32;
      t.sized = false;
      t.is_signed = true;
      out.push_back(std::move(t));
      continue;
    }

    // Multi-character operators, longest first.
    static const char* kOps[] = {
        ">>>", "<<<", "===", "!==", "==", "!=", "<=", ">=", "&&", "||",
        "<<", ">>", "~&", "~|", "~^", "^~",
    };
    t.kind = Tok::kSymbol;
    bool matched = false;
    for (const char* op : kOps) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (src.compare(i, len, op) == 0) {
        t.text = op;
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      static const std::string kSingles = "()[]{}:;,.@#?=!~&|^+-*/%<>";
      if (kSingles.find(c) == std::string::npos)
        fail(line, std::string("unexpected character '") + c + "'");
      t.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(t));
  }

  Token eof;
  eof.kind = Tok::kEof;
  eof.line = line;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace hlsw::vsim
