// Tokenizer for the vsim Verilog subset. Produces a flat token stream with
// line numbers for error reporting; skips // and /* */ comments and
// compiler directives (`timescale and friends), which the simulator does
// not interpret (time is counted in abstract units, one unit per #1).
#pragma once

#include <string>
#include <vector>

namespace hlsw::vsim {

enum class Tok {
  kIdent,    // identifiers and keywords (keywords resolved by the parser)
  kSysName,  // $display, $signed, ...
  kNumber,   // sized or unsized literal
  kString,   // "..."
  kSymbol,   // operator / punctuation, possibly multi-character
  kEof,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;  // identifier, symbol spelling, or raw literal
  int line = 0;
  // kNumber payload.
  unsigned long long value = 0;
  int width = 32;
  bool sized = false;
  bool is_signed = false;  // unsized decimals and 's literals are signed
};

// Tokenizes the full source; throws std::runtime_error (with line number)
// on malformed input such as an unterminated string or a bad based literal.
std::vector<Token> lex(const std::string& src);

}  // namespace hlsw::vsim
