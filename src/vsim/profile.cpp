#include "vsim/profile.h"

#include <sstream>

#include <algorithm>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"
#include "vsim/harness.h"
#include "vsim/pack.h"

namespace hlsw::vsim {

using hls::PortIo;

namespace {

bool io_equal(const PortIo& a, const PortIo& b) {
  return a.arrays == b.arrays && a.vars == b.vars;
}

// Model-independent counters: the same physical events occur no matter
// whether loop iterations overlap (schedule model) or serialize (emitted
// model), so every leg must report identical totals.
bool model_independent(hls::CounterKind k) {
  switch (k) {
    case hls::CounterKind::kInvocations:
    case hls::CounterKind::kLoopIters:
    case hls::CounterKind::kMemReads:
    case hls::CounterKind::kMemWrites:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool ProfileRunResult::ok() const {
  if (!cross_issues.empty()) return false;
  for (const long long mm : output_mismatches)
    if (mm != 0) return false;
  for (const hls::ProfileReport& r : reports)
    if (!r.ok) return false;
  return true;
}

obs::Json ProfileRunResult::to_json() const {
  obs::Json legs = obs::Json::array();
  for (std::size_t i = 0; i < counters.size(); ++i) {
    obs::Json raw = obs::Json::object();
    for (const auto& [name, value] : counters[i].values)
      raw.set(name, value);
    legs.push(obs::Json::object()
                  .set("source", counters[i].source)
                  .set("backend",
                       i < leg_backends.size() ? leg_backends[i] : "")
                  .set("fallback_reason",
                       i < leg_fallbacks.size() ? leg_fallbacks[i] : "")
                  .set("lanes", i < leg_lanes.size() ? leg_lanes[i] : 1)
                  .set("output_mismatches", output_mismatches[i])
                  .set("counters", std::move(raw))
                  .set("report", reports[i].to_json()));
  }
  obs::Json cross = obs::Json::array();
  for (const std::string& s : cross_issues) cross.push(s);
  obs::Json notes_j = obs::Json::array();
  for (const std::string& s : notes) notes_j.push(s);
  return obs::Json::object()
      .set("tool", "hlsw.profile")
      // 3: a packed leg's backend may now be "packed_codegen" (generated
      // lane-major engine) with its degrade reason in fallback_reason.
      .set("schema_version", 3)
      .set("function", function)
      .set("predicted",
           obs::Json::object()
               .set("latency_cycles", synthesis.schedule.latency_cycles)
               .set("clock_ns", synthesis.schedule.clock_ns))
      .set("feasibility",
           obs::Json::object()
               .set("min_latency_cycles",
                    feasibility.bounds.min_latency_cycles)
               .set("min_area", feasibility.bounds.min_area))
      .set("counter_map", hls::instrument_map_json(counter_map))
      .set("legs", std::move(legs))
      .set("cross_issues", std::move(cross))
      .set("notes", std::move(notes_j))
      .set("ok", ok());
}

ProfileRunResult profile_run(const hls::Function& f,
                             const hls::Directives& dir,
                             const hls::TechLibrary& tech,
                             const std::vector<PortIo>& vectors,
                             const ProfileRunOptions& opts) {
  obs::ScopedSpan span("profile_run", "vsim");
  ProfileRunResult r;
  r.synthesis = hls::run_synthesis(f, dir, tech);
  r.function = r.synthesis.transformed.name;
  // Bounds are certified against the ORIGINAL IR + directives: the measured
  // hardware may never beat them no matter what the transforms did.
  r.feasibility = hls::check_feasibility(f, dir, tech);

  hls::InstrumentOptions inst = opts.instrument;
  inst.enabled = true;
  r.counter_map =
      hls::instrument_map(r.synthesis.transformed, r.synthesis.schedule, inst);

  rtl::VerilogOptions vopts;
  vopts.instrument = inst;
  r.verilog =
      rtl::emit_verilog(r.synthesis.transformed, r.synthesis.schedule, vopts);

  // Untimed golden reference on the transformed IR.
  hls::Interpreter golden(r.synthesis.transformed);
  const std::vector<PortIo> expected = golden.run_stream(vectors);
  auto mismatches = [&](const std::vector<PortIo>& got) {
    long long mm = 0;
    for (std::size_t i = 0; i < expected.size(); ++i)
      if (!io_equal(got[i], expected[i])) ++mm;
    return mm;
  };
  auto add_leg = [&](hls::CounterValues values, long long mm,
                     std::string backend, std::string fallback,
                     int lanes = 1) {
    r.output_mismatches.push_back(mm);
    r.reports.push_back(hls::reconcile_profile(
        r.synthesis.transformed, r.synthesis.schedule, r.counter_map, values,
        &r.feasibility.bounds));
    r.counters.push_back(std::move(values));
    r.leg_backends.push_back(std::move(backend));
    r.leg_fallbacks.push_back(std::move(fallback));
    r.leg_lanes.push_back(lanes);
  };

  if (opts.run_rtl_sim) {
    rtl::Simulator sim(r.synthesis.transformed, r.synthesis.schedule);
    const long long mm = mismatches(sim.run_stream(vectors));
    add_leg(rtl::read_counters(sim, r.counter_map), mm, "rtl_sim", "");
  }

  std::vector<std::size_t> vsim_legs;  // indices into r.counters
  if (opts.run_vsim_event || opts.run_vsim_compiled ||
      opts.run_vsim_codegen) {
    auto design = load_design(r.verilog, r.function);
    auto run_vsim = [&](Backend want, const char* wanted_name) {
      SimConfig cfg;
      cfg.backend = want;
      DutHarness h(r.synthesis.transformed, design, cfg);
      const std::string got = h.sim().backend();
      if (got != wanted_name)
        r.notes.push_back(std::string(wanted_name) +
                          " backend fell back to " + got + ": " +
                          h.sim().fallback_reason());
      const long long mm = mismatches(h.run_stream(vectors));
      vsim_legs.push_back(r.counters.size());
      add_leg(h.read_counters(r.counter_map), mm, got,
              h.sim().fallback_reason());
    };
    // Packed auto-selection for the compiled leg: when the caller granted a
    // lane budget and the stimulus is at least that wide, run the compiled
    // plan through the bit-packed engine instead of the scalar harness.
    // Each lane replays its contiguous block from reset and is checked
    // against a fresh golden replay of that block (the vsim_sweep block
    // contract); counters are per-invocation accumulators, so their lane
    // sum equals the scalar sequential measurement and every cross-leg
    // check below still applies bit for bit.
    auto run_packed = [&]() -> bool {
      const int lanes = std::clamp(opts.lanes, 1, kMaxLanes);
      if (lanes <= 1 ||
          vectors.size() < static_cast<std::size_t>(lanes))
        return false;
      std::string why;
      auto plan = compiled_plan(design, &why);
      if (plan == nullptr) {
        r.notes.push_back(
            "packed auto-selection unavailable (design not "
            "cycle-schedulable: " + why + "); compiled leg ran scalar");
        return false;
      }
      if (!plan_packable(*plan)) {
        r.notes.push_back(
            "packed auto-selection unavailable ($display/$dump in the "
            "design); compiled leg ran scalar");
        return false;
      }
      const std::size_t n = vectors.size();
      const std::size_t bs =
          (n + static_cast<std::size_t>(lanes) - 1) /
          static_cast<std::size_t>(lanes);
      std::vector<std::vector<PortIo>> streams;
      for (std::size_t begin = 0; begin < n; begin += bs)
        streams.emplace_back(
            vectors.begin() + static_cast<long>(begin),
            vectors.begin() + static_cast<long>(std::min(begin + bs, n)));
      const int L = static_cast<int>(streams.size());
      // SimConfig{} = kAuto: the harness prefers the generated lane-major
      // engine (packed_codegen) when a toolchain exists and degrades to
      // the interpreted packed tier with the reason recorded per leg.
      PackedDutHarness h(r.synthesis.transformed, plan, L, SimConfig{});
      const auto got = h.run_streams(streams);
      long long mm = 0;
      // One golden context across the lanes, reset() between streams.
      hls::Interpreter packed_golden(r.synthesis.transformed);
      for (int l = 0; l < L; ++l) {
        if (l > 0) packed_golden.reset();
        const std::vector<PortIo> want =
            packed_golden.run_stream(streams[static_cast<std::size_t>(l)]);
        const auto& lane_got = got[static_cast<std::size_t>(l)];
        for (std::size_t i = 0; i < want.size(); ++i)
          if (!io_equal(lane_got[i], want[i])) ++mm;
      }
      vsim_legs.push_back(r.counters.size());
      add_leg(h.read_counters(r.counter_map), mm, h.backend(),
              h.fallback_reason(), L);
      r.notes.push_back(
          "compiled leg auto-selected the packed backend: " +
          std::to_string(n) + " vectors >= " + std::to_string(lanes) +
          " lanes (ran " + std::to_string(L) + " lanes on " + h.backend() +
          ")");
      return true;
    };
    if (opts.run_vsim_event) run_vsim(Backend::kEvent, "event");
    if (opts.run_vsim_compiled && !run_packed())
      run_vsim(Backend::kCompiled, "compiled");
    if (opts.run_vsim_codegen) run_vsim(Backend::kCodegen, "codegen");
  }

  // ---- Cross-leg agreement ----
  // The two vsim backends execute the same emitted FSM: every counter must
  // agree bit for bit.
  for (std::size_t i = 1; i < vsim_legs.size(); ++i) {
    const hls::CounterValues& a = r.counters[vsim_legs[0]];
    const hls::CounterValues& b = r.counters[vsim_legs[i]];
    for (const hls::PerfCounter& c : r.counter_map) {
      const auto ia = a.values.find(c.name), ib = b.values.find(c.name);
      if (ia == a.values.end() || ib == b.values.end()) continue;
      if (ia->second != ib->second) {
        std::ostringstream os;
        os << "counter '" << c.name << "': " << a.source << " measured "
           << ia->second << " but " << b.source << " measured " << ib->second
           << " on the same emitted design";
        r.cross_issues.push_back(os.str());
      }
    }
  }
  // Model-independent counters must agree across ALL legs.
  for (const hls::PerfCounter& c : r.counter_map) {
    if (!model_independent(c.kind)) continue;
    for (std::size_t i = 1; i < r.counters.size(); ++i) {
      const auto i0 = r.counters[0].values.find(c.name);
      const auto ii = r.counters[i].values.find(c.name);
      if (i0 == r.counters[0].values.end() ||
          ii == r.counters[i].values.end())
        continue;
      if (i0->second != ii->second) {
        std::ostringstream os;
        os << "counter '" << c.name << "' is timing-model independent but "
           << r.counters[0].source << " measured " << i0->second << " while "
           << r.counters[i].source << " measured " << ii->second;
        r.cross_issues.push_back(os.str());
      }
    }
  }

  if (obs::enabled()) {
    auto& m = obs::MetricsRegistry::instance();
    m.add("hw.profile_run.legs", static_cast<double>(r.counters.size()));
    m.add("hw.profile_run.cross_issues",
          static_cast<double>(r.cross_issues.size()));
  }
  if (span.active()) {
    span.arg("function", r.function);
    span.arg("legs", static_cast<long long>(r.counters.size()));
    span.arg("ok", r.ok() ? 1LL : 0LL);
  }
  if (!opts.report_path.empty()) write_profile_run_json(r, opts.report_path);
  return r;
}

bool write_profile_run_json(const ProfileRunResult& r,
                            const std::string& path) {
  return obs::StructuredReport::write_json_file(path, r.to_json());
}

}  // namespace hlsw::vsim
