#include "vsim/harness.h"

#include <algorithm>
#include <list>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"
#include "util/thread_pool.h"
#include "vsim/pack.h"
#include "vsim/parser.h"

namespace hlsw::vsim {

using hls::FxValue;
using hls::PortIo;

namespace {

// Small LRU of elaborated designs keyed by (source text, top). Sweeps,
// replay harnesses and testbench reruns hand the same text back many
// times; elaboration is pure, so the cached Design (immutable) is shared.
// Entries keep the full key text — at <= 8 entries of emitted Verilog the
// memory cost is trivial and exact matching dodges hash collisions.
struct DesignCache {
  struct Entry {
    std::string key;
    std::shared_ptr<const Design> design;
  };
  std::mutex mu;
  std::list<Entry> lru;  // front = most recently used
};

constexpr std::size_t kDesignCacheCap = 8;

DesignCache& design_cache() {
  static auto* c = new DesignCache;  // leaked: alive for process teardown
  return *c;
}

std::shared_ptr<const Design> parse_and_elaborate(const std::string& verilog,
                                                  const std::string& top) {
  SourceUnit su;
  {
    obs::ScopedSpan span("vsim.parse", "vsim");
    su = parse(verilog);
    if (span.active())
      span.arg("modules", static_cast<long long>(su.modules.size()));
  }
  obs::ScopedSpan span("vsim.elaborate", "vsim");
  auto design = elaborate(su, top);
  if (span.active()) {
    span.arg("signals", static_cast<long long>(design->signals.size()));
    span.arg("processes", static_cast<long long>(design->processes.size()));
  }
  return design;
}

}  // namespace

std::shared_ptr<const Design> load_design(const std::string& verilog,
                                          const std::string& top) {
  std::string key;
  key.reserve(top.size() + 1 + verilog.size());
  key.append(top).push_back('\n');
  key.append(verilog);

  DesignCache& cache = design_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    for (auto it = cache.lru.begin(); it != cache.lru.end(); ++it) {
      if (it->key == key) {
        cache.lru.splice(cache.lru.begin(), cache.lru, it);
        if (obs::enabled())
          obs::MetricsRegistry::instance().add("vsim.design_cache.hits", 1.0);
        return cache.lru.front().design;
      }
    }
  }

  // Parse and elaborate outside the lock: concurrent misses on the same
  // text duplicate work once rather than serializing every caller.
  auto design = parse_and_elaborate(verilog, top);
  if (obs::enabled())
    obs::MetricsRegistry::instance().add("vsim.design_cache.misses", 1.0);

  std::lock_guard<std::mutex> lock(cache.mu);
  for (auto it = cache.lru.begin(); it != cache.lru.end(); ++it) {
    if (it->key == key) {  // another thread won the race — share its copy
      cache.lru.splice(cache.lru.begin(), cache.lru, it);
      return cache.lru.front().design;
    }
  }
  cache.lru.push_front({std::move(key), design});
  while (cache.lru.size() > kDesignCacheCap) cache.lru.pop_back();
  return design;
}

// ---- DutHarness -------------------------------------------------------------

DutHarness::DutHarness(const hls::Function& f,
                       std::shared_ptr<const Design> design,
                       const SimConfig& cfg)
    : pins_(rtl::flatten_port_pins(f)), sim_(std::move(design), cfg) {
  pin_handle_.reserve(pins_.size());
  for (const auto& p : pins_) pin_handle_.push_back(sim_.signal_handle(p.name));
  h_clk_ = sim_.signal_handle("clk");
  h_rst_ = sim_.signal_handle("rst");
  h_start_ = sim_.signal_handle("start");
  h_done_ = sim_.signal_handle("done");
  reset();
}

void DutHarness::tick() {
  sim_.poke(h_clk_, 1);
  sim_.settle();
  sim_.poke(h_clk_, 0);
  sim_.settle();
}

void DutHarness::reset() {
  sim_.poke(h_clk_, 0);
  sim_.poke(h_start_, 0);
  sim_.poke(h_rst_, 1);
  for (int i = 0; i < 3; ++i) tick();
  sim_.poke(h_rst_, 0);
  sim_.settle();
}

PortIo DutHarness::run(const PortIo& in) {
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    const auto& p = pins_[i];
    if (!p.is_input) continue;
    sim_.poke(pin_handle_[i],
              static_cast<unsigned long long>(rtl::pin_value(p, in)));
  }
  sim_.poke(h_start_, 1);
  tick();
  sim_.poke(h_start_, 0);
  long long cycles = 1;
  while (sim_.peek(h_done_) == 0) {
    if (++cycles > 1'000'000)
      throw std::runtime_error(
          "vsim harness: done never asserted — emitted FSM hung");
    tick();
  }
  last_cycles_ = cycles;

  PortIo out;
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    const auto& p = pins_[i];
    if (p.is_input) continue;
    const long long raw =
        p.sgn ? sim_.peek_signed(pin_handle_[i])
              : static_cast<long long>(sim_.peek(pin_handle_[i]));
    FxValue* slot;
    if (p.from_array) {
      auto& vec = out.arrays[p.port];
      if (vec.size() <= static_cast<size_t>(p.index))
        vec.resize(static_cast<size_t>(p.index) + 1);
      slot = &vec[static_cast<size_t>(p.index)];
    } else {
      slot = &out.vars[p.port];
    }
    slot->fw = p.fw;
    slot->cplx = p.cplx;
    (p.re ? slot->re : slot->im) = raw;
  }
  return out;
}

std::vector<PortIo> DutHarness::run_stream(const std::vector<PortIo>& ins) {
  std::vector<PortIo> outs;
  outs.reserve(ins.size());
  for (const auto& in : ins) outs.push_back(run(in));
  return outs;
}

hls::CounterValues DutHarness::read_counters(
    const std::vector<hls::PerfCounter>& map) const {
  hls::CounterValues out;
  out.source = std::string("vsim_") + sim_.backend();
  for (const hls::PerfCounter& c : map)
    out.values[c.name] =
        static_cast<long long>(sim_.peek(sim_.signal_handle(c.name)));
  return out;
}

// ---- Testbench runner -------------------------------------------------------

TestbenchResult run_testbench(const std::string& sources,
                              const std::string& tb_module,
                              const SimConfig& cfg) {
  auto design = load_design(sources, tb_module);
  Simulation sim(std::move(design), cfg);
  const RunResult rr = sim.run();

  TestbenchResult r;
  r.finished = rr.finished;
  r.end_time = rr.end_time;
  r.display = rr.display;
  r.vcd_name = rr.vcd_name;
  r.vcd_text = rr.vcd_text;
  bool saw_pass = false, saw_fail = false;
  for (const auto& line : r.display) {
    if (line.rfind("PASS", 0) == 0) saw_pass = true;
    if (line.find("FAIL") != std::string::npos) saw_fail = true;
  }
  r.passed = rr.finished && saw_pass && !saw_fail;
  return r;
}

// ---- Differential sweeps ----------------------------------------------------

namespace {

// Golden-leg factory with a batched evaluation context: Interpreter
// construction copies the Function and rebuilds its name indices, and the
// sweep used to pay that per block — at sweep block counts the reference
// leg's setup dominated and capped every DUT-side speedup (the Amdahl
// analysis in EXPERIMENTS.md). Instances are pooled per sweep instead;
// a checked-out context is reset() between blocks, which restores exactly
// the state a fresh instance would start with.
hls::CosimFactory interp_factory(const hls::Function& f) {
  struct Pool {
    std::mutex mu;
    std::vector<std::unique_ptr<hls::Interpreter>> idle;
  };
  auto pool = std::make_shared<Pool>();
  return [&f, pool]() -> hls::CosimModel {
    return [&f, pool](const std::vector<PortIo>& ins) {
      std::unique_ptr<hls::Interpreter> interp;
      {
        std::lock_guard<std::mutex> lk(pool->mu);
        if (!pool->idle.empty()) {
          interp = std::move(pool->idle.back());
          pool->idle.pop_back();
        }
      }
      if (interp == nullptr)
        interp = std::make_unique<hls::Interpreter>(f);
      else
        interp->reset();
      auto outs = interp->run_stream(ins);
      std::lock_guard<std::mutex> lk(pool->mu);
      pool->idle.push_back(std::move(interp));
      return outs;
    };
  };
}

hls::CosimFactory rtl_factory(const hls::Function& f,
                              const hls::Schedule& s) {
  return [&f, &s]() -> hls::CosimModel {
    auto sim = std::make_shared<rtl::Simulator>(f, s);
    return [sim](const std::vector<PortIo>& ins) {
      return sim->run_stream(ins);
    };
  };
}

hls::CosimFactory vsim_factory(const hls::Function& f,
                               std::shared_ptr<const Design> design,
                               const SimConfig& cfg) {
  return [&f, design, cfg]() -> hls::CosimModel {
    auto harness = std::make_shared<DutHarness>(f, design, cfg);
    return [harness](const std::vector<PortIo>& ins) {
      return harness->run_stream(ins);
    };
  };
}

// Multi-lane sweep: up to `lanes` consecutive blocks share one
// PackedDutHarness, each block in its own lane. Block independence is
// untouched (every batch's harness starts from reset, and lanes are
// state-disjoint), the golden leg stays the per-block untimed interpreter,
// and mismatch reports reuse hls::compare_outputs / cap_mismatches so the
// output is byte-identical with the scalar sweep.
hls::CosimResult vsim_sweep_packed(
    const hls::Function& f, std::shared_ptr<const CompiledDesign> plan,
    const std::vector<PortIo>& vectors, const hls::CosimOptions& opts,
    const SimConfig& cfg, int lanes) {
  hls::CosimResult result;
  result.vectors = vectors.size();
  if (vectors.empty()) return result;

  const std::size_t bs = std::max<std::size_t>(1, opts.block_size);
  const std::size_t nblocks = (vectors.size() + bs - 1) / bs;
  result.blocks = nblocks;
  const std::size_t nlanes = static_cast<std::size_t>(lanes);
  const std::size_t nbatches = (nblocks + nlanes - 1) / nlanes;

  obs::ScopedSpan span("vsim_sweep.packed", "vsim");
  if (span.active()) {
    span.arg("lanes", static_cast<long long>(lanes));
    span.arg("blocks", static_cast<long long>(nblocks));
    span.arg("batches", static_cast<long long>(nbatches));
  }

  const auto run_batch = [&](std::size_t batch) -> std::vector<std::string> {
    const std::size_t first_blk = batch * nlanes;
    const int L = static_cast<int>(
        std::min(nlanes, nblocks - first_blk));
    std::vector<std::vector<PortIo>> streams(static_cast<std::size_t>(L));
    for (int l = 0; l < L; ++l) {
      const std::size_t begin = (first_blk + static_cast<std::size_t>(l)) * bs;
      const std::size_t end = std::min(begin + bs, vectors.size());
      streams[static_cast<std::size_t>(l)].assign(
          vectors.begin() + static_cast<long>(begin),
          vectors.begin() + static_cast<long>(end));
    }
    PackedDutHarness harness(f, plan, L, cfg);
    const auto got = harness.run_streams(streams);
    std::vector<std::string> mism;
    // One golden evaluation context per batch, reset() between lanes:
    // identical outputs to a fresh Interpreter per block, without paying
    // Function copy + index construction L times.
    hls::Interpreter golden(f);
    for (int l = 0; l < L; ++l) {
      const std::size_t blk = first_blk + static_cast<std::size_t>(l);
      const std::size_t begin = blk * bs;
      const auto& block = streams[static_cast<std::size_t>(l)];
      if (l > 0) golden.reset();
      const std::vector<PortIo> want = golden.run_stream(block);
      if (want.size() != block.size() ||
          got[static_cast<std::size_t>(l)].size() != block.size()) {
        mism.push_back("block " + std::to_string(blk) +
                       ": model returned wrong vector count");
        continue;
      }
      for (std::size_t i = 0; i < block.size(); ++i)
        hls::compare_outputs(begin + i, want[i],
                             got[static_cast<std::size_t>(l)][i], &mism);
    }
    return mism;
  };

  // Deterministic merge: batches in order, lanes within a batch in block
  // order — the global mismatch list reads exactly as the scalar sweep's.
  std::unique_ptr<util::ThreadPool> owned;
  util::ThreadPool* pool = opts.pool;
  if (pool == nullptr && opts.threads > 0) {
    owned = std::make_unique<util::ThreadPool>(opts.threads);
    pool = owned.get();
  }
  const auto per_batch = util::map_ordered(pool, nbatches, run_batch);
  for (const auto& mism : per_batch)
    result.mismatches.insert(result.mismatches.end(), mism.begin(),
                             mism.end());
  hls::cap_mismatches(opts.mismatch_limit, &result);
  return result;
}

}  // namespace

hls::CosimResult vsim_sweep(const hls::Function& f, const hls::Schedule& s,
                            const std::vector<PortIo>& vectors,
                            const hls::CosimOptions& opts,
                            const SimConfig& cfg) {
  obs::ScopedSpan span("vsim_sweep", "vsim");
  const std::string verilog = rtl::emit_verilog(f, s);
  auto design = load_design(verilog, f.name);
  const int lanes = std::clamp(opts.lanes, 1, kMaxLanes);
  if (lanes > 1 && cfg.compiled && cfg.backend != Backend::kEvent) {
    std::string why;
    if (auto plan = compiled_plan(design, &why); plan && plan_packable(*plan))
      return vsim_sweep_packed(f, plan, vectors, opts, cfg, lanes);
    // Not cycle-schedulable (or a dumping design): scalar fallback below.
  }
  return hls::cosim_sweep(interp_factory(f), vsim_factory(f, design, cfg),
                          vectors, opts);
}

VerifyEmittedResult verify_emitted(const hls::Function& f,
                                   const hls::Schedule& s,
                                   const std::vector<PortIo>& vectors,
                                   const hls::CosimOptions& opts) {
  obs::ScopedSpan span("vsim.verify_emitted", "vsim");
  VerifyEmittedResult r;
  const std::string verilog = rtl::emit_verilog(f, s);
  auto design = load_design(verilog, f.name);
  r.lint_issues = lint(*design);

  const std::vector<hls::CosimLeg> legs = {
      {"golden", interp_factory(f)},
      {"rtl", rtl_factory(f, s)},
      {"vsim", vsim_factory(f, design, {})},
  };
  r.cosim = hls::cosim_sweep_nway(legs, vectors, opts);

  // The generated self-checking testbench replays a prefix of the stimulus
  // in-process — the end-to-end path a user would previously have needed an
  // external simulator for.
  const std::size_t n = std::min<std::size_t>(8, vectors.size());
  const std::vector<PortIo> tb_in(vectors.begin(),
                                  vectors.begin() + static_cast<long>(n));
  const auto tvs = rtl::capture_vectors(f, s, tb_in);
  const std::string tb = rtl::emit_testbench(f, tvs, f.name);
  r.testbench = run_testbench(verilog + "\n" + tb, f.name + "_tb");
  return r;
}

}  // namespace hlsw::vsim
