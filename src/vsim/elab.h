// Elaboration: turns a parsed SourceUnit into one flat, executable Design.
//
//  - module instances are flattened (named port connections alias parent
//    signals; instance-internal nets get "inst." prefixed signals),
//  - localparam references fold to literals,
//  - task enables inline the task body behind blocking assignments of the
//    actual arguments to per-task argument signals,
//  - every expression is annotated with its resolved signal and its
//    self-determined width/signedness per IEEE 1364-2001 4.4/4.5 — the
//    evaluation kernel (sim.h) and the lint pass (lint.h) both key off
//    these annotations.
//
// The Design is immutable after elaboration: simulations share it through
// a shared_ptr (one elaborated design, many per-shard Simulation states).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vsim/ast.h"

namespace hlsw::vsim {

struct Signal {
  std::string name;
  int width = 1;
  bool is_signed = false;
  bool is_reg = false;
  int array_len = 0;  // 0 = scalar
  bool has_init = false;
  long long init = 0;
  bool is_top_input = false;   // port of the *top* module
  bool is_top_output = false;
  bool is_task_arg = false;    // synthesized by task inlining (elab.cpp)
};

struct ElabAssign {
  int target = -1;      // scalar signal driven by this continuous assign
  ExprPtr rhs;
  std::vector<int> deps;  // signals read by rhs (sorted, unique)
};

struct Process {
  StmtPtr body;
  bool is_always = false;
  std::string origin;  // "<module>.<always|initial>[n]" for diagnostics
};

struct Design {
  std::string top;
  std::vector<Signal> signals;
  std::map<std::string, int> signal_index;
  std::vector<ElabAssign> assigns;
  std::vector<Process> processes;

  int find(const std::string& name) const {
    auto it = signal_index.find(name);
    return it == signal_index.end() ? -1 : it->second;
  }
};

// Elaborates `top_module` (which may instantiate other modules in the
// unit). Throws std::runtime_error on undeclared identifiers, port
// mismatches, unsupported constructs, or widths beyond 64 bits.
std::shared_ptr<const Design> elaborate(const SourceUnit& su,
                                        const std::string& top_module);

// Collects the signals read by an annotated expression (exposed for the
// lint pass and the simulator's dependency wiring).
void collect_reads(const Expr& e, std::vector<int>* out);

}  // namespace hlsw::vsim
