#include "vsim/codegen.h"

#include <dlfcn.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hlsw::vsim {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("vsim runtime error: " + what);
}

// ---- Toolchain resolution ---------------------------------------------------

// Probe results are memoized per candidate command; the environment
// variables themselves are re-read on every call so a test can disable
// codegen (HLSW_CODEGEN_CXX=none) and re-enable it within one process.
bool probe_cxx(const std::string& cmd) {
  static std::mutex mu;
  static std::map<std::string, bool> memo;
  std::lock_guard<std::mutex> lk(mu);
  const auto it = memo.find(cmd);
  if (it != memo.end()) return it->second;
  const std::string line = cmd + " --version > /dev/null 2>&1";
  const bool ok = std::system(line.c_str()) == 0;
  memo[cmd] = ok;
  return ok;
}

}  // namespace

std::string codegen_toolchain() {
  if (const char* e = std::getenv("HLSW_CODEGEN_CXX")) {
    const std::string v = e;
    if (v.empty() || v == "none") return "";
    return probe_cxx(v) ? v : "";
  }
  if (const char* e = std::getenv("CXX")) {
    const std::string v = e;
    if (!v.empty() && probe_cxx(v)) return v;
  }
  for (const char* cand : {"c++", "g++", "clang++"})
    if (probe_cxx(cand)) return cand;
  return "";
}

bool codegen_available() { return !codegen_toolchain().empty(); }

// ---- Source generation ------------------------------------------------------

namespace {

std::string hx(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llxull",
                static_cast<unsigned long long>(v));
  return buf;
}

// Emits the statements evaluating one tape and returns the expression (a
// temp name or literal) holding its value. Every op result becomes its own
// `const u64` temp so operands are never textually duplicated; `tmp` is
// the caller-scoped temp counter keeping names unique per function. In
// packed mode the emitted statements live inside a `for (l = 0; l < kL;
// ++l)` lane loop: signal loads index the lane plane and element loads
// pass the lane through to the lane-major ldel.
std::string emit_tape(std::ostream& os, const CompiledDesign& cd, int tape,
                      int& tmp, const char* ind, bool packed = false) {
  const TapeRef& t = cd.tapes[static_cast<std::size_t>(tape)];
  const std::string lx = packed ? ", l" : "";
  std::vector<std::string> stk;
  const auto push = [&](const std::string& expr) {
    std::string name = "t" + std::to_string(tmp++);
    os << ind << "const u64 " << name << " = " << expr << ";\n";
    stk.push_back(std::move(name));
  };
  const auto pop = [&] {
    std::string v = std::move(stk.back());
    stk.pop_back();
    return v;
  };
  const auto sig = [&](std::int32_t a) {
    return "S->v[" + std::to_string(a) + (packed ? "][l]" : "]");
  };
  const auto arr = [&](std::int32_t a) {
    return "S->a" + std::to_string(a);
  };
  const auto alen = [&](std::int32_t a) {
    return std::to_string(cd.design->signals[static_cast<std::size_t>(a)]
                              .array_len);
  };
  for (std::uint32_t i = t.begin; i < t.begin + t.len; ++i) {
    const TOp& o = cd.ops[i];
    const std::string W = std::to_string(o.w);
    const std::string A = std::to_string(o.a);
    const std::string I = hx(o.imm);
    // Folded 32-bit constants of the xC superinstructions.
    const std::string C =
        hx(static_cast<std::uint64_t>(static_cast<std::uint32_t>(o.a)));
    switch (o.code) {
      case TOp::kConst:
        stk.push_back("(" + I + ")");
        break;
      case TOp::kLoad:
        push(sig(o.a));
        break;
      case TOp::kLoadSx:
        push("sx(" + sig(o.a) + ", " + W + ") & " + I);
        break;
      case TOp::kLoadTr:
        push(sig(o.a) + " & " + I);
        break;
      case TOp::kLoadElem: {
        const std::string u = pop();
        const std::string idx =
            o.w ? "(i64)sx(" + u + ", " + W + ")" : "(i64)" + u;
        push("ldel(" + arr(o.a) + ", " + alen(o.a) + ", " + idx + lx + ")");
        break;
      }
      case TOp::kTrunc:
        push(pop() + " & " + I);
        break;
      case TOp::kSext:
        push("sx(" + pop() + ", " + W + ") & " + I);
        break;
      case TOp::kToSigned:
        push("tosgn(" + pop() + ", " + W + ")");
        break;
      case TOp::kBitSel: {
        const std::string idx = pop(), base = pop();
        push("bitsel(" + base + ", (i64)" + idx + ", " + W + ")");
        break;
      }
      case TOp::kRange:
        push("(" + pop() + " >> " + A + ") & " + I);
        break;
      case TOp::kNeg:
        push("(0 - " + pop() + ") & " + I);
        break;
      case TOp::kNot:
        push("~" + pop() + " & " + I);
        break;
      case TOp::kLNot:
        push("(u64)(" + pop() + " == 0)");
        break;
      case TOp::kNeZero:
        push("(u64)(" + pop() + " != 0)");
        break;
      case TOp::kRedAnd:
        push("(u64)(" + pop() + " == " + I + ")");
        break;
      case TOp::kRedNand:
        push("(u64)(" + pop() + " != " + I + ")");
        break;
      case TOp::kRedOr:
        push("(u64)(" + pop() + " != 0)");
        break;
      case TOp::kRedNor:
        push("(u64)(" + pop() + " == 0)");
        break;
      case TOp::kRedXor:
        push("(u64)__builtin_parityll((i64)" + pop() + ")");
        break;
      case TOp::kRedXnor:
        push("(u64)!__builtin_parityll((i64)" + pop() + ")");
        break;
      case TOp::kAnd: {
        const std::string b = pop(), a = pop();
        push(a + " & " + b);
        break;
      }
      case TOp::kOr: {
        const std::string b = pop(), a = pop();
        push(a + " | " + b);
        break;
      }
      case TOp::kXor: {
        const std::string b = pop(), a = pop();
        push(a + " ^ " + b);
        break;
      }
      case TOp::kXnorB: {
        const std::string b = pop(), a = pop();
        push("~(" + a + " ^ " + b + ") & " + I);
        break;
      }
      case TOp::kAdd: {
        const std::string b = pop(), a = pop();
        push("(" + a + " + " + b + ") & " + I);
        break;
      }
      case TOp::kSub: {
        const std::string b = pop(), a = pop();
        push("(" + a + " - " + b + ") & " + I);
        break;
      }
      case TOp::kMul: {
        const std::string b = pop(), a = pop();
        push("(" + a + " * " + b + ") & " + I);
        break;
      }
      case TOp::kDivU: {
        const std::string b = pop(), a = pop();
        push(b + " == 0 ? 0 : " + a + " / " + b);
        break;
      }
      case TOp::kModU: {
        const std::string b = pop(), a = pop();
        push(b + " == 0 ? 0 : " + a + " % " + b);
        break;
      }
      case TOp::kDivS: {
        const std::string b = pop(), a = pop();
        push("divs(" + a + ", " + b + ", " + W + ", " + I + ")");
        break;
      }
      case TOp::kModS: {
        const std::string b = pop(), a = pop();
        push("mods(" + a + ", " + b + ", " + W + ", " + I + ")");
        break;
      }
      case TOp::kEq: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " == " + b + ")");
        break;
      }
      case TOp::kNe: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " != " + b + ")");
        break;
      }
      case TOp::kLtU: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " < " + b + ")");
        break;
      }
      case TOp::kLeU: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " <= " + b + ")");
        break;
      }
      case TOp::kGtU: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " > " + b + ")");
        break;
      }
      case TOp::kGeU: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " >= " + b + ")");
        break;
      }
      case TOp::kLtS: {
        const std::string b = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") < sgn64(" + b + ", " + W +
             "))");
        break;
      }
      case TOp::kLeS: {
        const std::string b = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") <= sgn64(" + b + ", " + W +
             "))");
        break;
      }
      case TOp::kGtS: {
        const std::string b = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") > sgn64(" + b + ", " + W +
             "))");
        break;
      }
      case TOp::kGeS: {
        const std::string b = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") >= sgn64(" + b + ", " + W +
             "))");
        break;
      }
      case TOp::kShl: {
        const std::string sh = pop(), a = pop();
        push(sh + " >= 64 ? 0 : (" + a + " << " + sh + ") & " + I);
        break;
      }
      case TOp::kShrU: {
        const std::string sh = pop(), a = pop();
        push(sh + " >= 64 ? 0 : " + a + " >> " + sh);
        break;
      }
      case TOp::kShrS: {
        const std::string sh = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") >> (" + sh + " > 63 ? 63 : " +
             sh + ")) & " + I);
        break;
      }
      case TOp::kConcatAcc: {
        const std::string kid = pop(), acc = pop();
        push("(" + acc + " << " + W + ") | " + kid);
        break;
      }
      case TOp::kRepl:
        push("repl(" + pop() + ", " + W + ", " + A + ")");
        break;
      case TOp::kMux: {
        const std::string ev = pop(), tv = pop(), cond = pop();
        push(cond + " != 0 ? " + tv + " : " + ev);
        break;
      }
      case TOp::kTime:
        stk.push_back("(0ull)");
        break;
      case TOp::kLoadElemSx:
        push("sx(ldel(" + arr(o.a) + ", " + alen(o.a) + ", (i64)" + pop() +
             lx + "), " + W + ") & " + I);
        break;
      case TOp::kLoadElemTr: {
        const std::string u = pop();
        const std::string idx =
            o.w ? "(i64)sx(" + u + ", " + W + ")" : "(i64)" + u;
        push("ldel(" + arr(o.a) + ", " + alen(o.a) + ", " + idx + lx + ") & " +
             I);
        break;
      }
      case TOp::kAddC:
        push("(" + pop() + " + " + C + ") & " + I);
        break;
      case TOp::kSubC:
        push("(" + pop() + " - " + C + ") & " + I);
        break;
      case TOp::kMulC:
        push("(" + pop() + " * " + C + ") & " + I);
        break;
      case TOp::kOrC:
        push(pop() + " | " + I);
        break;
      case TOp::kXorC:
        push(pop() + " ^ " + I);
        break;
      case TOp::kShlC:
        push("(" + pop() + " << " + C + ") & " + I);
        break;
      case TOp::kConcatC:
        push("(" + pop() + " << " + W + ") | " + C);
        break;
      case TOp::kAddL:
        push("(" + pop() + " + " + sig(o.a) + ") & " + I);
        break;
      case TOp::kSubL:
        push("(" + pop() + " - " + sig(o.a) + ") & " + I);
        break;
      case TOp::kMulL:
        push("(" + pop() + " * " + sig(o.a) + ") & " + I);
        break;
      case TOp::kAndL:
        push(pop() + " & " + sig(o.a));
        break;
      case TOp::kOrL:
        push(pop() + " | " + sig(o.a));
        break;
      case TOp::kXorL:
        push(pop() + " ^ " + sig(o.a));
        break;
      case TOp::kConcatL:
        push("(" + pop() + " << " + W + ") | " + sig(o.a));
        break;
      case TOp::kRangeL:
        push("(" + sig(o.a) + " >> " + W + ") & " + I);
        break;
      case TOp::kLoadShlC:
        push("(" + sig(o.a) + " << " + W + ") & " + I);
        break;
      case TOp::kHalt:
        return stk.back();
    }
  }
  return stk.back();  // unreachable: every tape ends in kHalt
}

// End of proc p's slice of CompiledDesign::prog (entries are built
// sequentially, so proc bodies are contiguous).
std::size_t proc_end(const CompiledDesign& cd, std::size_t p) {
  return p + 1 < cd.procs.size()
             ? static_cast<std::size_t>(cd.procs[p + 1].entry)
             : cd.prog.size();
}

void emit_proc(std::ostream& os, const CompiledDesign& cd, std::size_t p) {
  const std::size_t entry = static_cast<std::size_t>(cd.procs[p].entry);
  const std::size_t end = proc_end(cd, p);
  int repeat_depth = 0;
  for (std::size_t pc = entry; pc < end; ++pc)
    if (cd.prog[pc].code == PInstr::kRepeatInit) ++repeat_depth;

  os << "static int proc" << p << "(St* S, i64 budget) {\n";
  if (repeat_depth > 0)
    os << "  i64 reps[" << repeat_depth << "]; int rsp = 0;\n";
  int tmp = 0;
  const char* ind = "    ";
  for (std::size_t pc = entry; pc < end; ++pc) {
    const PInstr& in = cd.prog[pc];
    const std::string SIG = std::to_string(in.sig);
    const std::string MASK =
        in.sig >= 0 ? hx(cd.sig_mask[static_cast<std::size_t>(in.sig)]) : "";
    os << "  L" << pc << ": ++S->instrs;\n";
    os << "  {\n";
    switch (in.code) {
      case PInstr::kAssign: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        os << ind << "set_sig(S, " << SIG << ", " << v << ", "
           << static_cast<int>(p) << ");\n";
        break;
      }
      case PInstr::kAssignCopy:
        os << ind << "set_sig(S, " << SIG << ", S->v[" << in.a << "], "
           << static_cast<int>(p) << ");\n";
        break;
      case PInstr::kAssignConst:
        os << ind << "set_sig(S, " << SIG << ", " << hx(in.imm) << ", "
           << static_cast<int>(p) << ");\n";
        break;
      case PInstr::kAssignElem: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const std::string ix = emit_tape(os, cd, in.t1, tmp, ind);
        os << ind << "setel(S, " << SIG << ", (i64)" << ix << ", " << v
           << ");\n";
        break;
      }
      case PInstr::kAssignBit: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const std::string ix = emit_tape(os, cd, in.t1, tmp, ind);
        const int w =
            cd.design->signals[static_cast<std::size_t>(in.sig)].width;
        os << ind << "const i64 bi = (i64)" << ix << ";\n"
           << ind << "if (bi >= 0 && bi < " << w << ") {\n"
           << ind << "  const u64 o = S->v[" << SIG << "];\n"
           << ind << "  set_sig(S, " << SIG << ", (o & ~(1ull << bi)) | (("
           << v << " & 1ull) << bi), " << static_cast<int>(p) << ");\n"
           << ind << "}\n";
        break;
      }
      case PInstr::kNb: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        os << ind << "S->nba.push_back(Nba{" << SIG << ", -1, " << v << " & "
           << MASK << "});\n";
        break;
      }
      case PInstr::kNbCopy:
        os << ind << "S->nba.push_back(Nba{" << SIG << ", -1, S->v[" << in.a
           << "] & " << MASK << "});\n";
        break;
      case PInstr::kNbConst:
        os << ind << "S->nba.push_back(Nba{" << SIG << ", -1, " << hx(in.imm)
           << "});\n";
        break;
      case PInstr::kNbElem: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const std::string ix = emit_tape(os, cd, in.t1, tmp, ind);
        os << ind << "S->nba.push_back(Nba{" << SIG << ", (i64)" << ix << ", "
           << v << " & " << MASK << "});\n";
        break;
      }
      case PInstr::kNbBit: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const std::string ix = emit_tape(os, cd, in.t1, tmp, ind);
        os << ind << "S->nba.push_back(Nba{" << SIG << ", (i64)" << ix << ", "
           << v << " & 1ull});\n";
        break;
      }
      case PInstr::kJump:
        // Only backward jumps (loop back-edges) can run unboundedly; mirror
        // the interpreter's per-back-edge budget check.
        if (in.a <= static_cast<std::int32_t>(pc))
          os << ind << "if (S->instrs - S->slot_base > budget) return 1;\n";
        os << ind << "goto L" << in.a << ";\n";
        break;
      case PInstr::kJumpIfFalse: {
        const std::string c = emit_tape(os, cd, in.t0, tmp, ind);
        os << ind << "if (" << c << " == 0) goto L" << in.a << ";\n";
        break;
      }
      case PInstr::kJumpIfFalseSig:
        os << ind << "if (S->v[" << SIG << "] == 0) goto L" << in.a << ";\n";
        break;
      case PInstr::kCaseJump: {
        const CompiledDesign::CaseTable& t =
            cd.case_tables[static_cast<std::size_t>(in.a)];
        os << ind << "switch (S->v[" << SIG << "]) {\n";
        for (const auto& [val, target] : t.arms)
          os << ind << "  case " << hx(val) << ": goto L" << target << ";\n";
        os << ind << "  default: goto L" << t.def_pc << ";\n";
        os << ind << "}\n";
        break;
      }
      case PInstr::kRepeatInit: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const TapeRef& t = cd.tapes[static_cast<std::size_t>(in.t0)];
        if (t.sgn)
          os << ind << "reps[rsp++] = sgn64(" << v << ", "
             << static_cast<int>(t.w) << ");\n";
        else
          os << ind << "reps[rsp++] = (i64)" << v << ";\n";
        break;
      }
      case PInstr::kRepeatTest:
        os << ind << "if (reps[rsp-1] > 0) { --reps[rsp-1]; } else { --rsp; "
           << "goto L" << in.a << "; }\n";
        break;
      case PInstr::kDisplay:
      case PInstr::kDumpFile:
      case PInstr::kDumpVars:
        // Unreachable: codegen_plan refuses designs with system tasks.
        os << ind << "return 1;\n";
        break;
      case PInstr::kHalt:
        os << ind << "return 0;\n";
        break;
    }
    os << "  }\n";
  }
  os << "  return 0;\n}\n\n";
}

// Per-signal static tables shared verbatim by the scalar and packed
// generated sources (masks, widths, array lengths, fanout/trigger flags).
void emit_static_tables(std::ostream& os, const CompiledDesign& cd) {
  const Design& d = *cd.design;
  const std::size_t nsig = d.signals.size();
  const auto bool_table = [&](const char* name, auto pred) {
    os << "static constexpr bool " << name << "[" << nsig << "] = {";
    for (std::size_t i = 0; i < nsig; ++i)
      os << (i ? "," : "") << (pred(i) ? 1 : 0);
    os << "};\n";
  };
  os << "static constexpr u64 kMask[" << nsig << "] = {";
  for (std::size_t i = 0; i < nsig; ++i)
    os << (i ? "," : "") << hx(cd.sig_mask[i]);
  os << "};\n";
  os << "static constexpr int kWidth[" << nsig << "] = {";
  for (std::size_t i = 0; i < nsig; ++i)
    os << (i ? "," : "") << d.signals[i].width;
  os << "};\n";
  os << "static constexpr i64 kALen[" << nsig << "] = {";
  for (std::size_t i = 0; i < nsig; ++i)
    os << (i ? "," : "") << d.signals[i].array_len;
  os << "};\n";
  bool_table("kHasFan", [&](std::size_t i) {
    return cd.fan_index[i] < cd.fan_index[i + 1];
  });
  bool_table("kHasTrig", [&](std::size_t i) {
    return cd.trig_index[i] < cd.trig_index[i + 1];
  });
  os << "\n";
}

// Load-site classification as in compile.cpp: the xL superinstructions are
// reads of val[a] too.
bool tape_reads_scalar(const TOp& o) {
  switch (o.code) {
    case TOp::kLoad:
    case TOp::kLoadSx:
    case TOp::kLoadTr:
    case TOp::kAddL:
    case TOp::kSubL:
    case TOp::kMulL:
    case TOp::kAndL:
    case TOp::kOrL:
    case TOp::kXorL:
    case TOp::kConcatL:
    case TOp::kRangeL:
    case TOp::kLoadShlC:
      return true;
    default:
      return false;
  }
}

// One lane-masked process body for the packed engine. The control-flow
// translation mirrors PackedSim::run_proc instruction by instruction: a
// LIFO stack of (pc, mask) contexts split off by divergent branches, a
// `dispatch` switch that re-enters the goto graph at a dynamic pc, and
// instruction retirement counted as popcount(mask) — the packed oracle's
// exact accounting (pack_test pins the bit-identity, splits included).
void emit_packed_proc(std::ostream& os, const CompiledDesign& cd,
                      std::size_t p) {
  const std::size_t entry = static_cast<std::size_t>(cd.procs[p].entry);
  const std::size_t end = proc_end(cd, p);
  int repeat_depth = 0;
  for (std::size_t pc = entry; pc < end; ++pc)
    if (cd.prog[pc].code == PInstr::kRepeatInit) ++repeat_depth;
  const std::string D = std::to_string(repeat_depth);

  // Contexts hold disjoint non-empty lane sets, so at most kL exist at
  // once and fixed arrays replace the oracle's vector.
  os << "PK_SIMD static int proc" << p << "(St* S, u64 m, i64 budget) {\n"
        "  u64 wk_m[kL]; int wk_pc[kL]; int wsp = 0; int npc = 0;\n"
        "  u64 pl[kL]; u64 ixp[kL];\n"
        "  (void)wk_m; (void)wk_pc; (void)wsp; (void)npc;\n"
        "  (void)pl; (void)ixp; (void)budget;\n";
  if (repeat_depth > 0)
    os << "  i64 reps[kL * " << D << "]; int rsp[kL] = {};\n";
  int tmp = 0;
  const char* ind = "      ";  // tape statements sit inside the lane loop
  for (std::size_t pc = entry; pc < end; ++pc) {
    const PInstr& in = cd.prog[pc];
    const std::string SIG = std::to_string(in.sig);
    const std::string MASK =
        in.sig >= 0 ? hx(cd.sig_mask[static_cast<std::size_t>(in.sig)]) : "";
    const std::string A = std::to_string(in.a);
    // Evaluates a tape for every lane into `dest[l]` (pure, so computing
    // lanes outside the mask is harmless — oracle does the same).
    const auto plane_tape = [&](int tape, const char* dest) {
      os << "    for (int l = 0; l < kL; ++l) {\n";
      const std::string v = emit_tape(os, cd, tape, tmp, ind, true);
      os << "      " << dest << "[l] = " << v << ";\n    }\n";
    };
    os << "  L" << pc << ": S->instrs += popc(m);\n";
    os << "  {\n";
    switch (in.code) {
      case PInstr::kAssign:
        plane_tape(in.t0, "pl");
        os << "    set_masked(S, " << SIG << ", pl, m);\n";
        break;
      case PInstr::kAssignCopy:
        os << "    set_masked(S, " << SIG << ", S->v[" << in.a << "], m);\n";
        break;
      case PInstr::kAssignConst:
        os << "    set_masked_c(S, " << SIG << ", " << hx(in.imm) << ", m);\n";
        break;
      case PInstr::kAssignElem:
        plane_tape(in.t0, "pl");  // value first, then index (kernel order)
        plane_tape(in.t1, "ixp");
        os << "    for (int l = 0; l < kL; ++l)\n"
              "      if ((m >> l) & 1) setel_lane(S, "
           << SIG << ", l, (i64)ixp[l], pl[l]);\n";
        break;
      case PInstr::kAssignBit: {
        plane_tape(in.t0, "pl");
        plane_tape(in.t1, "ixp");
        const int w =
            cd.design->signals[static_cast<std::size_t>(in.sig)].width;
        os << "    const u64* cur = S->v[" << SIG << "];\n"
              "    u64 valid = 0;\n"
              "    for (int l = 0; l < kL; ++l) {\n"
              "      if (!((m >> l) & 1)) continue;\n"
              "      const i64 bi = (i64)ixp[l];\n"
              "      if (bi < 0 || bi >= "
           << w
           << ") continue;\n"
              "      pl[l] = (cur[l] & ~(1ull << bi)) | ((pl[l] & 1ull) << "
              "bi);\n"
              "      valid |= 1ull << l;\n"
              "    }\n"
              "    set_masked(S, "
           << SIG << ", pl, valid);\n";
        break;
      }
      case PInstr::kNb:
        plane_tape(in.t0, "pl");
        os << "    S->nba.push_back(Nba{" << SIG << ", m, push_vals(S, pl, "
           << MASK << "), -1});\n";
        break;
      case PInstr::kNbCopy:
        os << "    S->nba.push_back(Nba{" << SIG << ", m, push_vals(S, S->v["
           << in.a << "], " << MASK << "), -1});\n";
        break;
      case PInstr::kNbConst:
        os << "    for (int l = 0; l < kL; ++l) pl[l] = " << hx(in.imm)
           << ";\n"
              "    S->nba.push_back(Nba{"
           << SIG << ", m, push_vals(S, pl, ~0ull), -1});\n";
        break;
      case PInstr::kNbElem:
        plane_tape(in.t0, "pl");
        os << "    const i64 vo = push_vals(S, pl, " << MASK << ");\n";
        plane_tape(in.t1, "ixp");
        os << "    S->nba.push_back(Nba{" << SIG
           << ", m, vo, push_idx(S, ixp)});\n";
        break;
      case PInstr::kNbBit:
        plane_tape(in.t0, "pl");
        os << "    const i64 vo = push_vals(S, pl, 1ull);\n";
        plane_tape(in.t1, "ixp");
        os << "    S->nba.push_back(Nba{" << SIG
           << ", m, vo, push_idx(S, ixp)});\n";
        break;
      case PInstr::kJump:
        // Backward jumps carry the aggregate (lane-summed) budget check;
        // the budget arrives pre-scaled by the lane count.
        if (in.a <= static_cast<std::int32_t>(pc))
          os << "    if (S->instrs - S->slot_base > budget) return 1;\n";
        os << "    goto L" << in.a << ";\n";
        break;
      case PInstr::kJumpIfFalse: {
        os << "    u64 tk = 0;\n"
              "    for (int l = 0; l < kL; ++l) {\n";
        const std::string c = emit_tape(os, cd, in.t0, tmp, ind, true);
        os << "      tk |= (u64)(" << c
           << " == 0) << l;\n"
              "    }\n"
              "    tk &= m;\n"
              "    if (tk == m) goto L"
           << in.a
           << ";\n"
              "    if (tk != 0) { ++S->div_splits; wk_pc[wsp] = "
           << A << "; wk_m[wsp] = tk; ++wsp; m &= ~tk; }\n";
        break;
      }
      case PInstr::kJumpIfFalseSig:
        os << "    u64 tk = 0;\n"
              "    const u64* s = S->v["
           << SIG
           << "];\n"
              "    for (int l = 0; l < kL; ++l) tk |= (u64)(s[l] == 0) << "
              "l;\n"
              "    tk &= m;\n"
              "    if (tk == m) goto L"
           << in.a
           << ";\n"
              "    if (tk != 0) { ++S->div_splits; wk_pc[wsp] = "
           << A << "; wk_m[wsp] = tk; ++wsp; m &= ~tk; }\n";
        break;
      case PInstr::kCaseJump:
        // Lockstep fast path dispatches all lanes in one shot (no split
        // counted); otherwise lanes group by target in first-seen order
        // and groups 1..n-1 stack up, exactly as the oracle.
        os << "    const u64* s = S->v[" << SIG
           << "];\n"
              "    const u64 s0 = s[__builtin_ctzll(m)];\n"
              "    bool lock = true;\n"
              "    for (int l = 0; l < kL; ++l) lock &= (s[l] == s0) | "
              "!((m >> l) & 1);\n"
              "    if (lock) { npc = case_t"
           << in.a
           << "(s0); goto dispatch; }\n"
              "    int gpc[kL]; u64 gm[kL]; int ng = 0;\n"
              "    for (int l = 0; l < kL; ++l) {\n"
              "      if (!((m >> l) & 1)) continue;\n"
              "      const int tpc = case_t"
           << in.a
           << "(s[l]);\n"
              "      int g = 0;\n"
              "      while (g < ng && gpc[g] != tpc) ++g;\n"
              "      if (g == ng) { gpc[ng] = tpc; gm[ng] = 0; ++ng; }\n"
              "      gm[g] |= 1ull << l;\n"
              "    }\n"
              "    S->div_splits += ng - 1;\n"
              "    for (int g = 1; g < ng; ++g) { wk_pc[wsp] = gpc[g]; "
              "wk_m[wsp] = gm[g]; ++wsp; }\n"
              "    m = gm[0];\n"
              "    npc = gpc[0];\n"
              "    goto dispatch;\n";
        break;
      case PInstr::kRepeatInit: {
        const TapeRef& t = cd.tapes[static_cast<std::size_t>(in.t0)];
        os << "    for (int l = 0; l < kL; ++l) {\n";
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind, true);
        os << "      if ((m >> l) & 1) reps[l * " << D << " + rsp[l]++] = ";
        if (t.sgn)
          os << "sgn64(" << v << ", " << static_cast<int>(t.w) << ");\n";
        else
          os << "(i64)" << v << ";\n";
        os << "    }\n";
        break;
      }
      case PInstr::kRepeatTest:
        os << "    u64 cont = 0;\n"
              "    for (int l = 0; l < kL; ++l) {\n"
              "      if (!((m >> l) & 1)) continue;\n"
              "      i64& bk = reps[l * "
           << D
           << " + rsp[l] - 1];\n"
              "      if (bk > 0) { --bk; cont |= 1ull << l; } else { "
              "--rsp[l]; }\n"
              "    }\n"
              "    const u64 ex = m & ~cont;\n"
              "    if (ex == m) goto L"
           << in.a
           << ";\n"
              "    if (ex != 0) { ++S->div_splits; wk_pc[wsp] = "
           << A << "; wk_m[wsp] = ex; ++wsp; m = cont; }\n";
        break;
      case PInstr::kDisplay:
      case PInstr::kDumpFile:
      case PInstr::kDumpVars:
        // Unreachable: packed_codegen_plan refuses such plans.
        os << "    return 1;\n";
        break;
      case PInstr::kHalt:
        os << "    if (wsp == 0) return 0;\n"
              "    --wsp; npc = wk_pc[wsp]; m = wk_m[wsp]; goto dispatch;\n";
        break;
    }
    os << "  }\n";
  }
  os << "  dispatch:\n  switch (npc) {\n";
  for (std::size_t pc = entry; pc < end; ++pc)
    os << "    case " << pc << ": goto L" << pc << ";\n";
  os << "    default: return 0;\n  }\n}\n\n";
}

}  // namespace

std::string codegen_source(const CompiledDesign& cd) {
  const Design& d = *cd.design;
  const std::size_t nsig = d.signals.size();
  const std::size_t nproc = cd.procs.size();
  std::ostringstream os;

  os << "// Generated by hlsw vsim codegen; compiled and dlopen()ed at\n"
        "// runtime. One translation unit per design fingerprint.\n"
        "#include <cstddef>\n#include <cstdint>\n#include <vector>\n"
        "namespace {\n"
        "typedef std::uint64_t u64;\ntypedef long long i64;\n"
        "inline u64 um(int w) { return w >= 64 ? ~0ull : (1ull << w) - 1ull; "
        "}\n"
        "inline i64 sgn64(u64 v, int w) { if (w < 64 && ((v >> (w - 1)) & "
        "1)) v |= ~um(w); return (i64)v; }\n"
        "inline u64 sx(u64 v, int w) { if ((v >> (w - 1)) & 1) v |= ~um(w); "
        "return v; }\n"
        "inline u64 tosgn(u64 v, int w) { if (w < 64 && ((v >> (w - 1)) & "
        "1)) v |= ~um(w); return v; }\n"
        "inline u64 ldel(const u64* A, i64 n, i64 i) { return (i >= 0 && i < "
        "n) ? A[(std::size_t)i] : 0; }\n"
        "inline u64 bitsel(u64 base, i64 i, int w) { return (i >= 0 && i < "
        "w) ? (base >> i) & 1 : 0; }\n"
        "inline u64 divs(u64 a, u64 b, int w, u64 imm) { const i64 sa = "
        "sgn64(a, w), sb = sgn64(b, w); u64 r; if (sb == 0) r = 0; else if "
        "(sb == -1) r = 0 - a; else r = (u64)(sa / sb); return r & imm; }\n"
        "inline u64 mods(u64 a, u64 b, int w, u64 imm) { const i64 sa = "
        "sgn64(a, w), sb = sgn64(b, w); u64 r; if (sb == 0 || sb == -1) r = "
        "0; else r = (u64)(sa % sb); return r & imm; }\n"
        "inline u64 repl(u64 kv, int w, int n) { u64 v = 0; for (int i = 0; "
        "i < n; ++i) v = (v << w) | kv; return v; }\n\n";

  emit_static_tables(os, cd);

  // Engine state. Array signals are fixed-size members (lengths are design
  // constants); everything zero-initializes except where create() applies
  // declared init values.
  os << "struct Nba { std::int32_t sig; i64 index; u64 value; };\n";
  os << "struct St {\n  u64 v[" << nsig << "] = {};\n";
  for (std::size_t i = 0; i < nsig; ++i)
    if (d.signals[i].array_len > 0)
      os << "  u64 a" << i << "[" << d.signals[i].array_len << "] = {};\n";
  os << "  std::vector<Nba> nba, nba_scratch;\n"
     << "  unsigned char ready[" << std::max<std::size_t>(nproc, 1)
     << "] = {};\n"
     << "  int ready_count = 0;\n"
     << "  bool comb_dirty = true;\n"
     << "  i64 events = 0, nba_commits = 0, delta_cycles = 0, instrs = 0;\n"
     << "  i64 flushes = 0, slot_base = 0;\n"
     << "};\n\n";

  // Runtime array lookup (NBA element commits and host element peeks reach
  // arrays by signal index).
  os << "static u64* arrp(St* S, int sig) {\n  switch (sig) {\n";
  for (std::size_t i = 0; i < nsig; ++i)
    if (d.signals[i].array_len > 0)
      os << "    case " << i << ": return S->a" << i << ";\n";
  os << "    default: return nullptr;\n  }\n}\n\n";

  os << "inline void rdy(St* S, int p) {\n"
        "  if (!S->ready[p]) { S->ready[p] = 1; ++S->ready_count; }\n"
        "}\n\n";

  // Edge triggers, statically enumerated per signal. `self` is the running
  // process (or -1): a process cannot re-arm itself, matching the event
  // kernel where a thread is not edge-waiting while it executes.
  os << "static void trig(St* S, int sig, u64 o, u64 n, int self) {\n"
        "  const bool pos = !(o & 1) && (n & 1);\n"
        "  const bool neg = (o & 1) && !(n & 1);\n"
        "  (void)pos; (void)neg;\n"
        "  switch (sig) {\n";
  for (std::size_t i = 0; i < nsig; ++i) {
    const auto b = cd.trig_index[i], e = cd.trig_index[i + 1];
    if (b == e) continue;
    os << "    case " << i << ":\n";
    for (auto k = b; k < e; ++k) {
      const auto& t = cd.trigs[static_cast<std::size_t>(k)];
      os << "      if (self != " << t.proc;
      if (t.edge == Edge::kPos)
        os << " && pos";
      else if (t.edge == Edge::kNeg)
        os << " && neg";
      os << ") rdy(S, " << t.proc << ");\n";
    }
    os << "      break;\n";
  }
  os << "    default: break;\n  }\n}\n\n";

  // The one scalar write path: mask, change-detect, count, dirty the comb
  // flush when the signal has fanout, fire triggers. Call sites with a
  // constant `sig` fold the table lookups away.
  os << "inline void set_sig(St* S, int sig, u64 nv, int self) {\n"
        "  nv &= kMask[sig];\n"
        "  const u64 old = S->v[sig];\n"
        "  if (old == nv) return;\n"
        "  S->v[sig] = nv;\n"
        "  ++S->events;\n"
        "  if (kHasFan[sig]) S->comb_dirty = true;\n"
        "  if (kHasTrig[sig]) trig(S, sig, old, nv, self);\n"
        "}\n\n"
        "inline void setel(St* S, int sig, i64 idx, u64 v) {\n"
        "  u64* A = arrp(S, sig);\n"
        "  if (!A || idx < 0 || idx >= kALen[sig]) return;\n"
        "  v &= kMask[sig];\n"
        "  if (A[idx] == v) return;\n"
        "  A[idx] = v;\n"
        "  ++S->events;\n"
        "  // element writes never wake edge waits (kernel parity)\n"
        "  if (kHasFan[sig]) S->comb_dirty = true;\n"
        "}\n\n";

  // Full comb flush: every node in level order, straight-line, from the
  // ORIGINAL tapes (reference semantics — fused exec tapes would duplicate
  // spliced producers). Re-evaluating unchanged cones is idempotent and
  // change detection in set_sig keeps the event counts identical to the
  // gated interpreter. Lazy nodes (observed by nothing) are plain stores:
  // no events, no triggers, exactly like the interpreter's force_lazy.
  {
    std::vector<std::size_t> order(cd.nodes.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return cd.nodes[a].level < cd.nodes[b].level;
                     });
    os << "static void flush(St* S) {\n  ++S->flushes;\n";
    int tmp = 0;
    for (const std::size_t n : order) {
      const CompiledDesign::Node& nd = cd.nodes[n];
      os << "  { // node " << n << " level " << nd.level << " -> "
         << d.signals[static_cast<std::size_t>(nd.target)].name << "\n";
      const std::string v = emit_tape(os, cd, nd.tape, tmp, "    ");
      if (cd.node_lazy[n])
        os << "    S->v[" << nd.target << "] = " << v << " & "
           << hx(cd.sig_mask[static_cast<std::size_t>(nd.target)]) << ";\n";
      else
        os << "    set_sig(S, " << nd.target << ", " << v << ", -1);\n";
      os << "  }\n";
    }
    os << "}\n\n";
  }

  for (std::size_t p = 0; p < nproc; ++p) emit_proc(os, cd, p);

  os << "static int run_proc(St* S, int p, i64 budget) {\n"
        "  S->ready[p] = 0;\n  --S->ready_count;\n  int r = 0;\n"
        "  switch (p) {\n";
  for (std::size_t p = 0; p < nproc; ++p)
    os << "    case " << p << ": r = proc" << p << "(S, budget); break;\n";
  os << "    default: break;\n  }\n"
        "  return r ? static_cast<int>(p) + 1 : 0;\n}\n\n";

  os << "static void commit_nba(St* S) {\n"
        "  S->nba_scratch.clear();\n  S->nba_scratch.swap(S->nba);\n"
        "  S->nba_commits += (i64)S->nba_scratch.size();\n"
        "  for (const Nba& e : S->nba_scratch) {\n"
        "    if (kALen[e.sig] > 0) {\n"
        "      setel(S, e.sig, e.index, e.value);\n"
        "    } else if (e.index >= 0) {  // nonblocking bit write, RMW\n"
        "      if (e.index < kWidth[e.sig]) {\n"
        "        const u64 old = S->v[e.sig];\n"
        "        set_sig(S, e.sig, (old & ~(1ull << e.index)) | ((e.value & "
        "1ull) << e.index), -1);\n"
        "      }\n"
        "    } else {\n"
        "      set_sig(S, e.sig, e.value, -1);\n"
        "    }\n"
        "  }\n}\n\n";

  os << "static int settle(St* S, i64 budget) {\n"
        "  S->slot_base = S->instrs;\n"
        "  for (;;) {\n"
        // Clear AFTER the flush: one level-ordered pass over a pure DAG is
        // a fixpoint, so the dirty bits the flush's own stores raise would
        // only buy a redundant full re-evaluation.
        "    if (S->comb_dirty) { flush(S); S->comb_dirty = false; }\n"
        "    if (S->ready_count > 0) {\n"
        "      int p = 0;\n"
        "      while (!S->ready[p]) ++p;\n"
        "      const int r = run_proc(S, p, budget);\n"
        "      if (r) return r;\n"
        "      continue;\n"
        "    }\n"
        "    if (S->nba.empty()) break;\n"
        "    commit_nba(S);\n"
        "    ++S->delta_cycles;\n"
        "  }\n"
        "  return 0;\n}\n"
        "}  // namespace\n\n";

  // ABI. Keep in sync with CodegenModule (codegen.h); bump kCgAbi there
  // when anything below changes shape.
  os << "extern \"C\" {\n"
        "int hlsw_cg_abi() { return 2; }\n"
        "void* hlsw_cg_create() {\n  St* s = new St();\n";
  for (std::size_t i = 0; i < nsig; ++i)
    if (d.signals[i].array_len == 0 && d.signals[i].has_init)
      os << "  s->v[" << i << "] = "
         << hx(static_cast<std::uint64_t>(d.signals[i].init) & cd.sig_mask[i])
         << ";\n";
  for (std::size_t p = 0; p < nproc; ++p)
    if (cd.procs[p].initially_ready)
      os << "  s->ready[" << p << "] = 1;\n  ++s->ready_count;\n";
  os << "  return s;\n}\n"
        "void hlsw_cg_destroy(void* p) { delete (St*)p; }\n"
        "void hlsw_cg_poke(void* p, int sig, u64 v) { set_sig((St*)p, sig, "
        "v, -1); }\n"
        "u64 hlsw_cg_peek(void* p, int sig) { return ((St*)p)->v[sig]; }\n"
        "u64 hlsw_cg_peek_elem(void* p, int sig, int idx) {\n"
        "  const u64* A = arrp((St*)p, sig);\n"
        "  return A ? A[idx] : 0;\n}\n"
        "int hlsw_cg_settle(void* p, long long budget) { return "
        "settle((St*)p, budget); }\n"
        "void hlsw_cg_stats(void* p, long long* out) {\n"
        "  const St* s = (const St*)p;\n"
        "  out[0] = s->events; out[1] = s->nba_commits;\n"
        "  out[2] = s->delta_cycles; out[3] = s->instrs; out[4] = "
        "s->flushes;\n}\n"
        "}\n";
  return os.str();
}

std::string packed_codegen_source(const CompiledDesign& cd, int lanes) {
  const Design& d = *cd.design;
  const std::size_t nsig = d.signals.size();
  const std::size_t nproc = cd.procs.size();
  const std::uint64_t full =
      lanes == 64 ? ~0ULL : (1ULL << lanes) - 1ULL;
  std::ostringstream os;

  // The lane count is part of the generated text (kL below), so every
  // (design, lanes) pair gets its own fingerprint — and the hlsw_cg_pk_*
  // symbols keep packed artifacts from ever aliasing scalar ones.
  os << "// Generated by hlsw vsim packed codegen (lane-major engine, "
     << lanes
     << " lanes);\n"
        "// compiled and dlopen()ed at runtime. One translation unit per\n"
        "// (design fingerprint, lane count).\n"
        "#include <cstddef>\n#include <cstdint>\n#include <vector>\n"
        "// The generated object is always compiled uninstrumented by the\n"
        "// host toolchain, so the ifunc resolvers target_clones emits are\n"
        "// safe even when the loading process runs under ThreadSanitizer\n"
        "// (unlike pack.cpp, which must guard its own attribute).\n"
        "#ifndef __has_attribute\n#define __has_attribute(x) 0\n#endif\n"
        "#if defined(__x86_64__) && defined(__ELF__) && "
        "__has_attribute(target_clones)\n"
        "#define PK_SIMD __attribute__((target_clones(\"default\", "
        "\"arch=x86-64-v3\", \"arch=x86-64-v4\")))\n"
        "#else\n#define PK_SIMD\n#endif\n"
        "namespace {\n"
        "typedef std::uint64_t u64;\ntypedef long long i64;\n"
        "constexpr int kL = "
     << lanes
     << ";\n"
        "constexpr u64 kFull = "
     << hx(full)
     << ";\n"
        "inline u64 um(int w) { return w >= 64 ? ~0ull : (1ull << w) - 1ull; "
        "}\n"
        "inline i64 sgn64(u64 v, int w) { if (w < 64 && ((v >> (w - 1)) & "
        "1)) v |= ~um(w); return (i64)v; }\n"
        "inline u64 sx(u64 v, int w) { if ((v >> (w - 1)) & 1) v |= ~um(w); "
        "return v; }\n"
        "inline u64 tosgn(u64 v, int w) { if (w < 64 && ((v >> (w - 1)) & "
        "1)) v |= ~um(w); return v; }\n"
        "inline u64 ldel(const u64* A, i64 n, i64 i, int l) { return (i >= 0 "
        "&& i < n) ? A[(std::size_t)i * kL + l] : 0; }\n"
        "inline u64 bitsel(u64 base, i64 i, int w) { return (i >= 0 && i < "
        "w) ? (base >> i) & 1 : 0; }\n"
        "inline u64 divs(u64 a, u64 b, int w, u64 imm) { const i64 sa = "
        "sgn64(a, w), sb = sgn64(b, w); u64 r; if (sb == 0) r = 0; else if "
        "(sb == -1) r = 0 - a; else r = (u64)(sa / sb); return r & imm; }\n"
        "inline u64 mods(u64 a, u64 b, int w, u64 imm) { const i64 sa = "
        "sgn64(a, w), sb = sgn64(b, w); u64 r; if (sb == 0 || sb == -1) r = "
        "0; else r = (u64)(sa % sb); return r & imm; }\n"
        "inline u64 repl(u64 kv, int w, int n) { u64 v = 0; for (int i = 0; "
        "i < n; ++i) v = (v << w) | kv; return v; }\n"
        "inline int popc(u64 m) { return __builtin_popcountll(m); }\n\n";

  emit_static_tables(os, cd);

  // Comb activity gating, as in the interpreted oracle: the fan CSR maps a
  // changed signal to the eager nodes that must re-evaluate (lazy nodes are
  // excluded by construction — they re-run at peek, below), and kLazyOf
  // names the lazy node driving a signal so the peek entry points can force
  // it on demand.
  const std::size_t nnodes = cd.nodes.size();
  os << "constexpr int kNN = " << std::max<std::size_t>(nnodes, 1) << ";\n";
  os << "static constexpr std::int32_t kFanIdx[" << (nsig + 1) << "] = {";
  for (std::size_t i = 0; i <= nsig; ++i)
    os << (i ? "," : "") << cd.fan_index[i];
  os << "};\n";
  os << "static constexpr std::int32_t kFanNodes["
     << std::max<std::size_t>(cd.fan_nodes.size(), 1) << "] = {";
  if (cd.fan_nodes.empty()) {
    os << "0";
  } else {
    for (std::size_t i = 0; i < cd.fan_nodes.size(); ++i)
      os << (i ? "," : "") << cd.fan_nodes[i];
  }
  os << "};\n";
  os << "static constexpr std::int32_t kLazyOf[" << nsig << "] = {";
  for (std::size_t i = 0; i < nsig; ++i) {
    const std::int32_t n = cd.node_of[i];
    const bool lazy =
        n >= 0 && cd.node_lazy[static_cast<std::size_t>(n)] != 0;
    os << (i ? "," : "") << (lazy ? n : -1);
  }
  os << "};\n\n";

  // Engine state: one kL-lane plane per signal (2D so runtime-sig paths
  // like set_masked index rows), lane-major arrays, lane-mask ready bits
  // and the double-buffered NBA queue with plane arenas — PackedSim's
  // layout with every extent baked.
  os << "struct Nba { std::int32_t sig; u64 mask; i64 vofs; i64 iofs; };\n";
  os << "struct St {\n  u64 v[" << nsig << "][kL] = {};\n";
  for (std::size_t i = 0; i < nsig; ++i)
    if (d.signals[i].array_len > 0)
      os << "  u64 a" << i << "[" << d.signals[i].array_len
         << " * kL] = {};\n";
  os << "  std::vector<Nba> nba, nba_scratch;\n"
        "  std::vector<u64> nvals, nvals_s;\n"
        "  std::vector<i64> nidx, nidx_s;\n"
        "  u64 ready["
     << std::max<std::size_t>(nproc, 1)
     << "] = {};\n"
        "  u64 scratch[kL] = {};\n"
        "  int running = -1;\n"
        "  bool comb_dirty = true;\n"
        // Zero = dirty: the first flush evaluates every eager node, as the
        // oracle's constructor marks all non-lazy nodes pending.
        "  unsigned char nclean[kNN] = {};\n"
        "  i64 events = 0, nba_commits = 0, delta_cycles = 0, instrs = 0;\n"
        "  i64 flushes = 0, div_splits = 0, slot_base = 0;\n"
        "};\n\n";

  os << "static u64* arrp(St* S, int sig) {\n  switch (sig) {\n";
  for (std::size_t i = 0; i < nsig; ++i)
    if (d.signals[i].array_len > 0)
      os << "    case " << i << ": return S->a" << i << ";\n";
  os << "    default: return nullptr;\n  }\n}\n\n";

  // Edge triggers: the running process's own writes never re-arm it (every
  // changed lane lies inside its context mask, as in the oracle).
  os << "static void trig(St* S, int sig, u64 ch, u64 pos, u64 neg) {\n"
        "  (void)ch; (void)pos; (void)neg;\n"
        "  switch (sig) {\n";
  for (std::size_t i = 0; i < nsig; ++i) {
    const auto b = cd.trig_index[i], e = cd.trig_index[i + 1];
    if (b == e) continue;
    os << "    case " << i << ":\n";
    for (auto k = b; k < e; ++k) {
      const auto& t = cd.trigs[static_cast<std::size_t>(k)];
      const char* edge = t.edge == Edge::kAny
                             ? "ch"
                             : (t.edge == Edge::kPos ? "pos" : "neg");
      os << "      if (S->running != " << t.proc << ") S->ready[" << t.proc
         << "] |= " << edge << ";\n";
    }
    os << "      break;\n";
  }
  os << "    default: break;\n  }\n}\n\n";

  // Dirty the changed signal's dependent eager nodes (the oracle's
  // mark_fanout): flush then re-evaluates only those.
  os << "static void mark_fan(St* S, int sig) {\n"
        "  for (std::int32_t i = kFanIdx[sig]; i < kFanIdx[sig + 1]; ++i)\n"
        "    S->nclean[kFanNodes[i]] = 0;\n"
        "}\n\n";

  // The one lane-masked write path — branchless full-context fast path,
  // guarded partial path, popcount event accounting, bit-0 edge masks.
  os << "PK_SIMD static void set_masked(St* S, int sig, const u64* nv, u64 "
        "mask) {\n"
        "  if (mask == 0) return;\n"
        "  const u64 sm = kMask[sig];\n"
        "  u64* v = S->v[sig];\n"
        "  u64 ch = 0, pos = 0, neg = 0;\n"
        "  if (mask == kFull) {\n"
        "    for (int l = 0; l < kL; ++l) {\n"
        "      const u64 n = nv[l] & sm;\n"
        "      const u64 o = v[l];\n"
        "      v[l] = n;\n"
        "      ch |= (u64)(o != n) << l;\n"
        "      pos |= ((~o & n) & 1) << l;\n"
        "      neg |= ((o & ~n) & 1) << l;\n"
        "    }\n"
        "  } else {\n"
        "    for (int l = 0; l < kL; ++l) {\n"
        "      if (!((mask >> l) & 1)) continue;\n"
        "      const u64 n = nv[l] & sm;\n"
        "      const u64 o = v[l];\n"
        "      if (o == n) continue;\n"
        "      v[l] = n;\n"
        "      const u64 bit = 1ull << l;\n"
        "      ch |= bit;\n"
        "      if (!(o & 1) && (n & 1)) pos |= bit;\n"
        "      if ((o & 1) && !(n & 1)) neg |= bit;\n"
        "    }\n"
        "  }\n"
        "  if (ch == 0) return;\n"
        "  S->events += popc(ch);\n"
        "  if (kHasFan[sig]) { S->comb_dirty = true; mark_fan(S, sig); }\n"
        "  if (kHasTrig[sig]) trig(S, sig, ch, pos, neg);\n"
        "}\n\n"
        "static void set_masked_c(St* S, int sig, u64 nv, u64 mask) {\n"
        "  u64 p[kL];\n"
        "  for (int l = 0; l < kL; ++l) p[l] = nv;\n"
        "  set_masked(S, sig, p, mask);\n"
        "}\n\n"
        "static void setel_lane(St* S, int sig, int l, i64 idx, u64 v) {\n"
        "  if (idx < 0 || idx >= kALen[sig]) return;  // silent drop\n"
        "  v &= kMask[sig];\n"
        "  u64* A = arrp(S, sig);\n"
        "  u64& slot = A[(std::size_t)idx * kL + l];\n"
        "  if (slot == v) return;\n"
        "  slot = v;\n"
        "  ++S->events;\n"
        "  // element writes never wake edge waits (kernel parity)\n"
        "  if (kHasFan[sig]) { S->comb_dirty = true; mark_fan(S, sig); }\n"
        "}\n\n"
        "static i64 push_vals(St* S, const u64* v, u64 pm) {\n"
        "  const i64 ofs = (i64)S->nvals.size();\n"
        "  for (int l = 0; l < kL; ++l) S->nvals.push_back(v[l] & pm);\n"
        "  return ofs;\n"
        "}\n"
        "static i64 push_idx(St* S, const u64* v) {\n"
        "  const i64 ofs = (i64)S->nidx.size();\n"
        "  for (int l = 0; l < kL; ++l) S->nidx.push_back((i64)v[l]);\n"
        "  return ofs;\n"
        "}\n\n";

  // Activity-gated comb flush in level order, the oracle's flush_comb with
  // the level queues compiled away: each eager node is emitted in level
  // order behind its own dirty bit, evaluates its FUSED exec_tape (lazy
  // single-reader cones inlined, exactly what the interpreter runs) as a
  // branchless full-mask lane loop, and on change marks its dependents —
  // which sit strictly later in the emitted order, so one pass reaches the
  // fixpoint. Lazy nodes are absent here entirely: like the oracle they
  // re-run on demand at the peek entry points (force_lazy below), which is
  // what lets a 64-lane flush skip the majority of the node list.
  {
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < cd.nodes.size(); ++i)
      if (!cd.node_lazy[i]) order.push_back(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return cd.nodes[a].level < cd.nodes[b].level;
                     });
    os << "PK_SIMD static void flush(St* S) {\n  ++S->flushes;\n";
    int tmp = 0;
    for (const std::size_t n : order) {
      const CompiledDesign::Node& nd = cd.nodes[n];
      const std::string SM =
          hx(cd.sig_mask[static_cast<std::size_t>(nd.target)]);
      const bool has_fan =
          cd.fan_index[static_cast<std::size_t>(nd.target)] <
          cd.fan_index[static_cast<std::size_t>(nd.target) + 1];
      const bool has_trig =
          cd.trig_index[static_cast<std::size_t>(nd.target)] <
          cd.trig_index[static_cast<std::size_t>(nd.target) + 1];
      os << "  if (!S->nclean[" << n << "]) { // node " << n << " level "
         << nd.level << " -> "
         << d.signals[static_cast<std::size_t>(nd.target)].name << "\n"
         << "    S->nclean[" << n
         << "] = 1;\n"
            "    u64* v = S->v["
         << nd.target
         << "];\n"
            "    u64 ch = 0, pos = 0, neg = 0;\n"
            "    (void)pos; (void)neg;\n"
            "    for (int l = 0; l < kL; ++l) {\n";
      const std::string v =
          emit_tape(os, cd, nd.exec_tape, tmp, "      ", true);
      os << "      const u64 n = " << v << " & " << SM
         << ";\n"
            "      const u64 o = v[l];\n"
            "      v[l] = n;\n"
            "      ch |= (u64)(o != n) << l;\n"
            "      pos |= ((~o & n) & 1) << l;\n"
            "      neg |= ((o & ~n) & 1) << l;\n"
            "    }\n"
            "    if (ch) {\n"
            "      S->events += popc(ch);\n";
      if (has_fan)
        os << "      S->comb_dirty = true;\n"
              "      mark_fan(S, "
           << nd.target << ");\n";
      if (has_trig)
        os << "      trig(S, " << nd.target << ", ch, pos, neg);\n";
      os << "    }\n  }\n";
    }
    os << "}\n\n";
  }

  // On-demand lazy evaluation at the observation boundary, mirroring
  // PackedSim::force_lazy: lazy scalar reads inside the tape force their
  // own lazy driver first (the dependency set is static, so the recursion
  // is unrolled per case), then the ORIGINAL tape runs as a plain masked
  // store — no events, no triggers, no fanout (logical const).
  {
    os << "static void force_lazy(St* S, int n) {\n  switch (n) {\n";
    int tmp = 0;
    for (std::size_t n = 0; n < cd.nodes.size(); ++n) {
      if (!cd.node_lazy[n]) continue;
      const CompiledDesign::Node& nd = cd.nodes[n];
      os << "    case " << n << ": { // -> "
         << d.signals[static_cast<std::size_t>(nd.target)].name << "\n";
      const TapeRef& t = cd.tapes[static_cast<std::size_t>(nd.tape)];
      std::vector<std::int32_t> deps;
      for (std::uint32_t i = t.begin; i < t.begin + t.len; ++i) {
        const TOp& o = cd.ops[i];
        if (!tape_reads_scalar(o)) continue;
        const std::int32_t m = cd.node_of[static_cast<std::size_t>(o.a)];
        if (m < 0 || !cd.node_lazy[static_cast<std::size_t>(m)]) continue;
        if (std::find(deps.begin(), deps.end(), m) == deps.end())
          deps.push_back(m);
      }
      for (const std::int32_t m : deps)
        os << "      force_lazy(S, " << m << ");\n";
      os << "      u64* v = S->v[" << nd.target
         << "];\n"
            "      for (int l = 0; l < kL; ++l) {\n";
      const std::string v = emit_tape(os, cd, nd.tape, tmp, "        ", true);
      os << "        v[l] = " << v << " & "
         << hx(cd.sig_mask[static_cast<std::size_t>(nd.target)])
         << ";\n      }\n      break;\n    }\n";
    }
    os << "    default: break;\n  }\n}\n\n";
  }

  for (std::size_t t = 0; t < cd.case_tables.size(); ++t) {
    const CompiledDesign::CaseTable& ct = cd.case_tables[t];
    os << "static int case_t" << t << "(u64 v) {\n  switch (v) {\n";
    for (const auto& [val, target] : ct.arms)
      os << "    case " << hx(val) << ": return " << target << ";\n";
    os << "    default: return " << ct.def_pc << ";\n  }\n}\n";
  }
  if (!cd.case_tables.empty()) os << "\n";

  for (std::size_t p = 0; p < nproc; ++p) emit_packed_proc(os, cd, p);

  os << "static int run_proc(St* S, int p, u64 m, i64 budget) {\n"
        "  S->running = p;\n  int r = 0;\n"
        "  switch (p) {\n";
  for (std::size_t p = 0; p < nproc; ++p)
    os << "    case " << p << ": r = proc" << p << "(S, m, budget); break;\n";
  os << "    default: break;\n  }\n"
        "  S->running = -1;\n"
        "  return r ? p + 1 : 0;\n}\n\n";

  os << "PK_SIMD static void commit_nba(St* S) {\n"
        "  S->nba_scratch.clear();\n  S->nba_scratch.swap(S->nba);\n"
        "  S->nvals_s.clear();\n  S->nvals_s.swap(S->nvals);\n"
        "  S->nidx_s.clear();\n  S->nidx_s.swap(S->nidx);\n"
        "  for (const Nba& e : S->nba_scratch) {\n"
        "    S->nba_commits += popc(e.mask);\n"
        "    const u64* v = S->nvals_s.data() + e.vofs;\n"
        "    if (kALen[e.sig] > 0) {\n"
        "      const i64* ix = S->nidx_s.data() + e.iofs;\n"
        "      const u64 sm = kMask[e.sig];\n"
        "      const i64 n = kALen[e.sig];\n"
        "      u64* A = arrp(S, e.sig);\n"
        "      bool changed = false;\n"
        "      for (int l = 0; l < kL; ++l) {\n"
        "        if (!((e.mask >> l) & 1)) continue;\n"
        "        const i64 idx = ix[l];\n"
        "        if (idx < 0 || idx >= n) continue;  // silent drop\n"
        "        const u64 nv = v[l] & sm;\n"
        "        u64& slot = A[(std::size_t)idx * kL + l];\n"
        "        if (slot == nv) continue;\n"
        "        slot = nv;\n"
        "        ++S->events;\n"
        "        changed = true;\n"
        "      }\n"
        "      if (changed && kHasFan[e.sig]) {\n"
        "        S->comb_dirty = true;\n"
        "        mark_fan(S, e.sig);\n"
        "      }\n"
        "    } else if (e.iofs >= 0) {  // nonblocking bit write, RMW\n"
        "      const i64* ix = S->nidx_s.data() + e.iofs;\n"
        "      u64* nv = S->scratch;\n"
        "      const u64* cur = S->v[e.sig];\n"
        "      u64 bit_mask = 0, neg_mask = 0;\n"
        "      for (int l = 0; l < kL; ++l) {\n"
        "        if (!((e.mask >> l) & 1)) continue;\n"
        "        if (ix[l] < 0) {\n"
        "          neg_mask |= 1ull << l;\n"
        "        } else if (ix[l] < kWidth[e.sig]) {\n"
        "          nv[l] = (cur[l] & ~(1ull << ix[l])) | ((v[l] & 1ull) << "
        "ix[l]);\n"
        "          bit_mask |= 1ull << l;\n"
        "        }\n"
        "      }\n"
        "      if (neg_mask) set_masked(S, e.sig, v, neg_mask);\n"
        "      if (bit_mask) set_masked(S, e.sig, nv, bit_mask);\n"
        "    } else {\n"
        "      set_masked(S, e.sig, v, e.mask);\n"
        "    }\n"
        "  }\n}\n\n";

  os << "static int settle(St* S, i64 budget) {\n"
        "  S->slot_base = S->instrs;\n"
        "  for (;;) {\n"
        // Clear AFTER the flush, as the scalar engine: one level-ordered
        // pass over a pure DAG is a fixpoint.
        "    if (S->comb_dirty) { flush(S); S->comb_dirty = false; }\n"
        "    int p = -1;\n"
        "    for (int i = 0; i < "
     << nproc
     << "; ++i)\n"
        "      if (S->ready[i] != 0) { p = i; break; }\n"
        "    if (p >= 0) {\n"
        "      const u64 rm = S->ready[p];\n"
        "      S->ready[p] = 0;\n"
        "      const int r = run_proc(S, p, rm, budget);\n"
        "      if (r) return r;\n"
        "      continue;\n"
        "    }\n"
        "    if (S->nba.empty()) break;\n"
        "    commit_nba(S);\n"
        "    ++S->delta_cycles;\n"
        "  }\n"
        "  return 0;\n}\n"
        "}  // namespace\n\n";

  // ABI. Keep in sync with PackedCodegenModule (codegen.h); the shared
  // hlsw_cg_abi/hlsw_cg_fp pair is what open_and_verify checks for both
  // scalar and packed artifacts.
  os << "extern \"C\" {\n"
        "int hlsw_cg_abi() { return 2; }\n"
        "int hlsw_cg_pk_lanes() { return kL; }\n"
        "void* hlsw_cg_pk_create() {\n  St* s = new St();\n";
  for (std::size_t i = 0; i < nsig; ++i)
    if (d.signals[i].array_len == 0 && d.signals[i].has_init)
      os << "  for (int l = 0; l < kL; ++l) s->v[" << i << "][l] = "
         << hx(static_cast<std::uint64_t>(d.signals[i].init) & cd.sig_mask[i])
         << ";\n";
  for (std::size_t p = 0; p < nproc; ++p)
    if (cd.procs[p].initially_ready)
      os << "  s->ready[" << p << "] = kFull;\n";
  os << "  return s;\n}\n"
        "void hlsw_cg_pk_destroy(void* p) { delete (St*)p; }\n"
        "void hlsw_cg_pk_poke(void* p, int sig, u64 v, u64 mask) {\n"
        "  set_masked_c((St*)p, sig, v, mask & kFull);\n}\n"
        "void hlsw_cg_pk_poke_plane(void* p, int sig, const u64* plane, u64 "
        "mask) {\n"
        "  set_masked((St*)p, sig, plane, mask & kFull);\n}\n"
        "u64 hlsw_cg_pk_peek(void* p, int sig, int lane) {\n"
        "  St* S = (St*)p;\n"
        "  if (kLazyOf[sig] >= 0) force_lazy(S, kLazyOf[sig]);\n"
        "  return S->v[sig][lane];\n}\n"
        "u64 hlsw_cg_pk_peek_elem(void* p, int sig, int idx, int lane) {\n"
        "  const u64* A = arrp((St*)p, sig);\n"
        "  return A ? A[(std::size_t)idx * kL + lane] : 0;\n}\n"
        "u64 hlsw_cg_pk_nonzero(void* p, int sig) {\n"
        "  St* S = (St*)p;\n"
        "  if (kLazyOf[sig] >= 0) force_lazy(S, kLazyOf[sig]);\n"
        "  const u64* v = S->v[sig];\n"
        "  u64 m = 0;\n"
        "  for (int l = 0; l < kL; ++l) m |= (u64)(v[l] != 0) << l;\n"
        "  return m;\n}\n"
        "int hlsw_cg_pk_settle(void* p, long long budget) { return "
        "settle((St*)p, budget); }\n"
        "void hlsw_cg_pk_stats(void* p, long long* out) {\n"
        "  const St* s = (const St*)p;\n"
        "  out[0] = s->events; out[1] = s->nba_commits;\n"
        "  out[2] = s->delta_cycles; out[3] = s->instrs;\n"
        "  out[4] = s->flushes; out[5] = s->div_splits;\n}\n"
        "}\n";
  return os.str();
}

// ---- Build + load -----------------------------------------------------------

namespace {

// Rev 2: packed lane-major ABI added (hlsw_cg_pk_*), scalar settle now
// clears comb_dirty after the flush.
constexpr int kCgAbi = 2;

std::string fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::filesystem::path cache_dir() {
  if (const char* e = std::getenv("HLSW_VSIM_CODEGEN_CACHE"))
    if (*e) return e;
  return std::filesystem::temp_directory_path() / "hlsw-vsim-codegen";
}

struct LoadedModule {
  void* handle = nullptr;
  std::string error;
};

// dlopen + fingerprint/ABI verification. The handle is never dlclose()d:
// generated code may be referenced by live CodegenSims for the process
// lifetime, and re-opening the same path returns the same handle anyway.
LoadedModule open_and_verify(const std::filesystem::path& so,
                             const std::string& fp) {
  LoadedModule m;
  m.handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (m.handle == nullptr) {
    const char* e = dlerror();
    m.error = e ? e : "dlopen failed";
    return m;
  }
  const auto fp_fn =
      reinterpret_cast<const char* (*)()>(dlsym(m.handle, "hlsw_cg_fp"));
  const auto abi_fn =
      reinterpret_cast<int (*)()>(dlsym(m.handle, "hlsw_cg_abi"));
  if (fp_fn == nullptr || abi_fn == nullptr || abi_fn() != kCgAbi ||
      fp != fp_fn()) {
    m.handle = nullptr;
    m.error = "cached shared object failed fingerprint/ABI verification";
  }
  return m;
}

// Builds (or reuses) the content-keyed shared object for `src`. Shared by
// the scalar and packed generators — the two differ only in which entry
// points they resolve afterwards. Returns false with a reason in *why.
bool build_shared_object(std::string src, std::string* fp_out,
                         std::string* so_out, void** handle_out,
                         std::string* why) {
  const std::string cxx = codegen_toolchain();
  if (cxx.empty()) {
    *why = "no host toolchain (set CXX or HLSW_CODEGEN_CXX)";
    return false;
  }
  // The fingerprint covers the generated text; the embedded fp symbol is
  // appended after hashing so the hash stays well-defined.
  const std::string fp = fnv1a(src);
  src += "\nextern \"C\" const char* hlsw_cg_fp() { return \"" + fp +
         "\"; }\n";

  obs::ScopedSpan span("vsim.codegen.compile", "vsim");
  const std::filesystem::path dir = cache_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path so = dir / (fp + ".so");
  const std::filesystem::path cpp = dir / (fp + ".cpp");
  const std::filesystem::path log = dir / (fp + ".log");

  // One compilation at a time per process; cross-process races are settled
  // by the atomic rename below (last writer wins, both artifacts valid).
  static std::mutex build_mu;
  std::lock_guard<std::mutex> lk(build_mu);

  const bool metrics = obs::enabled();
  LoadedModule lm;
  bool cache_hit = false;
  if (std::filesystem::exists(so, ec)) {
    lm = open_and_verify(so, fp);
    cache_hit = lm.handle != nullptr;
  }
  if (!cache_hit) {
    {
      std::ofstream f(cpp);
      f << src;
      if (!f) {
        *why = "cannot write " + cpp.string();
        return false;
      }
    }
    const std::filesystem::path tmp =
        dir / (fp + ".so.tmp" + std::to_string(::getpid()));
    const std::string cmd = cxx + " -std=c++17 -O2 -fPIC -shared -o '" +
                            tmp.string() + "' '" + cpp.string() + "' > '" +
                            log.string() + "' 2>&1";
    if (metrics)
      obs::MetricsRegistry::instance().add("vsim.codegen.compiles", 1.0);
    if (std::system(cmd.c_str()) != 0) {
      std::string excerpt;
      std::ifstream lf(log);
      std::string line;
      for (int i = 0; i < 3 && std::getline(lf, line); ++i)
        excerpt += (excerpt.empty() ? "" : " | ") + line;
      std::filesystem::remove(tmp, ec);
      *why = "toolchain '" + cxx + "' failed (" +
             (excerpt.empty() ? "see " + log.string() : excerpt) + ")";
      return false;
    }
    std::filesystem::rename(tmp, so, ec);
    if (ec) {
      *why = "cannot install " + so.string() + ": " + ec.message();
      return false;
    }
    lm = open_and_verify(so, fp);
    if (lm.handle == nullptr) {
      *why = "freshly built shared object failed to load: " + lm.error;
      return false;
    }
  }
  if (metrics)
    obs::MetricsRegistry::instance().add(
        cache_hit ? "vsim.codegen.so_cache.hits"
                  : "vsim.codegen.so_cache.misses",
        1.0);
  if (span.active()) {
    span.arg("fingerprint", fp);
    span.arg("cached", cache_hit ? 1LL : 0LL);
    span.arg("cxx", cxx);
    span.arg("bytes", static_cast<long long>(src.size()));
  }

  *fp_out = fp;
  *so_out = so.string();
  *handle_out = lm.handle;
  return true;
}

// Builds (or reuses) the shared object for `src` and resolves the scalar
// entry points into *mod. Returns false with a reason in *why.
bool build_module(const CompiledDesign& cd, std::string src,
                  CodegenModule* mod, std::string* why) {
  (void)cd;
  void* handle = nullptr;
  if (!build_shared_object(std::move(src), &mod->fingerprint, &mod->so_path,
                           &handle, why))
    return false;
  const auto sym = [&](const char* name) { return dlsym(handle, name); };
  mod->create = reinterpret_cast<void* (*)()>(sym("hlsw_cg_create"));
  mod->destroy = reinterpret_cast<void (*)(void*)>(sym("hlsw_cg_destroy"));
  mod->poke = reinterpret_cast<void (*)(void*, int, std::uint64_t)>(
      sym("hlsw_cg_poke"));
  mod->peek =
      reinterpret_cast<std::uint64_t (*)(void*, int)>(sym("hlsw_cg_peek"));
  mod->peek_elem = reinterpret_cast<std::uint64_t (*)(void*, int, int)>(
      sym("hlsw_cg_peek_elem"));
  mod->settle =
      reinterpret_cast<int (*)(void*, long long)>(sym("hlsw_cg_settle"));
  mod->stats =
      reinterpret_cast<void (*)(void*, long long*)>(sym("hlsw_cg_stats"));
  if (!mod->create || !mod->destroy || !mod->poke || !mod->peek ||
      !mod->peek_elem || !mod->settle || !mod->stats) {
    *why = "generated shared object is missing entry points";
    return false;
  }
  return true;
}

// Builds (or reuses) the lane-major shared object and resolves the
// hlsw_cg_pk_* entry points into *mod, verifying the baked lane count.
bool build_packed_module(std::string src, int lanes, PackedCodegenModule* mod,
                         std::string* why) {
  void* handle = nullptr;
  if (!build_shared_object(std::move(src), &mod->fingerprint, &mod->so_path,
                           &handle, why))
    return false;
  const auto sym = [&](const char* name) { return dlsym(handle, name); };
  const auto lanes_fn = reinterpret_cast<int (*)()>(sym("hlsw_cg_pk_lanes"));
  if (lanes_fn == nullptr || lanes_fn() != lanes) {
    *why = "generated shared object has the wrong lane count";
    return false;
  }
  mod->create = reinterpret_cast<void* (*)()>(sym("hlsw_cg_pk_create"));
  mod->destroy =
      reinterpret_cast<void (*)(void*)>(sym("hlsw_cg_pk_destroy"));
  mod->poke = reinterpret_cast<void (*)(void*, int, std::uint64_t,
                                        std::uint64_t)>(sym("hlsw_cg_pk_poke"));
  mod->poke_plane =
      reinterpret_cast<void (*)(void*, int, const std::uint64_t*,
                                std::uint64_t)>(sym("hlsw_cg_pk_poke_plane"));
  mod->peek = reinterpret_cast<std::uint64_t (*)(void*, int, int)>(
      sym("hlsw_cg_pk_peek"));
  mod->peek_elem = reinterpret_cast<std::uint64_t (*)(void*, int, int, int)>(
      sym("hlsw_cg_pk_peek_elem"));
  mod->nonzero = reinterpret_cast<std::uint64_t (*)(void*, int)>(
      sym("hlsw_cg_pk_nonzero"));
  mod->settle =
      reinterpret_cast<int (*)(void*, long long)>(sym("hlsw_cg_pk_settle"));
  mod->stats =
      reinterpret_cast<void (*)(void*, long long*)>(sym("hlsw_cg_pk_stats"));
  if (!mod->create || !mod->destroy || !mod->poke || !mod->poke_plane ||
      !mod->peek || !mod->peek_elem || !mod->nonzero || !mod->settle ||
      !mod->stats) {
    *why = "generated shared object is missing packed entry points";
    return false;
  }
  return true;
}

struct CodegenCache {
  struct Entry {
    std::weak_ptr<const CompiledDesign> key;
    std::shared_ptr<const CodegenModule> mod;
    std::string why;
  };
  struct PackedEntry {
    std::weak_ptr<const CompiledDesign> key;
    std::shared_ptr<const PackedCodegenModule> mod;
    std::string why;
  };
  std::mutex mu;
  std::map<const CompiledDesign*, Entry> map;
  std::map<std::pair<const CompiledDesign*, int>, PackedEntry> packed;
};

CodegenCache& codegen_cache() {
  static auto* c = new CodegenCache;  // leaked: alive for process teardown
  return *c;
}

}  // namespace

std::shared_ptr<const CodegenModule> codegen_plan(
    const std::shared_ptr<const Design>& design, std::string* why) {
  const bool metrics = obs::enabled();
  const auto fall = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    if (metrics)
      obs::MetricsRegistry::instance().add("vsim.codegen.fallbacks", 1.0);
    return nullptr;
  };

  // Toolchain availability is decided BEFORE the memo so disabling codegen
  // (HLSW_CODEGEN_CXX=none) never poisons the per-design cache.
  if (!codegen_available())
    return fall("no host toolchain (set CXX or HLSW_CODEGEN_CXX)");

  std::string cwhy;
  const auto plan = compiled_plan(design, &cwhy);
  if (plan == nullptr) return fall(cwhy);

  CodegenCache& c = codegen_cache();
  {
    std::lock_guard<std::mutex> lk(c.mu);
    const auto it = c.map.find(plan.get());
    if (it != c.map.end() && !it->second.key.expired()) {
      if (it->second.mod != nullptr) return it->second.mod;
      return fall(it->second.why);
    }
  }

  const auto memoize = [&](std::shared_ptr<const CodegenModule> mod,
                           const std::string& reason) {
    std::lock_guard<std::mutex> lk(c.mu);
    if (c.map.size() > 64) {
      for (auto it = c.map.begin(); it != c.map.end();)
        it = it->second.key.expired() ? c.map.erase(it) : std::next(it);
    }
    CodegenCache::Entry e;
    e.key = plan;
    e.mod = std::move(mod);
    e.why = reason;
    c.map[plan.get()] = std::move(e);
  };

  // Typed refusals: system tasks stay on the interpreter tiers, which own
  // the display log and the VCD writer.
  for (const PInstr& in : plan->prog) {
    if (in.code == PInstr::kDisplay || in.code == PInstr::kDumpFile ||
        in.code == PInstr::kDumpVars) {
      const std::string reason =
          "$display/$dump system tasks stay on the interpreter backends";
      memoize(nullptr, reason);
      return fall(reason);
    }
  }

  auto mod = std::make_shared<CodegenModule>();
  mod->plan = plan;
  std::string bwhy;
  if (!build_module(*plan, codegen_source(*plan), mod.get(), &bwhy)) {
    memoize(nullptr, bwhy);
    return fall(bwhy);
  }
  memoize(mod, "");
  return mod;
}

std::shared_ptr<const PackedCodegenModule> packed_codegen_plan(
    const std::shared_ptr<const CompiledDesign>& plan, int lanes,
    std::string* why) {
  const bool metrics = obs::enabled();
  const auto fall = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    if (metrics)
      obs::MetricsRegistry::instance().add("vsim.codegen.fallbacks", 1.0);
    return nullptr;
  };

  // Toolchain availability is decided BEFORE the memo so disabling codegen
  // (HLSW_CODEGEN_CXX=none) never poisons the per-(plan, lanes) cache.
  if (!codegen_available())
    return fall("no host toolchain (set CXX or HLSW_CODEGEN_CXX)");
  if (plan == nullptr) return fall("no compiled plan");
  if (lanes < 1 || lanes > kMaxLanes)
    return fall("lane count " + std::to_string(lanes) + " out of range");

  CodegenCache& c = codegen_cache();
  const auto key = std::make_pair(plan.get(), lanes);
  {
    std::lock_guard<std::mutex> lk(c.mu);
    const auto it = c.packed.find(key);
    if (it != c.packed.end() && !it->second.key.expired()) {
      if (it->second.mod != nullptr) return it->second.mod;
      return fall(it->second.why);
    }
  }

  const auto memoize = [&](std::shared_ptr<const PackedCodegenModule> mod,
                           const std::string& reason) {
    std::lock_guard<std::mutex> lk(c.mu);
    if (c.packed.size() > 64) {
      for (auto it = c.packed.begin(); it != c.packed.end();)
        it = it->second.key.expired() ? c.packed.erase(it) : std::next(it);
    }
    CodegenCache::PackedEntry e;
    e.key = plan;
    e.mod = std::move(mod);
    e.why = reason;
    c.packed[key] = std::move(e);
  };

  if (!plan_packable(*plan)) {
    const std::string reason =
        "$display/$dump system tasks stay on the interpreter backends";
    memoize(nullptr, reason);
    return fall(reason);
  }

  auto mod = std::make_shared<PackedCodegenModule>();
  mod->plan = plan;
  mod->lanes = lanes;
  std::string bwhy;
  if (!build_packed_module(packed_codegen_source(*plan, lanes), lanes,
                           mod.get(), &bwhy)) {
    memoize(nullptr, bwhy);
    return fall(bwhy);
  }
  memoize(mod, "");
  return mod;
}

// ---- CodegenSim -------------------------------------------------------------

CodegenSim::CodegenSim(std::shared_ptr<const CodegenModule> mod,
                       const SimConfig& cfg)
    : mod_(std::move(mod)), cfg_(cfg) {
  st_ = mod_->create();
  settle();  // time 0: all comb evaluates once, initial bodies run
}

CodegenSim::~CodegenSim() {
  if (st_ != nullptr) {
    if (obs::enabled()) {
      long long o[5] = {};
      mod_->stats(st_, o);
      obs::MetricsRegistry::instance().add("vsim.codegen.flushes",
                                           static_cast<double>(o[4]));
    }
    mod_->destroy(st_);
  }
}

void CodegenSim::poke(int sig, std::uint64_t value) {
  mod_->poke(st_, sig, value);
}

long long CodegenSim::peek_signed(int sig) const {
  const int w =
      mod_->plan->design->signals[static_cast<std::size_t>(sig)].width;
  std::uint64_t v = peek(sig);
  if (w < 64 && ((v >> (w - 1)) & 1))
    v |= ~((w >= 64 ? ~0ULL : (1ULL << w) - 1ULL));
  return static_cast<long long>(v);
}

std::uint64_t CodegenSim::peek_elem(int sig, int index) const {
  const Signal& s =
      mod_->plan->design->signals[static_cast<std::size_t>(sig)];
  if (index < 0 || index >= s.array_len)
    fail("element " + std::to_string(index) + " out of range for '" +
         s.name + "'");
  return mod_->peek_elem(st_, sig, index);
}

void CodegenSim::settle() {
  const int r = mod_->settle(st_, cfg_.max_instrs_per_slot);
  if (r != 0)
    fail("instruction budget exceeded without time advancing "
         "(zero-delay loop in " +
         mod_->plan->procs[static_cast<std::size_t>(r - 1)].origin + "?)");
}

RunResult CodegenSim::run() {
  obs::ScopedSpan span("vsim.run", "vsim");
  if (span.active()) span.arg("backend", "codegen");
  settle();
  if (obs::enabled()) {
    const SimStats& s = stats();
    auto& m = obs::MetricsRegistry::instance();
    m.add("vsim.events", static_cast<double>(s.events));
    m.add("vsim.nba_commits", static_cast<double>(s.nba_commits));
  }
  RunResult r;
  r.end_time = 0;
  return r;
}

const SimStats& CodegenSim::stats() const {
  long long o[5] = {};
  mod_->stats(st_, o);
  stats_.events = o[0];
  stats_.nba_commits = o[1];
  stats_.delta_cycles = o[2];
  stats_.instrs = o[3];
  return stats_;
}

// ---- PackedCodegenSim -------------------------------------------------------

PackedCodegenSim::PackedCodegenSim(
    std::shared_ptr<const PackedCodegenModule> mod, const SimConfig& cfg)
    : mod_(std::move(mod)), cfg_(cfg) {
  full_mask_ = mod_->lanes == 64 ? ~0ULL : (1ULL << mod_->lanes) - 1ULL;
  st_ = mod_->create();
  settle();  // time 0: all comb evaluates once, initial bodies run
}

PackedCodegenSim::~PackedCodegenSim() {
  if (st_ != nullptr) {
    if (obs::enabled()) {
      refresh_stats();
      auto& m = obs::MetricsRegistry::instance();
      m.add("vsim.events", static_cast<double>(stats_.events));
      m.add("vsim.nba_commits", static_cast<double>(stats_.nba_commits));
      if (divergence_splits_ > 0)
        m.add("vsim.packed.divergence_splits",
              static_cast<double>(divergence_splits_));
      long long o[6] = {};
      mod_->stats(st_, o);
      m.add("vsim.codegen.flushes", static_cast<double>(o[4]));
    }
    mod_->destroy(st_);
  }
}

void PackedCodegenSim::poke(int sig, std::uint64_t value,
                            std::uint64_t mask) {
  mod_->poke(st_, sig, value, mask & full_mask_);
}

void PackedCodegenSim::poke_lane(int sig, int lane, std::uint64_t value) {
  mod_->poke(st_, sig, value, 1ULL << lane);
}

void PackedCodegenSim::poke_plane(int sig, const std::uint64_t* plane,
                                  std::uint64_t mask) {
  mod_->poke_plane(st_, sig, plane, mask & full_mask_);
}

std::uint64_t PackedCodegenSim::peek(int sig, int lane) const {
  return mod_->peek(st_, sig, lane);
}

long long PackedCodegenSim::peek_signed(int sig, int lane) const {
  const int w =
      mod_->plan->design->signals[static_cast<std::size_t>(sig)].width;
  std::uint64_t v = peek(sig, lane);
  if (w < 64 && ((v >> (w - 1)) & 1))
    v |= ~((w >= 64 ? ~0ULL : (1ULL << w) - 1ULL));
  return static_cast<long long>(v);
}

std::uint64_t PackedCodegenSim::peek_elem(int sig, int index,
                                          int lane) const {
  const Signal& s =
      mod_->plan->design->signals[static_cast<std::size_t>(sig)];
  if (index < 0 || index >= s.array_len)
    fail("element " + std::to_string(index) + " out of range for '" +
         s.name + "'");
  return mod_->peek_elem(st_, sig, index, lane);
}

std::uint64_t PackedCodegenSim::peek_nonzero_mask(int sig) const {
  return mod_->nonzero(st_, sig);
}

void PackedCodegenSim::settle() {
  // Packed instruction counts are lane sums, so the per-slot budget scales
  // with the lane count (the interpreted engine applies the same factor).
  const int r = mod_->settle(
      st_, cfg_.max_instrs_per_slot * static_cast<long long>(mod_->lanes));
  if (r != 0)
    fail("instruction budget exceeded without time advancing "
         "(zero-delay loop in " +
         mod_->plan->procs[static_cast<std::size_t>(r - 1)].origin + "?)");
}

void PackedCodegenSim::refresh_stats() const {
  long long o[6] = {};
  mod_->stats(st_, o);
  stats_.events = o[0];
  stats_.nba_commits = o[1];
  stats_.delta_cycles = o[2];
  stats_.instrs = o[3];
  divergence_splits_ = o[5];
}

const SimStats& PackedCodegenSim::stats() const {
  refresh_stats();
  return stats_;
}

long long PackedCodegenSim::divergence_splits() const {
  refresh_stats();
  return divergence_splits_;
}

}  // namespace hlsw::vsim
