#include "vsim/codegen.h"

#include <dlfcn.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hlsw::vsim {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("vsim runtime error: " + what);
}

// ---- Toolchain resolution ---------------------------------------------------

// Probe results are memoized per candidate command; the environment
// variables themselves are re-read on every call so a test can disable
// codegen (HLSW_CODEGEN_CXX=none) and re-enable it within one process.
bool probe_cxx(const std::string& cmd) {
  static std::mutex mu;
  static std::map<std::string, bool> memo;
  std::lock_guard<std::mutex> lk(mu);
  const auto it = memo.find(cmd);
  if (it != memo.end()) return it->second;
  const std::string line = cmd + " --version > /dev/null 2>&1";
  const bool ok = std::system(line.c_str()) == 0;
  memo[cmd] = ok;
  return ok;
}

}  // namespace

std::string codegen_toolchain() {
  if (const char* e = std::getenv("HLSW_CODEGEN_CXX")) {
    const std::string v = e;
    if (v.empty() || v == "none") return "";
    return probe_cxx(v) ? v : "";
  }
  if (const char* e = std::getenv("CXX")) {
    const std::string v = e;
    if (!v.empty() && probe_cxx(v)) return v;
  }
  for (const char* cand : {"c++", "g++", "clang++"})
    if (probe_cxx(cand)) return cand;
  return "";
}

bool codegen_available() { return !codegen_toolchain().empty(); }

// ---- Source generation ------------------------------------------------------

namespace {

std::string hx(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llxull",
                static_cast<unsigned long long>(v));
  return buf;
}

// Emits the statements evaluating one tape and returns the expression (a
// temp name or literal) holding its value. Every op result becomes its own
// `const u64` temp so operands are never textually duplicated; `tmp` is
// the caller-scoped temp counter keeping names unique per function.
std::string emit_tape(std::ostream& os, const CompiledDesign& cd, int tape,
                      int& tmp, const char* ind) {
  const TapeRef& t = cd.tapes[static_cast<std::size_t>(tape)];
  std::vector<std::string> stk;
  const auto push = [&](const std::string& expr) {
    std::string name = "t" + std::to_string(tmp++);
    os << ind << "const u64 " << name << " = " << expr << ";\n";
    stk.push_back(std::move(name));
  };
  const auto pop = [&] {
    std::string v = std::move(stk.back());
    stk.pop_back();
    return v;
  };
  const auto sig = [&](std::int32_t a) {
    return "S->v[" + std::to_string(a) + "]";
  };
  const auto arr = [&](std::int32_t a) {
    return "S->a" + std::to_string(a);
  };
  const auto alen = [&](std::int32_t a) {
    return std::to_string(cd.design->signals[static_cast<std::size_t>(a)]
                              .array_len);
  };
  for (std::uint32_t i = t.begin; i < t.begin + t.len; ++i) {
    const TOp& o = cd.ops[i];
    const std::string W = std::to_string(o.w);
    const std::string A = std::to_string(o.a);
    const std::string I = hx(o.imm);
    // Folded 32-bit constants of the xC superinstructions.
    const std::string C =
        hx(static_cast<std::uint64_t>(static_cast<std::uint32_t>(o.a)));
    switch (o.code) {
      case TOp::kConst:
        stk.push_back("(" + I + ")");
        break;
      case TOp::kLoad:
        push(sig(o.a));
        break;
      case TOp::kLoadSx:
        push("sx(" + sig(o.a) + ", " + W + ") & " + I);
        break;
      case TOp::kLoadTr:
        push(sig(o.a) + " & " + I);
        break;
      case TOp::kLoadElem: {
        const std::string u = pop();
        const std::string idx =
            o.w ? "(i64)sx(" + u + ", " + W + ")" : "(i64)" + u;
        push("ldel(" + arr(o.a) + ", " + alen(o.a) + ", " + idx + ")");
        break;
      }
      case TOp::kTrunc:
        push(pop() + " & " + I);
        break;
      case TOp::kSext:
        push("sx(" + pop() + ", " + W + ") & " + I);
        break;
      case TOp::kToSigned:
        push("tosgn(" + pop() + ", " + W + ")");
        break;
      case TOp::kBitSel: {
        const std::string idx = pop(), base = pop();
        push("bitsel(" + base + ", (i64)" + idx + ", " + W + ")");
        break;
      }
      case TOp::kRange:
        push("(" + pop() + " >> " + A + ") & " + I);
        break;
      case TOp::kNeg:
        push("(0 - " + pop() + ") & " + I);
        break;
      case TOp::kNot:
        push("~" + pop() + " & " + I);
        break;
      case TOp::kLNot:
        push("(u64)(" + pop() + " == 0)");
        break;
      case TOp::kNeZero:
        push("(u64)(" + pop() + " != 0)");
        break;
      case TOp::kRedAnd:
        push("(u64)(" + pop() + " == " + I + ")");
        break;
      case TOp::kRedNand:
        push("(u64)(" + pop() + " != " + I + ")");
        break;
      case TOp::kRedOr:
        push("(u64)(" + pop() + " != 0)");
        break;
      case TOp::kRedNor:
        push("(u64)(" + pop() + " == 0)");
        break;
      case TOp::kRedXor:
        push("(u64)__builtin_parityll((i64)" + pop() + ")");
        break;
      case TOp::kRedXnor:
        push("(u64)!__builtin_parityll((i64)" + pop() + ")");
        break;
      case TOp::kAnd: {
        const std::string b = pop(), a = pop();
        push(a + " & " + b);
        break;
      }
      case TOp::kOr: {
        const std::string b = pop(), a = pop();
        push(a + " | " + b);
        break;
      }
      case TOp::kXor: {
        const std::string b = pop(), a = pop();
        push(a + " ^ " + b);
        break;
      }
      case TOp::kXnorB: {
        const std::string b = pop(), a = pop();
        push("~(" + a + " ^ " + b + ") & " + I);
        break;
      }
      case TOp::kAdd: {
        const std::string b = pop(), a = pop();
        push("(" + a + " + " + b + ") & " + I);
        break;
      }
      case TOp::kSub: {
        const std::string b = pop(), a = pop();
        push("(" + a + " - " + b + ") & " + I);
        break;
      }
      case TOp::kMul: {
        const std::string b = pop(), a = pop();
        push("(" + a + " * " + b + ") & " + I);
        break;
      }
      case TOp::kDivU: {
        const std::string b = pop(), a = pop();
        push(b + " == 0 ? 0 : " + a + " / " + b);
        break;
      }
      case TOp::kModU: {
        const std::string b = pop(), a = pop();
        push(b + " == 0 ? 0 : " + a + " % " + b);
        break;
      }
      case TOp::kDivS: {
        const std::string b = pop(), a = pop();
        push("divs(" + a + ", " + b + ", " + W + ", " + I + ")");
        break;
      }
      case TOp::kModS: {
        const std::string b = pop(), a = pop();
        push("mods(" + a + ", " + b + ", " + W + ", " + I + ")");
        break;
      }
      case TOp::kEq: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " == " + b + ")");
        break;
      }
      case TOp::kNe: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " != " + b + ")");
        break;
      }
      case TOp::kLtU: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " < " + b + ")");
        break;
      }
      case TOp::kLeU: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " <= " + b + ")");
        break;
      }
      case TOp::kGtU: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " > " + b + ")");
        break;
      }
      case TOp::kGeU: {
        const std::string b = pop(), a = pop();
        push("(u64)(" + a + " >= " + b + ")");
        break;
      }
      case TOp::kLtS: {
        const std::string b = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") < sgn64(" + b + ", " + W +
             "))");
        break;
      }
      case TOp::kLeS: {
        const std::string b = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") <= sgn64(" + b + ", " + W +
             "))");
        break;
      }
      case TOp::kGtS: {
        const std::string b = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") > sgn64(" + b + ", " + W +
             "))");
        break;
      }
      case TOp::kGeS: {
        const std::string b = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") >= sgn64(" + b + ", " + W +
             "))");
        break;
      }
      case TOp::kShl: {
        const std::string sh = pop(), a = pop();
        push(sh + " >= 64 ? 0 : (" + a + " << " + sh + ") & " + I);
        break;
      }
      case TOp::kShrU: {
        const std::string sh = pop(), a = pop();
        push(sh + " >= 64 ? 0 : " + a + " >> " + sh);
        break;
      }
      case TOp::kShrS: {
        const std::string sh = pop(), a = pop();
        push("(u64)(sgn64(" + a + ", " + W + ") >> (" + sh + " > 63 ? 63 : " +
             sh + ")) & " + I);
        break;
      }
      case TOp::kConcatAcc: {
        const std::string kid = pop(), acc = pop();
        push("(" + acc + " << " + W + ") | " + kid);
        break;
      }
      case TOp::kRepl:
        push("repl(" + pop() + ", " + W + ", " + A + ")");
        break;
      case TOp::kMux: {
        const std::string ev = pop(), tv = pop(), cond = pop();
        push(cond + " != 0 ? " + tv + " : " + ev);
        break;
      }
      case TOp::kTime:
        stk.push_back("(0ull)");
        break;
      case TOp::kLoadElemSx:
        push("sx(ldel(" + arr(o.a) + ", " + alen(o.a) + ", (i64)" + pop() +
             "), " + W + ") & " + I);
        break;
      case TOp::kLoadElemTr: {
        const std::string u = pop();
        const std::string idx =
            o.w ? "(i64)sx(" + u + ", " + W + ")" : "(i64)" + u;
        push("ldel(" + arr(o.a) + ", " + alen(o.a) + ", " + idx + ") & " + I);
        break;
      }
      case TOp::kAddC:
        push("(" + pop() + " + " + C + ") & " + I);
        break;
      case TOp::kSubC:
        push("(" + pop() + " - " + C + ") & " + I);
        break;
      case TOp::kMulC:
        push("(" + pop() + " * " + C + ") & " + I);
        break;
      case TOp::kOrC:
        push(pop() + " | " + I);
        break;
      case TOp::kXorC:
        push(pop() + " ^ " + I);
        break;
      case TOp::kShlC:
        push("(" + pop() + " << " + C + ") & " + I);
        break;
      case TOp::kConcatC:
        push("(" + pop() + " << " + W + ") | " + C);
        break;
      case TOp::kAddL:
        push("(" + pop() + " + " + sig(o.a) + ") & " + I);
        break;
      case TOp::kSubL:
        push("(" + pop() + " - " + sig(o.a) + ") & " + I);
        break;
      case TOp::kMulL:
        push("(" + pop() + " * " + sig(o.a) + ") & " + I);
        break;
      case TOp::kAndL:
        push(pop() + " & " + sig(o.a));
        break;
      case TOp::kOrL:
        push(pop() + " | " + sig(o.a));
        break;
      case TOp::kXorL:
        push(pop() + " ^ " + sig(o.a));
        break;
      case TOp::kConcatL:
        push("(" + pop() + " << " + W + ") | " + sig(o.a));
        break;
      case TOp::kRangeL:
        push("(" + sig(o.a) + " >> " + W + ") & " + I);
        break;
      case TOp::kLoadShlC:
        push("(" + sig(o.a) + " << " + W + ") & " + I);
        break;
      case TOp::kHalt:
        return stk.back();
    }
  }
  return stk.back();  // unreachable: every tape ends in kHalt
}

// End of proc p's slice of CompiledDesign::prog (entries are built
// sequentially, so proc bodies are contiguous).
std::size_t proc_end(const CompiledDesign& cd, std::size_t p) {
  return p + 1 < cd.procs.size()
             ? static_cast<std::size_t>(cd.procs[p + 1].entry)
             : cd.prog.size();
}

void emit_proc(std::ostream& os, const CompiledDesign& cd, std::size_t p) {
  const std::size_t entry = static_cast<std::size_t>(cd.procs[p].entry);
  const std::size_t end = proc_end(cd, p);
  int repeat_depth = 0;
  for (std::size_t pc = entry; pc < end; ++pc)
    if (cd.prog[pc].code == PInstr::kRepeatInit) ++repeat_depth;

  os << "static int proc" << p << "(St* S, i64 budget) {\n";
  if (repeat_depth > 0)
    os << "  i64 reps[" << repeat_depth << "]; int rsp = 0;\n";
  int tmp = 0;
  const char* ind = "    ";
  for (std::size_t pc = entry; pc < end; ++pc) {
    const PInstr& in = cd.prog[pc];
    const std::string SIG = std::to_string(in.sig);
    const std::string MASK =
        in.sig >= 0 ? hx(cd.sig_mask[static_cast<std::size_t>(in.sig)]) : "";
    os << "  L" << pc << ": ++S->instrs;\n";
    os << "  {\n";
    switch (in.code) {
      case PInstr::kAssign: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        os << ind << "set_sig(S, " << SIG << ", " << v << ", "
           << static_cast<int>(p) << ");\n";
        break;
      }
      case PInstr::kAssignCopy:
        os << ind << "set_sig(S, " << SIG << ", S->v[" << in.a << "], "
           << static_cast<int>(p) << ");\n";
        break;
      case PInstr::kAssignConst:
        os << ind << "set_sig(S, " << SIG << ", " << hx(in.imm) << ", "
           << static_cast<int>(p) << ");\n";
        break;
      case PInstr::kAssignElem: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const std::string ix = emit_tape(os, cd, in.t1, tmp, ind);
        os << ind << "setel(S, " << SIG << ", (i64)" << ix << ", " << v
           << ");\n";
        break;
      }
      case PInstr::kAssignBit: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const std::string ix = emit_tape(os, cd, in.t1, tmp, ind);
        const int w =
            cd.design->signals[static_cast<std::size_t>(in.sig)].width;
        os << ind << "const i64 bi = (i64)" << ix << ";\n"
           << ind << "if (bi >= 0 && bi < " << w << ") {\n"
           << ind << "  const u64 o = S->v[" << SIG << "];\n"
           << ind << "  set_sig(S, " << SIG << ", (o & ~(1ull << bi)) | (("
           << v << " & 1ull) << bi), " << static_cast<int>(p) << ");\n"
           << ind << "}\n";
        break;
      }
      case PInstr::kNb: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        os << ind << "S->nba.push_back(Nba{" << SIG << ", -1, " << v << " & "
           << MASK << "});\n";
        break;
      }
      case PInstr::kNbCopy:
        os << ind << "S->nba.push_back(Nba{" << SIG << ", -1, S->v[" << in.a
           << "] & " << MASK << "});\n";
        break;
      case PInstr::kNbConst:
        os << ind << "S->nba.push_back(Nba{" << SIG << ", -1, " << hx(in.imm)
           << "});\n";
        break;
      case PInstr::kNbElem: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const std::string ix = emit_tape(os, cd, in.t1, tmp, ind);
        os << ind << "S->nba.push_back(Nba{" << SIG << ", (i64)" << ix << ", "
           << v << " & " << MASK << "});\n";
        break;
      }
      case PInstr::kNbBit: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const std::string ix = emit_tape(os, cd, in.t1, tmp, ind);
        os << ind << "S->nba.push_back(Nba{" << SIG << ", (i64)" << ix << ", "
           << v << " & 1ull});\n";
        break;
      }
      case PInstr::kJump:
        // Only backward jumps (loop back-edges) can run unboundedly; mirror
        // the interpreter's per-back-edge budget check.
        if (in.a <= static_cast<std::int32_t>(pc))
          os << ind << "if (S->instrs - S->slot_base > budget) return 1;\n";
        os << ind << "goto L" << in.a << ";\n";
        break;
      case PInstr::kJumpIfFalse: {
        const std::string c = emit_tape(os, cd, in.t0, tmp, ind);
        os << ind << "if (" << c << " == 0) goto L" << in.a << ";\n";
        break;
      }
      case PInstr::kJumpIfFalseSig:
        os << ind << "if (S->v[" << SIG << "] == 0) goto L" << in.a << ";\n";
        break;
      case PInstr::kCaseJump: {
        const CompiledDesign::CaseTable& t =
            cd.case_tables[static_cast<std::size_t>(in.a)];
        os << ind << "switch (S->v[" << SIG << "]) {\n";
        for (const auto& [val, target] : t.arms)
          os << ind << "  case " << hx(val) << ": goto L" << target << ";\n";
        os << ind << "  default: goto L" << t.def_pc << ";\n";
        os << ind << "}\n";
        break;
      }
      case PInstr::kRepeatInit: {
        const std::string v = emit_tape(os, cd, in.t0, tmp, ind);
        const TapeRef& t = cd.tapes[static_cast<std::size_t>(in.t0)];
        if (t.sgn)
          os << ind << "reps[rsp++] = sgn64(" << v << ", "
             << static_cast<int>(t.w) << ");\n";
        else
          os << ind << "reps[rsp++] = (i64)" << v << ";\n";
        break;
      }
      case PInstr::kRepeatTest:
        os << ind << "if (reps[rsp-1] > 0) { --reps[rsp-1]; } else { --rsp; "
           << "goto L" << in.a << "; }\n";
        break;
      case PInstr::kDisplay:
      case PInstr::kDumpFile:
      case PInstr::kDumpVars:
        // Unreachable: codegen_plan refuses designs with system tasks.
        os << ind << "return 1;\n";
        break;
      case PInstr::kHalt:
        os << ind << "return 0;\n";
        break;
    }
    os << "  }\n";
  }
  os << "  return 0;\n}\n\n";
}

}  // namespace

std::string codegen_source(const CompiledDesign& cd) {
  const Design& d = *cd.design;
  const std::size_t nsig = d.signals.size();
  const std::size_t nproc = cd.procs.size();
  std::ostringstream os;

  os << "// Generated by hlsw vsim codegen; compiled and dlopen()ed at\n"
        "// runtime. One translation unit per design fingerprint.\n"
        "#include <cstddef>\n#include <cstdint>\n#include <vector>\n"
        "namespace {\n"
        "typedef std::uint64_t u64;\ntypedef long long i64;\n"
        "inline u64 um(int w) { return w >= 64 ? ~0ull : (1ull << w) - 1ull; "
        "}\n"
        "inline i64 sgn64(u64 v, int w) { if (w < 64 && ((v >> (w - 1)) & "
        "1)) v |= ~um(w); return (i64)v; }\n"
        "inline u64 sx(u64 v, int w) { if ((v >> (w - 1)) & 1) v |= ~um(w); "
        "return v; }\n"
        "inline u64 tosgn(u64 v, int w) { if (w < 64 && ((v >> (w - 1)) & "
        "1)) v |= ~um(w); return v; }\n"
        "inline u64 ldel(const u64* A, i64 n, i64 i) { return (i >= 0 && i < "
        "n) ? A[(std::size_t)i] : 0; }\n"
        "inline u64 bitsel(u64 base, i64 i, int w) { return (i >= 0 && i < "
        "w) ? (base >> i) & 1 : 0; }\n"
        "inline u64 divs(u64 a, u64 b, int w, u64 imm) { const i64 sa = "
        "sgn64(a, w), sb = sgn64(b, w); u64 r; if (sb == 0) r = 0; else if "
        "(sb == -1) r = 0 - a; else r = (u64)(sa / sb); return r & imm; }\n"
        "inline u64 mods(u64 a, u64 b, int w, u64 imm) { const i64 sa = "
        "sgn64(a, w), sb = sgn64(b, w); u64 r; if (sb == 0 || sb == -1) r = "
        "0; else r = (u64)(sa % sb); return r & imm; }\n"
        "inline u64 repl(u64 kv, int w, int n) { u64 v = 0; for (int i = 0; "
        "i < n; ++i) v = (v << w) | kv; return v; }\n\n";

  // Per-signal static tables.
  const auto bool_table = [&](const char* name, auto pred) {
    os << "static constexpr bool " << name << "[" << nsig << "] = {";
    for (std::size_t i = 0; i < nsig; ++i)
      os << (i ? "," : "") << (pred(i) ? 1 : 0);
    os << "};\n";
  };
  os << "static constexpr u64 kMask[" << nsig << "] = {";
  for (std::size_t i = 0; i < nsig; ++i)
    os << (i ? "," : "") << hx(cd.sig_mask[i]);
  os << "};\n";
  os << "static constexpr int kWidth[" << nsig << "] = {";
  for (std::size_t i = 0; i < nsig; ++i)
    os << (i ? "," : "") << d.signals[i].width;
  os << "};\n";
  os << "static constexpr i64 kALen[" << nsig << "] = {";
  for (std::size_t i = 0; i < nsig; ++i)
    os << (i ? "," : "") << d.signals[i].array_len;
  os << "};\n";
  bool_table("kHasFan", [&](std::size_t i) {
    return cd.fan_index[i] < cd.fan_index[i + 1];
  });
  bool_table("kHasTrig", [&](std::size_t i) {
    return cd.trig_index[i] < cd.trig_index[i + 1];
  });
  os << "\n";

  // Engine state. Array signals are fixed-size members (lengths are design
  // constants); everything zero-initializes except where create() applies
  // declared init values.
  os << "struct Nba { std::int32_t sig; i64 index; u64 value; };\n";
  os << "struct St {\n  u64 v[" << nsig << "] = {};\n";
  for (std::size_t i = 0; i < nsig; ++i)
    if (d.signals[i].array_len > 0)
      os << "  u64 a" << i << "[" << d.signals[i].array_len << "] = {};\n";
  os << "  std::vector<Nba> nba, nba_scratch;\n"
     << "  unsigned char ready[" << std::max<std::size_t>(nproc, 1)
     << "] = {};\n"
     << "  int ready_count = 0;\n"
     << "  bool comb_dirty = true;\n"
     << "  i64 events = 0, nba_commits = 0, delta_cycles = 0, instrs = 0;\n"
     << "  i64 flushes = 0, slot_base = 0;\n"
     << "};\n\n";

  // Runtime array lookup (NBA element commits and host element peeks reach
  // arrays by signal index).
  os << "static u64* arrp(St* S, int sig) {\n  switch (sig) {\n";
  for (std::size_t i = 0; i < nsig; ++i)
    if (d.signals[i].array_len > 0)
      os << "    case " << i << ": return S->a" << i << ";\n";
  os << "    default: return nullptr;\n  }\n}\n\n";

  os << "inline void rdy(St* S, int p) {\n"
        "  if (!S->ready[p]) { S->ready[p] = 1; ++S->ready_count; }\n"
        "}\n\n";

  // Edge triggers, statically enumerated per signal. `self` is the running
  // process (or -1): a process cannot re-arm itself, matching the event
  // kernel where a thread is not edge-waiting while it executes.
  os << "static void trig(St* S, int sig, u64 o, u64 n, int self) {\n"
        "  const bool pos = !(o & 1) && (n & 1);\n"
        "  const bool neg = (o & 1) && !(n & 1);\n"
        "  (void)pos; (void)neg;\n"
        "  switch (sig) {\n";
  for (std::size_t i = 0; i < nsig; ++i) {
    const auto b = cd.trig_index[i], e = cd.trig_index[i + 1];
    if (b == e) continue;
    os << "    case " << i << ":\n";
    for (auto k = b; k < e; ++k) {
      const auto& t = cd.trigs[static_cast<std::size_t>(k)];
      os << "      if (self != " << t.proc;
      if (t.edge == Edge::kPos)
        os << " && pos";
      else if (t.edge == Edge::kNeg)
        os << " && neg";
      os << ") rdy(S, " << t.proc << ");\n";
    }
    os << "      break;\n";
  }
  os << "    default: break;\n  }\n}\n\n";

  // The one scalar write path: mask, change-detect, count, dirty the comb
  // flush when the signal has fanout, fire triggers. Call sites with a
  // constant `sig` fold the table lookups away.
  os << "inline void set_sig(St* S, int sig, u64 nv, int self) {\n"
        "  nv &= kMask[sig];\n"
        "  const u64 old = S->v[sig];\n"
        "  if (old == nv) return;\n"
        "  S->v[sig] = nv;\n"
        "  ++S->events;\n"
        "  if (kHasFan[sig]) S->comb_dirty = true;\n"
        "  if (kHasTrig[sig]) trig(S, sig, old, nv, self);\n"
        "}\n\n"
        "inline void setel(St* S, int sig, i64 idx, u64 v) {\n"
        "  u64* A = arrp(S, sig);\n"
        "  if (!A || idx < 0 || idx >= kALen[sig]) return;\n"
        "  v &= kMask[sig];\n"
        "  if (A[idx] == v) return;\n"
        "  A[idx] = v;\n"
        "  ++S->events;\n"
        "  // element writes never wake edge waits (kernel parity)\n"
        "  if (kHasFan[sig]) S->comb_dirty = true;\n"
        "}\n\n";

  // Full comb flush: every node in level order, straight-line, from the
  // ORIGINAL tapes (reference semantics — fused exec tapes would duplicate
  // spliced producers). Re-evaluating unchanged cones is idempotent and
  // change detection in set_sig keeps the event counts identical to the
  // gated interpreter. Lazy nodes (observed by nothing) are plain stores:
  // no events, no triggers, exactly like the interpreter's force_lazy.
  {
    std::vector<std::size_t> order(cd.nodes.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return cd.nodes[a].level < cd.nodes[b].level;
                     });
    os << "static void flush(St* S) {\n  ++S->flushes;\n";
    int tmp = 0;
    for (const std::size_t n : order) {
      const CompiledDesign::Node& nd = cd.nodes[n];
      os << "  { // node " << n << " level " << nd.level << " -> "
         << d.signals[static_cast<std::size_t>(nd.target)].name << "\n";
      const std::string v = emit_tape(os, cd, nd.tape, tmp, "    ");
      if (cd.node_lazy[n])
        os << "    S->v[" << nd.target << "] = " << v << " & "
           << hx(cd.sig_mask[static_cast<std::size_t>(nd.target)]) << ";\n";
      else
        os << "    set_sig(S, " << nd.target << ", " << v << ", -1);\n";
      os << "  }\n";
    }
    os << "}\n\n";
  }

  for (std::size_t p = 0; p < nproc; ++p) emit_proc(os, cd, p);

  os << "static int run_proc(St* S, int p, i64 budget) {\n"
        "  S->ready[p] = 0;\n  --S->ready_count;\n  int r = 0;\n"
        "  switch (p) {\n";
  for (std::size_t p = 0; p < nproc; ++p)
    os << "    case " << p << ": r = proc" << p << "(S, budget); break;\n";
  os << "    default: break;\n  }\n"
        "  return r ? static_cast<int>(p) + 1 : 0;\n}\n\n";

  os << "static void commit_nba(St* S) {\n"
        "  S->nba_scratch.clear();\n  S->nba_scratch.swap(S->nba);\n"
        "  S->nba_commits += (i64)S->nba_scratch.size();\n"
        "  for (const Nba& e : S->nba_scratch) {\n"
        "    if (kALen[e.sig] > 0) {\n"
        "      setel(S, e.sig, e.index, e.value);\n"
        "    } else if (e.index >= 0) {  // nonblocking bit write, RMW\n"
        "      if (e.index < kWidth[e.sig]) {\n"
        "        const u64 old = S->v[e.sig];\n"
        "        set_sig(S, e.sig, (old & ~(1ull << e.index)) | ((e.value & "
        "1ull) << e.index), -1);\n"
        "      }\n"
        "    } else {\n"
        "      set_sig(S, e.sig, e.value, -1);\n"
        "    }\n"
        "  }\n}\n\n";

  os << "static int settle(St* S, i64 budget) {\n"
        "  S->slot_base = S->instrs;\n"
        "  for (;;) {\n"
        "    if (S->comb_dirty) { S->comb_dirty = false; flush(S); }\n"
        "    if (S->ready_count > 0) {\n"
        "      int p = 0;\n"
        "      while (!S->ready[p]) ++p;\n"
        "      const int r = run_proc(S, p, budget);\n"
        "      if (r) return r;\n"
        "      continue;\n"
        "    }\n"
        "    if (S->nba.empty()) break;\n"
        "    commit_nba(S);\n"
        "    ++S->delta_cycles;\n"
        "  }\n"
        "  return 0;\n}\n"
        "}  // namespace\n\n";

  // ABI. Keep in sync with CodegenModule (codegen.h); bump kCgAbi there
  // when anything below changes shape.
  os << "extern \"C\" {\n"
        "int hlsw_cg_abi() { return 1; }\n"
        "void* hlsw_cg_create() {\n  St* s = new St();\n";
  for (std::size_t i = 0; i < nsig; ++i)
    if (d.signals[i].array_len == 0 && d.signals[i].has_init)
      os << "  s->v[" << i << "] = "
         << hx(static_cast<std::uint64_t>(d.signals[i].init) & cd.sig_mask[i])
         << ";\n";
  for (std::size_t p = 0; p < nproc; ++p)
    if (cd.procs[p].initially_ready)
      os << "  s->ready[" << p << "] = 1;\n  ++s->ready_count;\n";
  os << "  return s;\n}\n"
        "void hlsw_cg_destroy(void* p) { delete (St*)p; }\n"
        "void hlsw_cg_poke(void* p, int sig, u64 v) { set_sig((St*)p, sig, "
        "v, -1); }\n"
        "u64 hlsw_cg_peek(void* p, int sig) { return ((St*)p)->v[sig]; }\n"
        "u64 hlsw_cg_peek_elem(void* p, int sig, int idx) {\n"
        "  const u64* A = arrp((St*)p, sig);\n"
        "  return A ? A[idx] : 0;\n}\n"
        "int hlsw_cg_settle(void* p, long long budget) { return "
        "settle((St*)p, budget); }\n"
        "void hlsw_cg_stats(void* p, long long* out) {\n"
        "  const St* s = (const St*)p;\n"
        "  out[0] = s->events; out[1] = s->nba_commits;\n"
        "  out[2] = s->delta_cycles; out[3] = s->instrs; out[4] = "
        "s->flushes;\n}\n"
        "}\n";
  return os.str();
}

// ---- Build + load -----------------------------------------------------------

namespace {

constexpr int kCgAbi = 1;

std::string fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::filesystem::path cache_dir() {
  if (const char* e = std::getenv("HLSW_VSIM_CODEGEN_CACHE"))
    if (*e) return e;
  return std::filesystem::temp_directory_path() / "hlsw-vsim-codegen";
}

struct LoadedModule {
  void* handle = nullptr;
  std::string error;
};

// dlopen + fingerprint/ABI verification. The handle is never dlclose()d:
// generated code may be referenced by live CodegenSims for the process
// lifetime, and re-opening the same path returns the same handle anyway.
LoadedModule open_and_verify(const std::filesystem::path& so,
                             const std::string& fp) {
  LoadedModule m;
  m.handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (m.handle == nullptr) {
    const char* e = dlerror();
    m.error = e ? e : "dlopen failed";
    return m;
  }
  const auto fp_fn =
      reinterpret_cast<const char* (*)()>(dlsym(m.handle, "hlsw_cg_fp"));
  const auto abi_fn =
      reinterpret_cast<int (*)()>(dlsym(m.handle, "hlsw_cg_abi"));
  if (fp_fn == nullptr || abi_fn == nullptr || abi_fn() != kCgAbi ||
      fp != fp_fn()) {
    m.handle = nullptr;
    m.error = "cached shared object failed fingerprint/ABI verification";
  }
  return m;
}

// Builds (or reuses) the shared object for `src` and resolves the entry
// points into *mod. Returns false with a reason in *why.
bool build_module(const CompiledDesign& cd, std::string src,
                  CodegenModule* mod, std::string* why) {
  const std::string cxx = codegen_toolchain();
  if (cxx.empty()) {
    *why = "no host toolchain (set CXX or HLSW_CODEGEN_CXX)";
    return false;
  }
  (void)cd;
  // The fingerprint covers the generated text; the embedded fp symbol is
  // appended after hashing so the hash stays well-defined.
  const std::string fp = fnv1a(src);
  src += "\nextern \"C\" const char* hlsw_cg_fp() { return \"" + fp +
         "\"; }\n";

  obs::ScopedSpan span("vsim.codegen.compile", "vsim");
  const std::filesystem::path dir = cache_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path so = dir / (fp + ".so");
  const std::filesystem::path cpp = dir / (fp + ".cpp");
  const std::filesystem::path log = dir / (fp + ".log");

  // One compilation at a time per process; cross-process races are settled
  // by the atomic rename below (last writer wins, both artifacts valid).
  static std::mutex build_mu;
  std::lock_guard<std::mutex> lk(build_mu);

  const bool metrics = obs::enabled();
  LoadedModule lm;
  bool cache_hit = false;
  if (std::filesystem::exists(so, ec)) {
    lm = open_and_verify(so, fp);
    cache_hit = lm.handle != nullptr;
  }
  if (!cache_hit) {
    {
      std::ofstream f(cpp);
      f << src;
      if (!f) {
        *why = "cannot write " + cpp.string();
        return false;
      }
    }
    const std::filesystem::path tmp =
        dir / (fp + ".so.tmp" + std::to_string(::getpid()));
    const std::string cmd = cxx + " -std=c++17 -O2 -fPIC -shared -o '" +
                            tmp.string() + "' '" + cpp.string() + "' > '" +
                            log.string() + "' 2>&1";
    if (metrics)
      obs::MetricsRegistry::instance().add("vsim.codegen.compiles", 1.0);
    if (std::system(cmd.c_str()) != 0) {
      std::string excerpt;
      std::ifstream lf(log);
      std::string line;
      for (int i = 0; i < 3 && std::getline(lf, line); ++i)
        excerpt += (excerpt.empty() ? "" : " | ") + line;
      std::filesystem::remove(tmp, ec);
      *why = "toolchain '" + cxx + "' failed (" +
             (excerpt.empty() ? "see " + log.string() : excerpt) + ")";
      return false;
    }
    std::filesystem::rename(tmp, so, ec);
    if (ec) {
      *why = "cannot install " + so.string() + ": " + ec.message();
      return false;
    }
    lm = open_and_verify(so, fp);
    if (lm.handle == nullptr) {
      *why = "freshly built shared object failed to load: " + lm.error;
      return false;
    }
  }
  if (metrics)
    obs::MetricsRegistry::instance().add(
        cache_hit ? "vsim.codegen.so_cache.hits"
                  : "vsim.codegen.so_cache.misses",
        1.0);
  if (span.active()) {
    span.arg("fingerprint", fp);
    span.arg("cached", cache_hit ? 1LL : 0LL);
    span.arg("cxx", cxx);
    span.arg("bytes", static_cast<long long>(src.size()));
  }

  mod->fingerprint = fp;
  mod->so_path = so.string();
  const auto sym = [&](const char* name) { return dlsym(lm.handle, name); };
  mod->create = reinterpret_cast<void* (*)()>(sym("hlsw_cg_create"));
  mod->destroy = reinterpret_cast<void (*)(void*)>(sym("hlsw_cg_destroy"));
  mod->poke = reinterpret_cast<void (*)(void*, int, std::uint64_t)>(
      sym("hlsw_cg_poke"));
  mod->peek =
      reinterpret_cast<std::uint64_t (*)(void*, int)>(sym("hlsw_cg_peek"));
  mod->peek_elem = reinterpret_cast<std::uint64_t (*)(void*, int, int)>(
      sym("hlsw_cg_peek_elem"));
  mod->settle =
      reinterpret_cast<int (*)(void*, long long)>(sym("hlsw_cg_settle"));
  mod->stats =
      reinterpret_cast<void (*)(void*, long long*)>(sym("hlsw_cg_stats"));
  if (!mod->create || !mod->destroy || !mod->poke || !mod->peek ||
      !mod->peek_elem || !mod->settle || !mod->stats) {
    *why = "generated shared object is missing entry points";
    return false;
  }
  return true;
}

struct CodegenCache {
  struct Entry {
    std::weak_ptr<const CompiledDesign> key;
    std::shared_ptr<const CodegenModule> mod;
    std::string why;
  };
  std::mutex mu;
  std::map<const CompiledDesign*, Entry> map;
};

CodegenCache& codegen_cache() {
  static auto* c = new CodegenCache;  // leaked: alive for process teardown
  return *c;
}

}  // namespace

std::shared_ptr<const CodegenModule> codegen_plan(
    const std::shared_ptr<const Design>& design, std::string* why) {
  const bool metrics = obs::enabled();
  const auto fall = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    if (metrics)
      obs::MetricsRegistry::instance().add("vsim.codegen.fallbacks", 1.0);
    return nullptr;
  };

  // Toolchain availability is decided BEFORE the memo so disabling codegen
  // (HLSW_CODEGEN_CXX=none) never poisons the per-design cache.
  if (!codegen_available())
    return fall("no host toolchain (set CXX or HLSW_CODEGEN_CXX)");

  std::string cwhy;
  const auto plan = compiled_plan(design, &cwhy);
  if (plan == nullptr) return fall(cwhy);

  CodegenCache& c = codegen_cache();
  {
    std::lock_guard<std::mutex> lk(c.mu);
    const auto it = c.map.find(plan.get());
    if (it != c.map.end() && !it->second.key.expired()) {
      if (it->second.mod != nullptr) return it->second.mod;
      return fall(it->second.why);
    }
  }

  const auto memoize = [&](std::shared_ptr<const CodegenModule> mod,
                           const std::string& reason) {
    std::lock_guard<std::mutex> lk(c.mu);
    if (c.map.size() > 64) {
      for (auto it = c.map.begin(); it != c.map.end();)
        it = it->second.key.expired() ? c.map.erase(it) : std::next(it);
    }
    CodegenCache::Entry e;
    e.key = plan;
    e.mod = std::move(mod);
    e.why = reason;
    c.map[plan.get()] = std::move(e);
  };

  // Typed refusals: system tasks stay on the interpreter tiers, which own
  // the display log and the VCD writer.
  for (const PInstr& in : plan->prog) {
    if (in.code == PInstr::kDisplay || in.code == PInstr::kDumpFile ||
        in.code == PInstr::kDumpVars) {
      const std::string reason =
          "$display/$dump system tasks stay on the interpreter backends";
      memoize(nullptr, reason);
      return fall(reason);
    }
  }

  auto mod = std::make_shared<CodegenModule>();
  mod->plan = plan;
  std::string bwhy;
  if (!build_module(*plan, codegen_source(*plan), mod.get(), &bwhy)) {
    memoize(nullptr, bwhy);
    return fall(bwhy);
  }
  memoize(mod, "");
  return mod;
}

// ---- CodegenSim -------------------------------------------------------------

CodegenSim::CodegenSim(std::shared_ptr<const CodegenModule> mod,
                       const SimConfig& cfg)
    : mod_(std::move(mod)), cfg_(cfg) {
  st_ = mod_->create();
  settle();  // time 0: all comb evaluates once, initial bodies run
}

CodegenSim::~CodegenSim() {
  if (st_ != nullptr) {
    if (obs::enabled()) {
      long long o[5] = {};
      mod_->stats(st_, o);
      obs::MetricsRegistry::instance().add("vsim.codegen.flushes",
                                           static_cast<double>(o[4]));
    }
    mod_->destroy(st_);
  }
}

void CodegenSim::poke(int sig, std::uint64_t value) {
  mod_->poke(st_, sig, value);
}

long long CodegenSim::peek_signed(int sig) const {
  const int w =
      mod_->plan->design->signals[static_cast<std::size_t>(sig)].width;
  std::uint64_t v = peek(sig);
  if (w < 64 && ((v >> (w - 1)) & 1))
    v |= ~((w >= 64 ? ~0ULL : (1ULL << w) - 1ULL));
  return static_cast<long long>(v);
}

std::uint64_t CodegenSim::peek_elem(int sig, int index) const {
  const Signal& s =
      mod_->plan->design->signals[static_cast<std::size_t>(sig)];
  if (index < 0 || index >= s.array_len)
    fail("element " + std::to_string(index) + " out of range for '" +
         s.name + "'");
  return mod_->peek_elem(st_, sig, index);
}

void CodegenSim::settle() {
  const int r = mod_->settle(st_, cfg_.max_instrs_per_slot);
  if (r != 0)
    fail("instruction budget exceeded without time advancing "
         "(zero-delay loop in " +
         mod_->plan->procs[static_cast<std::size_t>(r - 1)].origin + "?)");
}

RunResult CodegenSim::run() {
  obs::ScopedSpan span("vsim.run", "vsim");
  if (span.active()) span.arg("backend", "codegen");
  settle();
  if (obs::enabled()) {
    const SimStats& s = stats();
    auto& m = obs::MetricsRegistry::instance();
    m.add("vsim.events", static_cast<double>(s.events));
    m.add("vsim.nba_commits", static_cast<double>(s.nba_commits));
  }
  RunResult r;
  r.end_time = 0;
  return r;
}

const SimStats& CodegenSim::stats() const {
  long long o[5] = {};
  mod_->stats(st_, o);
  stats_.events = o[0];
  stats_.nba_commits = o[1];
  stats_.delta_cycles = o[2];
  stats_.instrs = o[3];
  return stats_;
}

}  // namespace hlsw::vsim
