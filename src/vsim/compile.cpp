#include "vsim/compile.h"

#include <algorithm>
#include <cctype>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtl/vcd.h"

namespace hlsw::vsim {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("vsim runtime error: " + what);
}

inline std::uint64_t umask(int w) {
  return w >= 64 ? ~0ULL : (1ULL << w) - 1ULL;
}

inline long long s64(std::uint64_t v, int w) {
  if (w < 64 && ((v >> (w - 1)) & 1)) v |= ~umask(w);
  return static_cast<long long>(v);
}

// Same semantics as Simulation::extend — compile-time constant folding for
// number literals reuses it directly.
inline std::uint64_t extend_bits(std::uint64_t v, int from, int to, bool sgn) {
  if (to <= from) return v & umask(to);
  if (sgn && ((v >> (from - 1)) & 1)) v |= ~umask(from);
  return v & umask(to);
}

// Thrown anywhere during compilation to mean "this design keeps the
// event-driven engine" — never an error, always a graceful fallback.
struct FallbackError {
  std::string why;
};

[[noreturn]] void fallback(std::string why) { throw FallbackError{std::move(why)}; }

// True when the op reads a scalar signal's stored value (val_[o.a]).
// The xL superinstructions hide a kLoad, so every pass that reasons about
// read sites (fanout CSR, eager closure, lazy forcing) must go through
// this predicate rather than matching kLoad* directly.
inline bool reads_scalar(const TOp& o) {
  switch (o.code) {
    case TOp::kLoad:
    case TOp::kLoadSx:
    case TOp::kLoadTr:
    case TOp::kAddL:
    case TOp::kSubL:
    case TOp::kMulL:
    case TOp::kAndL:
    case TOp::kOrL:
    case TOp::kXorL:
    case TOp::kConcatL:
    case TOp::kRangeL:
    case TOp::kLoadShlC:
      return true;
    default:
      return false;
  }
}

// True when the op reads a register-file array (arr_[o.a]).
inline bool reads_array(const TOp& o) {
  return o.code == TOp::kLoadElem || o.code == TOp::kLoadElemSx ||
         o.code == TOp::kLoadElemTr;
}

// ---- Expression tapes -------------------------------------------------------

// Flattens annotated Exprs into TOp tapes, resolving the event kernel's
// eval(e, ctx_w, ctx_sgn) context propagation at compile time. The
// invariant mirrored from eval(): after cx(e, W, S) the value on the stack
// is masked to W bits.
struct TapeBuilder {
  CompiledDesign* cd;
  const Design* d;

  void op(TOp::Code c, std::uint8_t w = 0, std::int32_t a = 0,
          std::uint64_t imm = 0) {
    cd->ops.push_back(TOp{c, w, a, imm});
  }

  // Emits the extend(v, from, W, S) step. Values are masked to `from`
  // already, so unsigned widening is free. When the value on top of the
  // stack was just pushed by a kLoad, the extend is folded into the load
  // (kLoadSx / kLoadTr) — signal reads in a wider signed context dominate
  // the emitted datapath, and this halves their dispatch count.
  void ext(int from, int W, bool S) {
    if (W == from) return;
    if (W < from) {
      if (!cd->ops.empty() && cd->ops.back().code == TOp::kLoad) {
        cd->ops.back().code = TOp::kLoadTr;
        cd->ops.back().imm = umask(W);
        return;
      }
      op(TOp::kTrunc, 0, 0, umask(W));
      return;
    }
    if (S) {
      if (!cd->ops.empty() && cd->ops.back().code == TOp::kLoad) {
        cd->ops.back().code = TOp::kLoadSx;
        cd->ops.back().w = static_cast<std::uint8_t>(from);
        cd->ops.back().imm = umask(W);
        return;
      }
      op(TOp::kSext, static_cast<std::uint8_t>(from), 0, umask(W));
    }
  }

  void cx_self(const Expr& e) { cx(e, e.self_w, e.self_sgn); }

  // Compiles an index expression (array element / bit select): value is
  // self-determined, then reinterpreted as signed 64-bit if its
  // self-determined type is signed (eval_signed_self).
  void cx_index(const Expr& e) {
    cx_self(e);
    if (e.self_sgn)
      op(TOp::kToSigned, static_cast<std::uint8_t>(e.self_w));
  }

  void cx(const Expr& e, int W, bool S) {
    switch (e.kind) {
      case ExprKind::kNumber:
        op(TOp::kConst, 0, 0,
           extend_bits(e.num & umask(e.self_w), e.self_w, W, S));
        return;
      case ExprKind::kString:
        fallback("string literal used as a value");
      case ExprKind::kIdent: {
        if (e.sig < 0) fallback("unresolved identifier");
        const Signal& s = d->signals[static_cast<size_t>(e.sig)];
        if (s.array_len > 0)
          fallback("register file '" + s.name +
                   "' used without an element select");
        op(TOp::kLoad, 0, e.sig);
        ext(e.self_w, W, S);
        return;
      }
      case ExprKind::kSelect: {
        const Expr& base = *e.kids[0];
        if (base.kind == ExprKind::kIdent && base.sig >= 0 &&
            d->signals[static_cast<size_t>(base.sig)].array_len > 0) {
          cx_index(*e.kids[1]);
          op(TOp::kLoadElem, 0, base.sig);
          ext(e.self_w, W, S);
          return;
        }
        cx_self(base);
        cx_index(*e.kids[1]);
        op(TOp::kBitSel, static_cast<std::uint8_t>(base.self_w));
        ext(1, W, S);
        return;
      }
      case ExprKind::kRange:
        cx_self(*e.kids[0]);
        op(TOp::kRange, 0, e.lo, umask(e.self_w));
        ext(e.self_w, W, S);
        return;
      case ExprKind::kUnary: {
        const std::string& o = e.name;
        if (o == "-") {
          cx(*e.kids[0], W, S);
          op(TOp::kNeg, 0, 0, umask(W));
          return;
        }
        if (o == "+") {
          cx(*e.kids[0], W, S);
          return;
        }
        if (o == "~") {
          cx(*e.kids[0], W, S);
          op(TOp::kNot, 0, 0, umask(W));
          return;
        }
        // Reductions and ! are self-determined 1-bit boundaries.
        cx_self(*e.kids[0]);
        const int w = e.kids[0]->self_w;
        if (o == "!") op(TOp::kLNot);
        else if (o == "&") op(TOp::kRedAnd, 0, 0, umask(w));
        else if (o == "~&") op(TOp::kRedNand, 0, 0, umask(w));
        else if (o == "|") op(TOp::kRedOr);
        else if (o == "~|") op(TOp::kRedNor);
        else if (o == "^") op(TOp::kRedXor);
        else if (o == "~^" || o == "^~") op(TOp::kRedXnor);
        else fallback("unknown unary operator '" + o + "'");
        ext(1, W, S);
        return;
      }
      case ExprKind::kBinary: {
        const std::string& o = e.name;
        const Expr& k0 = *e.kids[0];
        const Expr& k1 = *e.kids[1];
        if (o == "&&" || o == "||") {
          cx_self(k0);
          op(TOp::kNeZero);
          cx_self(k1);
          op(TOp::kNeZero);
          op(o == "&&" ? TOp::kAnd : TOp::kOr);
          ext(1, W, S);
          return;
        }
        if (o == "==" || o == "!=" || o == "===" || o == "!==" || o == "<" ||
            o == "<=" || o == ">" || o == ">=") {
          const int wc = std::max(k0.self_w, k1.self_w);
          const bool sc = k0.self_sgn && k1.self_sgn;
          cx(k0, wc, sc);
          cx(k1, wc, sc);
          const auto cw = static_cast<std::uint8_t>(wc);
          if (o == "==" || o == "===") op(TOp::kEq);
          else if (o == "!=" || o == "!==") op(TOp::kNe);
          else if (o == "<") op(sc ? TOp::kLtS : TOp::kLtU, cw);
          else if (o == "<=") op(sc ? TOp::kLeS : TOp::kLeU, cw);
          else if (o == ">") op(sc ? TOp::kGtS : TOp::kGtU, cw);
          else op(sc ? TOp::kGeS : TOp::kGeU, cw);
          ext(1, W, S);
          return;
        }
        if (o == "<<" || o == "<<<" || o == ">>" || o == ">>>") {
          cx(k0, W, S);
          cx_self(k1);
          if (o == "<<" || o == "<<<")
            op(TOp::kShl, 0, 0, umask(W));
          else if (o == ">>" || !S)
            op(TOp::kShrU);
          else
            op(TOp::kShrS, static_cast<std::uint8_t>(W), 0, umask(W));
          return;
        }
        cx(k0, W, S);
        cx(k1, W, S);
        const auto ww = static_cast<std::uint8_t>(W);
        const std::uint64_t m = umask(W);
        if (o == "+") op(TOp::kAdd, 0, 0, m);
        else if (o == "-") op(TOp::kSub, 0, 0, m);
        else if (o == "*") op(TOp::kMul, 0, 0, m);
        else if (o == "/") op(S ? TOp::kDivS : TOp::kDivU, ww, 0, m);
        else if (o == "%") op(S ? TOp::kModS : TOp::kModU, ww, 0, m);
        else if (o == "&") op(TOp::kAnd);
        else if (o == "|") op(TOp::kOr);
        else if (o == "^") op(TOp::kXor);
        else if (o == "~^" || o == "^~") op(TOp::kXnorB, 0, 0, m);
        else fallback("unknown binary operator '" + o + "'");
        return;
      }
      case ExprKind::kTernary:
        // The event kernel evaluates only the taken branch; compiled
        // expressions are pure (no side effects, total semantics), so
        // evaluating both and selecting is observably identical.
        cx_self(*e.kids[0]);
        cx(*e.kids[1], W, S);
        cx(*e.kids[2], W, S);
        op(TOp::kMux);
        return;
      case ExprKind::kConcat: {
        for (std::size_t i = 0; i < e.kids.size(); ++i) {
          cx_self(*e.kids[i]);
          if (i > 0)
            op(TOp::kConcatAcc,
               static_cast<std::uint8_t>(e.kids[i]->self_w));
        }
        ext(e.self_w, W, S);
        return;
      }
      case ExprKind::kReplicate: {
        const Expr& k = *e.kids[1];
        cx_self(k);
        op(TOp::kRepl, static_cast<std::uint8_t>(k.self_w),
           static_cast<std::int32_t>(e.repl));
        ext(e.self_w, W, S);
        return;
      }
      case ExprKind::kSysCall:
        if (e.name == "$time") {
          op(TOp::kTime);
          ext(64, W, S);
          return;
        }
        // $signed/$unsigned: self-determined argument, reinterpreted.
        cx_self(*e.kids[0]);
        ext(e.self_w, W, S);
        return;
    }
    fallback("unreachable expression kind");
  }

  // Per-op stack effect, used to size the evaluation stack once.
  static int delta(TOp::Code c) {
    switch (c) {
      case TOp::kConst:
      case TOp::kLoad:
      case TOp::kLoadSx:
      case TOp::kLoadTr:
      case TOp::kTime:
      case TOp::kRangeL:
      case TOp::kLoadShlC:
        return 1;
      case TOp::kBitSel:
      case TOp::kAnd:
      case TOp::kOr:
      case TOp::kXor:
      case TOp::kXnorB:
      case TOp::kAdd:
      case TOp::kSub:
      case TOp::kMul:
      case TOp::kDivU:
      case TOp::kModU:
      case TOp::kDivS:
      case TOp::kModS:
      case TOp::kEq:
      case TOp::kNe:
      case TOp::kLtU:
      case TOp::kLeU:
      case TOp::kGtU:
      case TOp::kGeU:
      case TOp::kLtS:
      case TOp::kLeS:
      case TOp::kGtS:
      case TOp::kGeS:
      case TOp::kShl:
      case TOp::kShrU:
      case TOp::kShrS:
      case TOp::kConcatAcc:
        return -1;
      case TOp::kMux:
        return -2;
      default:
        return 0;
    }
  }

  // Only set during the netlist fusion pass, once signal read sites are
  // final: a kLoad folded into an xL superinstruction can no longer be
  // spliced away, so original tapes are built without load folding and
  // only exec/process re-seals enable it.
  bool fuse_loads = false;

  // Attempts to merge `o` into the preceding op `p` (the value `o`
  // consumes from the top of the stack). Returns true when `o` was
  // absorbed. Constants fold fully; a constant or plain load feeding a
  // binop becomes one superinstruction (xC / xL families).
  bool try_fold(TOp& p, const TOp& o) {
    const bool p_const = p.code == TOp::kConst;
    const bool p_load = p.code == TOp::kLoad;
    const bool c_fits = p_const && p.imm <= 0xFFFFFFFFull;
    const auto c32 = [&] {
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(p.imm));
    };
    switch (o.code) {
      case TOp::kTrunc:
        switch (p.code) {
          case TOp::kConst:
          case TOp::kLoadTr:
          case TOp::kLoadElemTr:
          case TOp::kTrunc:
          case TOp::kRange:
            // For these the stored imm is already a pure result mask (or
            // the constant itself) — intersecting masks composes.
          case TOp::kLoadSx:
          case TOp::kLoadElemSx:
          case TOp::kSext:
          case TOp::kNeg:
          case TOp::kNot:
          case TOp::kXnorB:
          case TOp::kAdd:
          case TOp::kSub:
          case TOp::kMul:
          case TOp::kShl:
          case TOp::kShrS:
          case TOp::kAddC:
          case TOp::kSubC:
          case TOp::kMulC:
          case TOp::kShlC:
          case TOp::kAddL:
          case TOp::kSubL:
          case TOp::kMulL:
          case TOp::kRangeL:
          case TOp::kLoadShlC:
            p.imm &= o.imm;
            return true;
          case TOp::kLoad:
            p.code = TOp::kLoadTr;
            p.imm = o.imm;
            return true;
          case TOp::kLoadElem:
            p.code = TOp::kLoadElemTr;
            p.imm = o.imm;
            return true;
          default:
            return false;
        }
      case TOp::kSext:
        if (p_const) {
          if (o.w < 64 && ((p.imm >> (o.w - 1)) & 1)) p.imm |= ~umask(o.w);
          p.imm &= o.imm;
          return true;
        }
        if (p_load) {
          p.code = TOp::kLoadSx;
          p.w = o.w;
          p.imm = o.imm;
          return true;
        }
        if (p.code == TOp::kLoadElem && p.w == 0) {
          // p.w != 0 already carries a folded index sign-extend; the
          // value extend must stay a separate op then.
          p.code = TOp::kLoadElemSx;
          p.w = o.w;
          p.imm = o.imm;
          return true;
        }
        return false;
      case TOp::kLoadElem:
        // A sign-extended index (cx_index) folds into the element load
        // itself; kSext with an all-ones mask is exactly that pattern.
        if (p.code == TOp::kSext && p.imm == ~0ull && o.w == 0) {
          p = TOp{TOp::kLoadElem, p.w, o.a, 0};
          return true;
        }
        return false;
      case TOp::kRange:
        if (p_const) {
          p.imm = (p.imm >> o.a) & o.imm;
          return true;
        }
        if (p_load && fuse_loads && o.a < 64) {
          p = TOp{TOp::kRangeL, static_cast<std::uint8_t>(o.a), p.a, o.imm};
          return true;
        }
        return false;
      case TOp::kShlC:
        // Only reachable through the cascade recheck (kShlC is itself a
        // fold product, never raw emission).
        if (p_load && fuse_loads) {
          p = TOp{TOp::kLoadShlC, static_cast<std::uint8_t>(o.a), p.a,
                  o.imm};
          return true;
        }
        return false;
      case TOp::kNeg:
        if (!p_const) return false;
        p.imm = (0 - p.imm) & o.imm;
        return true;
      case TOp::kNot:
        if (!p_const) return false;
        p.imm = ~p.imm & o.imm;
        return true;
      case TOp::kRepl:
        if (!p_const) return false;
        {
          std::uint64_t v = 0;
          for (std::int32_t i = 0; i < o.a; ++i) v = (v << o.w) | p.imm;
          p.imm = v;
        }
        return true;
      case TOp::kBitSel:
        // The constant is the (signed) index; the base stays on the stack
        // and the pair collapses to an op on it.
        if (!p_const) return false;
        {
          const auto idx = static_cast<long long>(p.imm);
          if (idx >= 0 && idx < o.w) {
            p = TOp{TOp::kRange, 0, static_cast<std::int32_t>(idx), 1};
          } else {
            p = TOp{TOp::kTrunc, 0, 0, 0};  // out of range: base -> 0
          }
        }
        return true;
      case TOp::kAdd:
        if (c_fits) { p = TOp{TOp::kAddC, 0, c32(), o.imm}; return true; }
        if (p_load && fuse_loads) {
          p.code = TOp::kAddL;
          p.imm = o.imm;
          return true;
        }
        return false;
      case TOp::kSub:
        if (c_fits) { p = TOp{TOp::kSubC, 0, c32(), o.imm}; return true; }
        if (p_load && fuse_loads) {
          p.code = TOp::kSubL;
          p.imm = o.imm;
          return true;
        }
        return false;
      case TOp::kMul:
        if (c_fits) { p = TOp{TOp::kMulC, 0, c32(), o.imm}; return true; }
        if (p_load && fuse_loads) {
          p.code = TOp::kMulL;
          p.imm = o.imm;
          return true;
        }
        return false;
      case TOp::kAnd:
        if (p_const) { p = TOp{TOp::kTrunc, 0, 0, p.imm}; return true; }
        if (p_load && fuse_loads) {
          p.code = TOp::kAndL;
          p.imm = 0;
          return true;
        }
        return false;
      case TOp::kOr:
        if (p_const) { p.code = TOp::kOrC; return true; }
        if (p_load && fuse_loads) {
          p.code = TOp::kOrL;
          p.imm = 0;
          return true;
        }
        return false;
      case TOp::kXor:
        if (p_const) { p.code = TOp::kXorC; return true; }
        if (p_load && fuse_loads) {
          p.code = TOp::kXorL;
          p.imm = 0;
          return true;
        }
        return false;
      case TOp::kShl:
        if (!p_const) return false;
        if (p.imm >= 64) {
          p = TOp{TOp::kTrunc, 0, 0, 0};  // whole base shifted out
        } else {
          p = TOp{TOp::kShlC, 0, c32(), o.imm};
        }
        return true;
      case TOp::kConcatAcc:
        // Safe for any plain kLoad / small const: both are masked to at
        // most the kid's context width `w`, so OR-ing under the shifted
        // accumulator cannot clobber its bits.
        if (c_fits) {
          p = TOp{TOp::kConcatC, o.w, c32(), 0};
          return true;
        }
        if (p_load && fuse_loads) {
          p.code = TOp::kConcatL;
          p.w = o.w;
          return true;
        }
        return false;
      default:
        return false;
    }
  }

  // Peephole pass run when a tape is sealed: canonicalizes kToSigned into
  // kSext, folds constant subexpressions, and forms superinstructions so
  // the interpreter dispatches common (operand, binop) pairs once. Folds
  // cascade: a fold leaves its result as the new "previous" op for the
  // next iteration ([kConst][kSext][kTrunc] collapses to one kConst).
  void compact(std::uint32_t begin) {
    auto& v = cd->ops;
    std::size_t w = begin;
    for (std::size_t r = begin; r < v.size(); ++r) {
      TOp o = v[r];
      if (o.code == TOp::kToSigned) {
        if (o.w >= 64) continue;  // no-op at full width
        o = TOp{TOp::kSext, o.w, 0, ~0ull};
      }
      // Replicating a single bit is a negate-under-mask (all-ones or
      // zero) — kills the per-repetition interpreter loop.
      if (o.code == TOp::kRepl && o.w == 1) o = TOp{TOp::kNeg, 0, 0, umask(o.a)};
      if (w > begin && try_fold(v[w - 1], o)) {
        // A fold product can expose a new pair with the op before it
        // ([kLoad][kConst][kShl]: const+shl -> kShlC, then
        // load+kShlC -> kLoadShlC), so cascade backwards.
        while (w - 1 > begin && try_fold(v[w - 2], v[w - 1])) --w;
        continue;
      }
      v[w++] = o;
    }
    v.resize(w);
  }

  // Seals the ops emitted since `begin` into a registered TapeRef:
  // runs the superinstruction peephole, appends the kHalt sentinel the
  // interpreter loop stops on and sizes the shared evaluation stack.
  int finish_tape(std::uint32_t begin, int w, bool sgn) {
    compact(begin);
    op(TOp::kHalt);
    TapeRef t;
    t.begin = begin;
    t.len = static_cast<std::uint32_t>(cd->ops.size()) - begin;
    t.w = static_cast<std::uint8_t>(w);
    t.sgn = sgn;
    int depth = 0, max_depth = 0;
    for (std::uint32_t i = begin; i < begin + t.len; ++i) {
      depth += delta(cd->ops[i].code);
      max_depth = std::max(max_depth, depth);
    }
    cd->max_stack = std::max(cd->max_stack, max_depth);
    cd->tapes.push_back(t);
    return static_cast<int>(cd->tapes.size()) - 1;
  }

  int make_tape(const Expr& e, int W, bool S) {
    const auto begin = static_cast<std::uint32_t>(cd->ops.size());
    cx(e, W, S);
    return finish_tape(begin, e.self_w, e.self_sgn);
  }

  int make_tape_self(const Expr& e) { return make_tape(e, e.self_w, e.self_sgn); }

  // Statement-level index tapes carry the signed reinterpretation inline
  // so the engine can read them as plain int64.
  int make_index_tape(const Expr& e) {
    const auto begin = static_cast<std::uint32_t>(cd->ops.size());
    cx_index(e);
    return finish_tape(begin, 64, e.self_sgn);
  }
};

// ---- Process programs -------------------------------------------------------

struct ProgBuilder {
  CompiledDesign* cd;
  TapeBuilder* tb;
  const Design* d;

  int size() const { return static_cast<int>(cd->prog.size()); }
  int emit(PInstr in) {
    cd->prog.push_back(in);
    return size() - 1;
  }

  void assign(const Stmt& st, bool nonblocking) {
    const Expr& lhs = *st.lhs;
    const Expr& rhs = *st.rhs;
    // Assignment context: max(lhs, rhs) width with the RHS's signedness,
    // exactly like Simulation::exec_assign.
    const int w = std::max(lhs.self_w, rhs.self_w);
    PInstr in;
    if (lhs.kind == ExprKind::kIdent) {
      if (lhs.sig < 0) fallback("unresolved assignment target");
      if (d->signals[static_cast<size_t>(lhs.sig)].array_len > 0)
        fallback("whole-array assignment target");
      in.sig = lhs.sig;
      // reg <= wire copies and state <= CONST dominate the emitted FSM's
      // arms; both skip the tape interpreter entirely. A copy is exact
      // when the RHS needs no extension into the assignment context
      // (unsigned zero-extends for free; equal-width never extends).
      if (rhs.kind == ExprKind::kNumber) {
        in.code = nonblocking ? PInstr::kNbConst : PInstr::kAssignConst;
        in.imm = extend_bits(rhs.num & umask(rhs.self_w), rhs.self_w, w,
                             rhs.self_sgn) &
                 umask(d->signals[static_cast<size_t>(lhs.sig)].width);
        emit(in);
        return;
      }
      if (rhs.kind == ExprKind::kIdent && rhs.sig >= 0 &&
          d->signals[static_cast<size_t>(rhs.sig)].array_len == 0 &&
          (!rhs.self_sgn || rhs.self_w >= w)) {
        in.code = nonblocking ? PInstr::kNbCopy : PInstr::kAssignCopy;
        in.a = rhs.sig;
        emit(in);
        return;
      }
      in.t0 = tb->make_tape(rhs, w, rhs.self_sgn);
      in.code = nonblocking ? PInstr::kNb : PInstr::kAssign;
      emit(in);
      return;
    }
    in.t0 = tb->make_tape(rhs, w, rhs.self_sgn);
    if (lhs.kind != ExprKind::kSelect) fallback("unsupported assignment target");
    const Expr& base = *lhs.kids[0];
    if (base.kind != ExprKind::kIdent || base.sig < 0)
      fallback("unsupported assignment target");
    in.sig = base.sig;
    in.t1 = tb->make_index_tape(*lhs.kids[1]);
    if (d->signals[static_cast<size_t>(base.sig)].array_len > 0)
      in.code = nonblocking ? PInstr::kNbElem : PInstr::kAssignElem;
    else
      in.code = nonblocking ? PInstr::kNbBit : PInstr::kAssignBit;
    emit(in);
  }

  // The hot shape of `case` — the emitted FSM's state dispatch — is an
  // unsigned scalar subject with all-constant labels. The subject being
  // unsigned makes every pairwise comparison context unsigned (sc =
  // subj_sgn && label_sgn), so both sides zero-extend — label signedness
  // is irrelevant (folded localparams and unsized decimal literals are
  // signed). Equality over the shared context is then raw u64 equality of
  // the masked values and the whole chain collapses into one table lookup
  // (kCaseJump).
  bool case_jump_eligible(const Stmt& st) const {
    const Expr& subject = *st.cond;
    if (subject.kind != ExprKind::kIdent || subject.sig < 0 ||
        subject.self_sgn)
      return false;
    if (d->signals[static_cast<size_t>(subject.sig)].array_len > 0)
      return false;
    for (const auto& item : st.items) {
      if (item.is_default) continue;
      if (item.labels.empty()) fallback("case item without labels");
      for (const auto& label : item.labels)
        if (label->kind != ExprKind::kNumber) return false;
    }
    return true;
  }

  void case_jump(const Stmt& st) {
    PInstr in;
    in.code = PInstr::kCaseJump;
    in.sig = st.cond->sig;
    in.a = static_cast<std::int32_t>(cd->case_tables.size());
    cd->case_tables.emplace_back();
    const int dispatch = emit(in);

    std::vector<int> exits;
    CompiledDesign::CaseTable table;
    const CaseItem* def = nullptr;
    for (const auto& item : st.items) {
      if (item.is_default) {
        def = &item;
        continue;
      }
      const auto arm_pc = static_cast<std::int32_t>(size());
      for (const auto& label : item.labels) {
        const std::uint64_t key = label->num & umask(label->self_w);
        bool seen = false;  // first matching item wins, as in the chain
        for (const auto& [k, pc] : table.arms) seen = seen || k == key;
        if (!seen) table.arms.emplace_back(key, arm_pc);
      }
      stmt(*item.body);
      PInstr jmp;
      jmp.code = PInstr::kJump;
      exits.push_back(emit(jmp));
    }
    table.def_pc = static_cast<std::int32_t>(size());
    if (def != nullptr) stmt(*def->body);
    for (const int j : exits) cd->prog[static_cast<size_t>(j)].a = size();
    std::sort(table.arms.begin(), table.arms.end());
    cd->case_tables[static_cast<size_t>(cd->prog[static_cast<size_t>(
                        dispatch)].a)] = std::move(table);
  }

  // case items match via chained (subject == label) || ... compares, in
  // the same comparison context the event kernel's synthetic nodes use.
  int case_tape(const ExprPtr& subject, const CaseItem& item) {
    if (item.labels.empty()) fallback("case item without labels");
    const auto begin = static_cast<std::uint32_t>(cd->ops.size());
    for (std::size_t i = 0; i < item.labels.size(); ++i) {
      const Expr& label = *item.labels[i];
      const int wc = std::max(subject->self_w, label.self_w);
      const bool sc = subject->self_sgn && label.self_sgn;
      tb->cx(*subject, wc, sc);
      tb->cx(label, wc, sc);
      tb->op(TOp::kEq);
      if (i > 0) tb->op(TOp::kOr);
    }
    return tb->finish_tape(begin, 1, false);
  }

  void sys_task(const Stmt& st) {
    const std::string& c = st.callee;
    if (c == "$display" || c == "$write") {
      PInstr in;
      in.code = PInstr::kDisplay;
      in.a = build_display(st);
      emit(in);
      return;
    }
    if (c == "$dumpfile") {
      if (!st.args.empty() && st.args[0]->kind == ExprKind::kString) {
        PInstr in;
        in.code = PInstr::kDumpFile;
        in.a = static_cast<std::int32_t>(cd->dumpfiles.size());
        cd->dumpfiles.push_back(st.args[0]->str);
        emit(in);
      }
      return;
    }
    if (c == "$dumpvars") {
      PInstr in;
      in.code = PInstr::kDumpVars;
      emit(in);
      return;
    }
    if (c == "$finish" || c == "$stop")
      fallback(c + " interactivity");
    fallback("unsupported system task '" + c + "'");
  }

  int build_display(const Stmt& st) {
    DisplayEntry e;
    if (st.args.empty() || st.args[0]->kind != ExprKind::kString) {
      e.bare = true;
      for (const auto& a : st.args) {
        if (a->kind == ExprKind::kString)
          fallback("string literal used as a value");
        DisplayEntry::Arg da;
        da.tape = tb->make_tape_self(*a);
        da.w = a->self_w;
        da.sgn = a->self_sgn;
        e.args.push_back(std::move(da));
      }
    } else {
      const std::string& fmt = st.args[0]->str;
      std::size_t next_arg = 1;
      auto bind = [&](bool want_string) -> int {
        if (next_arg >= st.args.size())
          fallback("$display format has more specifiers than arguments");
        const Expr& a = *st.args[next_arg++];
        DisplayEntry::Arg da;
        if (want_string) {
          if (a.kind != ExprKind::kString) fallback("%s needs a string argument");
          da.str = a.str;
        } else {
          if (a.kind == ExprKind::kString)
            fallback("string literal used as a value");
          da.tape = tb->make_tape_self(a);
          da.w = a.self_w;
          da.sgn = a.self_sgn;
        }
        e.args.push_back(std::move(da));
        return static_cast<int>(e.args.size()) - 1;
      };
      std::string lit;
      auto flush_lit = [&] {
        if (lit.empty()) return;
        DisplayEntry::Piece p;
        p.lit = std::move(lit);
        lit.clear();
        e.pieces.push_back(std::move(p));
      };
      for (std::size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] != '%') {
          lit.push_back(fmt[i]);
          continue;
        }
        ++i;
        while (i < fmt.size() &&
               std::isdigit(static_cast<unsigned char>(fmt[i])))
          ++i;
        if (i >= fmt.size()) fallback("dangling '%' in $display format");
        const char c =
            static_cast<char>(std::tolower(static_cast<unsigned char>(fmt[i])));
        if (c == '%') {
          lit.push_back('%');
          continue;
        }
        if (c != 'd' && c != 't' && c != 'h' && c != 'x' && c != 'b' &&
            c != 's')
          fallback(std::string("unsupported $display format specifier '%") +
                   c + "'");
        flush_lit();
        DisplayEntry::Piece p;
        p.spec = c == 'x' ? 'h' : c;
        p.arg = bind(c == 's');
        e.pieces.push_back(std::move(p));
      }
      flush_lit();
    }
    cd->displays.push_back(std::move(e));
    return static_cast<int>(cd->displays.size()) - 1;
  }

  void stmt(const Stmt& st) {
    switch (st.kind) {
      case StmtKind::kBlock:
        for (const auto& s : st.sub) stmt(*s);
        return;
      case StmtKind::kBlockingAssign:
        assign(st, false);
        return;
      case StmtKind::kNbAssign:
        assign(st, true);
        return;
      case StmtKind::kIf: {
        PInstr jf;
        const Expr& c = *st.cond;
        // `if (flag)` on a plain scalar tests val[] directly — no tape.
        if (c.kind == ExprKind::kIdent && c.sig >= 0 &&
            d->signals[static_cast<size_t>(c.sig)].array_len == 0) {
          jf.code = PInstr::kJumpIfFalseSig;
          jf.sig = c.sig;
        } else {
          jf.code = PInstr::kJumpIfFalse;
          jf.t0 = tb->make_tape_self(c);
        }
        const int j = emit(jf);
        stmt(*st.sub[0]);
        if (st.sub.size() > 1 && st.sub[1] != nullptr) {
          PInstr jmp;
          jmp.code = PInstr::kJump;
          const int j2 = emit(jmp);
          cd->prog[static_cast<size_t>(j)].a = size();
          stmt(*st.sub[1]);
          cd->prog[static_cast<size_t>(j2)].a = size();
        } else {
          cd->prog[static_cast<size_t>(j)].a = size();
        }
        return;
      }
      case StmtKind::kCase: {
        if (case_jump_eligible(st)) {
          case_jump(st);
          return;
        }
        std::vector<int> exits;
        const CaseItem* def = nullptr;
        for (const auto& item : st.items) {
          if (item.is_default) {
            def = &item;
            continue;
          }
          PInstr jf;
          jf.code = PInstr::kJumpIfFalse;
          jf.t0 = case_tape(st.cond, item);
          const int j = emit(jf);
          stmt(*item.body);
          PInstr jmp;
          jmp.code = PInstr::kJump;
          exits.push_back(emit(jmp));
          cd->prog[static_cast<size_t>(j)].a = size();
        }
        if (def != nullptr) stmt(*def->body);
        for (const int j : exits) cd->prog[static_cast<size_t>(j)].a = size();
        return;
      }
      case StmtKind::kRepeat: {
        PInstr init;
        init.code = PInstr::kRepeatInit;
        init.t0 = tb->make_index_tape(*st.cond);
        emit(init);
        PInstr test;
        test.code = PInstr::kRepeatTest;
        const int t = emit(test);
        stmt(*st.sub[0]);
        PInstr jmp;
        jmp.code = PInstr::kJump;
        jmp.a = t;
        emit(jmp);
        cd->prog[static_cast<size_t>(t)].a = size();
        return;
      }
      case StmtKind::kForever:
        fallback("forever loop");
      case StmtKind::kEventCtrl:
        fallback("event control inside a process body");
      case StmtKind::kDelay:
        fallback("# delay");
      case StmtKind::kSysTask:
        sys_task(st);
        return;
      case StmtKind::kNull:
        return;
      case StmtKind::kTaskCall:
        fallback("task call survived elaboration");
    }
  }
};

// Collects the base signals of blocking-assignment targets in a process
// body (every branch) — the "writes" side of the comb feedback graph.
void collect_blocking_writes(const Stmt& st, std::vector<int>* out) {
  switch (st.kind) {
    case StmtKind::kBlock:
      for (const auto& s : st.sub) collect_blocking_writes(*s, out);
      return;
    case StmtKind::kBlockingAssign: {
      const Expr& lhs = *st.lhs;
      if (lhs.kind == ExprKind::kIdent && lhs.sig >= 0)
        out->push_back(lhs.sig);
      else if (lhs.kind == ExprKind::kSelect &&
               lhs.kids[0]->kind == ExprKind::kIdent && lhs.kids[0]->sig >= 0)
        out->push_back(lhs.kids[0]->sig);
      return;
    }
    case StmtKind::kIf:
    case StmtKind::kCase:
    case StmtKind::kRepeat:
    case StmtKind::kForever:
    case StmtKind::kEventCtrl:
    case StmtKind::kDelay:
      for (const auto& s : st.sub)
        if (s) collect_blocking_writes(*s, out);
      for (const auto& item : st.items)
        if (item.body) collect_blocking_writes(*item.body, out);
      return;
    default:
      return;
  }
}

void build_csr(std::size_t nsig,
               const std::vector<std::pair<int, std::int32_t>>& pairs,
               std::vector<std::int32_t>* index,
               std::vector<std::int32_t>* out) {
  index->assign(nsig + 1, 0);
  for (const auto& [sig, v] : pairs) ++(*index)[static_cast<size_t>(sig) + 1];
  for (std::size_t i = 1; i <= nsig; ++i) (*index)[i] += (*index)[i - 1];
  out->resize(pairs.size());
  std::vector<std::int32_t> cursor(index->begin(), index->end() - 1);
  for (const auto& [sig, v] : pairs)
    (*out)[static_cast<size_t>(cursor[static_cast<size_t>(sig)]++)] = v;
}

}  // namespace

// ---- compile_design ---------------------------------------------------------

std::shared_ptr<const CompiledDesign> compile_design(
    const std::shared_ptr<const Design>& design, std::string* why) {
  obs::ScopedSpan span("vsim.compile", "vsim");
  const Design& d = *design;
  auto cd = std::make_shared<CompiledDesign>();
  cd->design = design;
  const std::size_t nsig = d.signals.size();

  try {
    TapeBuilder tb{cd.get(), &d};
    ProgBuilder pb{cd.get(), &tb, &d};

    // ---- Processes: classify, wire triggers, compile bodies ----
    // sens/writes of sensitivity-triggered ("comb") always bodies feed the
    // feedback graph below; edge-triggered bodies are registers and cut it.
    std::vector<std::pair<int, std::int32_t>> trig_pairs;  // (sig, trig idx)
    struct CombProc {
      std::vector<int> sens;
      std::vector<int> writes;
    };
    std::vector<CombProc> comb_procs;
    for (std::size_t pi = 0; pi < d.processes.size(); ++pi) {
      const Process& p = d.processes[pi];
      CompiledDesign::ProcMeta meta;
      meta.is_always = p.is_always;
      meta.origin = p.origin;
      const Stmt* body = p.body.get();
      if (p.is_always) {
        if (body->kind != StmtKind::kEventCtrl)
          fallback("always body of '" + p.origin +
                   "' has no top-level event control");
        CombProc cp;
        bool level_sensitive = false;
        for (const auto& [edge, ev] : body->events) {
          if (ev->kind != ExprKind::kIdent || ev->sig < 0)
            fallback("non-identifier event expression in '" + p.origin + "'");
          // Array-base events never fire in the event kernel (element
          // writes do not wake edge waits) — drop them identically.
          if (d.signals[static_cast<size_t>(ev->sig)].array_len > 0) continue;
          const auto ti = static_cast<std::int32_t>(cd->trigs.size());
          cd->trigs.push_back({static_cast<std::int32_t>(cd->procs.size()),
                               edge});
          trig_pairs.emplace_back(ev->sig, ti);
          if (edge == Edge::kAny) {
            level_sensitive = true;
            cp.sens.push_back(ev->sig);
          }
        }
        meta.entry = pb.size();
        pb.stmt(*body->sub[0]);
        if (level_sensitive) {
          collect_blocking_writes(*body->sub[0], &cp.writes);
          comb_procs.push_back(std::move(cp));
        }
      } else {
        meta.initially_ready = true;
        meta.entry = pb.size();
        pb.stmt(*body);
      }
      PInstr halt;
      halt.code = PInstr::kHalt;
      pb.emit(halt);
      cd->procs.push_back(std::move(meta));
    }

    // ---- Levelize the combinational graph ----
    // Nodes: continuous assigns, then level-sensitive always bodies.
    // Edge u->v when u writes a signal v reads (assign deps / sensitivity
    // lists). A cycle is zero-delay feedback: not cycle-schedulable.
    const std::size_t A = d.assigns.size();
    const std::size_t total = A + comb_procs.size();
    std::vector<std::vector<std::int32_t>> readers(nsig);
    for (std::size_t ai = 0; ai < A; ++ai)
      for (const int dep : d.assigns[ai].deps)
        readers[static_cast<size_t>(dep)].push_back(
            static_cast<std::int32_t>(ai));
    for (std::size_t ci = 0; ci < comb_procs.size(); ++ci)
      for (const int s : comb_procs[ci].sens)
        readers[static_cast<size_t>(s)].push_back(
            static_cast<std::int32_t>(A + ci));
    auto writes_of = [&](std::size_t u) -> std::vector<int> {
      if (u < A) return {d.assigns[u].target};
      return comb_procs[u - A].writes;
    };
    std::vector<int> indeg(total, 0), level(total, 0);
    for (std::size_t u = 0; u < total; ++u)
      for (const int s : writes_of(u))
        for (const std::int32_t v : readers[static_cast<size_t>(s)])
          ++indeg[static_cast<size_t>(v)];
    std::vector<std::int32_t> topo;
    topo.reserve(total);
    for (std::size_t u = 0; u < total; ++u)
      if (indeg[u] == 0) topo.push_back(static_cast<std::int32_t>(u));
    for (std::size_t head = 0; head < topo.size(); ++head) {
      const std::size_t u = static_cast<std::size_t>(topo[head]);
      for (const int s : writes_of(u))
        for (const std::int32_t v : readers[static_cast<size_t>(s)]) {
          level[static_cast<size_t>(v)] =
              std::max(level[static_cast<size_t>(v)], level[u] + 1);
          if (--indeg[static_cast<size_t>(v)] == 0) topo.push_back(v);
        }
    }
    if (topo.size() != total)
      fallback("zero-delay combinational feedback");

    cd->nodes.resize(A);
    for (std::size_t ai = 0; ai < A; ++ai) {
      const ElabAssign& a = d.assigns[ai];
      const Signal& t = d.signals[static_cast<size_t>(a.target)];
      CompiledDesign::Node n;
      n.target = a.target;
      n.tape = tb.make_tape(*a.rhs, std::max(t.width, a.rhs->self_w),
                            a.rhs->self_sgn);
      n.level = level[ai];
      cd->num_levels = std::max(cd->num_levels, n.level + 1);
      cd->nodes[ai] = n;
    }

    // ---- Single-reader fusion + lazy outputs ----
    // The emitted datapath names every scheduled op as its own wire, so the
    // assign graph is dominated by single-reader chains; evaluating each
    // link as a separate node pays a full round trip (tape call, store,
    // change test, fanout walk) per wire per delta. Splice any wire with
    // exactly one load site anywhere into that reader's tape, and stop
    // scheduling wires nothing inside the design observes at all (output
    // ports at the chain ends): those become *lazy*, recomputed on demand
    // by peek(). A wire stays live (unfusable) when a fast-path
    // instruction or a trigger references it outside any tape. Splicing
    // into a *process* tape moves the evaluation from flush time to
    // proc-run time; settle() flushes before every process runs, so that
    // is equivalent unless the spliced expression reads a signal some
    // process blocking-writes (the tape could then run mid-proc between
    // the write and the next flush and see the new value where the stored
    // wire would still be stale) — such producers stay eager. VCD dumping
    // observes every wire, so a design that can start dumping fuses
    // nothing.
    cd->node_of.assign(nsig, -1);
    for (std::size_t ai = 0; ai < A; ++ai)
      cd->node_of[static_cast<size_t>(cd->nodes[ai].target)] =
          static_cast<std::int32_t>(ai);
    cd->node_lazy.assign(A, 0);
    bool can_dump = false;
    for (const PInstr& in : cd->prog)
      if (in.code == PInstr::kDumpVars) can_dump = true;

    std::vector<char> live(nsig, static_cast<char>(can_dump ? 1 : 0));
    std::vector<std::int32_t> reads(nsig, 0);  // load sites across all tapes
    std::vector<char> blocked(nsig, 0);        // blocking-write targets
    if (!can_dump) {
      for (const TOp& o : cd->ops)
        if (reads_scalar(o) || reads_array(o))
          ++reads[static_cast<size_t>(o.a)];
      for (const PInstr& in : cd->prog) {
        switch (in.code) {
          case PInstr::kCaseJump:
          case PInstr::kJumpIfFalseSig:
          case PInstr::kNbBit:  // commit does a read-modify-write of sig
            live[static_cast<size_t>(in.sig)] = 1;
            break;
          case PInstr::kAssignCopy:
            live[static_cast<size_t>(in.a)] = 1;
            blocked[static_cast<size_t>(in.sig)] = 1;
            break;
          case PInstr::kNbCopy:
            live[static_cast<size_t>(in.a)] = 1;
            break;
          case PInstr::kAssign:
          case PInstr::kAssignConst:
          case PInstr::kAssignElem:
            blocked[static_cast<size_t>(in.sig)] = 1;
            break;
          case PInstr::kAssignBit:
            live[static_cast<size_t>(in.sig)] = 1;
            blocked[static_cast<size_t>(in.sig)] = 1;
            break;
          default:
            break;
        }
      }
      for (const auto& [sig, ti] : trig_pairs)
        live[static_cast<size_t>(sig)] = 1;
    }

    // Expand node bodies in topological order so a spliced producer is
    // itself already fully expanded, tracking per node whether its
    // expanded fanin touches a blocking-written signal (tb_flag). A
    // single-reader producer's body is stolen (swapped out) after the
    // splice; a *small* multi-reader producer is duplicated into each
    // reader instead — recomputing a few ops per site is cheaper than an
    // eager eval round trip per delta.
    constexpr std::int32_t kDupReads = 4;  // max load sites to duplicate to
    constexpr std::size_t kDupOps = 12;    // max expanded body size to dup
    std::vector<std::vector<TOp>> xops(A);
    std::vector<char> tb_flag(A, 0);
    const auto fusable_src = [&](const TOp& o) -> std::int32_t {
      if (o.code != TOp::kLoad && o.code != TOp::kLoadSx &&
          o.code != TOp::kLoadTr)
        return -1;
      if (live[static_cast<size_t>(o.a)]) return -1;
      const std::int32_t src = cd->node_of[static_cast<size_t>(o.a)];
      if (src < 0) return -1;
      if (reads[static_cast<size_t>(o.a)] == 1) return src;
      if (reads[static_cast<size_t>(o.a)] <= kDupReads &&
          xops[static_cast<size_t>(src)].size() <= kDupOps)
        return src;
      return -1;
    };
    // Splices the producer's expanded body, then reproduces the load's
    // view of the stored value: a load sees it masked to the declared
    // width (a no-op when the producer's context already was the declared
    // width), plus the fused extension if any.
    const auto splice_load = [&](std::vector<TOp>* out, const TOp& o,
                                 std::int32_t src) {
      std::vector<TOp>& body = xops[static_cast<size_t>(src)];
      out->insert(out->end(), body.begin(), body.end());
      if (reads[static_cast<size_t>(o.a)] == 1)
        std::vector<TOp>().swap(body);  // sole reader: steal, stay linear
      const int tw = d.signals[static_cast<size_t>(o.a)].width;
      const std::uint64_t m = umask(tw);
      const bool pre_masked =
          d.assigns[static_cast<size_t>(src)].rhs->self_w <= tw;
      if (o.code == TOp::kLoadTr) {
        out->push_back(TOp{TOp::kTrunc, 0, 0, m & o.imm});
      } else {
        if (!pre_masked) out->push_back(TOp{TOp::kTrunc, 0, 0, m});
        if (o.code == TOp::kLoadSx)
          out->push_back(TOp{TOp::kSext, o.w, 0, o.imm});
      }
    };
    std::vector<char> eager_n(A, static_cast<char>(can_dump ? 1 : 0));
    if (!can_dump) {
      for (const std::int32_t uu : topo) {
        if (static_cast<std::size_t>(uu) >= A) continue;
        const std::size_t ai = static_cast<std::size_t>(uu);
        std::vector<TOp>& out = xops[ai];
        const TapeRef& t =
            cd->tapes[static_cast<size_t>(cd->nodes[ai].tape)];
        for (std::uint32_t i = t.begin; i < t.begin + t.len; ++i) {
          const TOp& o = cd->ops[i];
          if (o.code == TOp::kHalt) break;
          const std::int32_t src = fusable_src(o);
          if (src < 0) {
            out.push_back(o);
            if ((reads_scalar(o) || reads_array(o)) &&
                blocked[static_cast<size_t>(o.a)])
              tb_flag[ai] = 1;
            continue;
          }
          if (tb_flag[static_cast<size_t>(src)]) tb_flag[ai] = 1;
          splice_load(&out, o, src);
        }
      }

      // Process tapes (NBA values/indices, conditions, $display args):
      // same splice, in place — the tape slot is rewritten so every
      // PInstr/display reference picks up the fused body — but only of
      // producers whose expanded fanin is never blocking-written.
      const std::size_t ntapes = cd->tapes.size();
      std::vector<char> is_node_tape(ntapes, 0);
      for (std::size_t ai = 0; ai < A; ++ai)
        is_node_tape[static_cast<size_t>(cd->nodes[ai].tape)] = 1;
      std::vector<TOp> pout;
      std::vector<std::int32_t> eager_work;
      const auto mark_eager = [&](std::int32_t n) {
        if (n >= 0 && !eager_n[static_cast<size_t>(n)]) {
          eager_n[static_cast<size_t>(n)] = 1;
          eager_work.push_back(n);
        }
      };
      // Read sites are final from here on: re-seals may fold loads into
      // xL superinstructions.
      tb.fuse_loads = true;
      for (std::size_t ti = 0; ti < ntapes; ++ti) {
        if (is_node_tape[ti]) continue;
        const TapeRef t = cd->tapes[ti];  // copy: the slot is rewritten
        pout.clear();
        for (std::uint32_t i = t.begin; i < t.begin + t.len; ++i) {
          const TOp& o = cd->ops[i];
          if (o.code == TOp::kHalt) break;
          const std::int32_t src = fusable_src(o);
          if (src < 0 || tb_flag[static_cast<size_t>(src)]) {
            pout.push_back(o);
            continue;
          }
          splice_load(&pout, o, src);
        }
        // Whatever the final body loads must be stored at flush time —
        // including loads inside just-spliced producer bodies. Scanned
        // before sealing, so loads hidden by folding are still seen.
        for (const TOp& o : pout)
          if (reads_scalar(o))
            mark_eager(cd->node_of[static_cast<size_t>(o.a)]);
        // Unconditional re-seal (not just when a splice changed the
        // body): load folding only applies now.
        const auto begin = static_cast<std::uint32_t>(cd->ops.size());
        cd->ops.insert(cd->ops.end(), pout.begin(), pout.end());
        const int nt = tb.finish_tape(begin, t.w, t.sgn);
        cd->tapes[ti] = cd->tapes[static_cast<size_t>(nt)];
        cd->tapes.pop_back();
      }

      // Eagerness is a transitive closure from what must be stored in
      // val_ at flush time: live wires and wires whose kept load sites
      // sit in a process tape or in another eager node's exec body.
      // Everything outside the closure — including multi-reader wires
      // every reader duplicated — is recomputed on demand instead.
      for (std::size_t ai = 0; ai < A; ++ai)
        if (live[static_cast<size_t>(cd->nodes[ai].target)])
          mark_eager(static_cast<std::int32_t>(ai));
      while (!eager_work.empty()) {
        const std::int32_t n = eager_work.back();
        eager_work.pop_back();
        for (const TOp& o : xops[static_cast<size_t>(n)])
          if (reads_scalar(o))
            mark_eager(cd->node_of[static_cast<size_t>(o.a)]);
      }
    }

    cd->num_eager = 0;
    for (std::size_t ai = 0; ai < A; ++ai) {
      CompiledDesign::Node& n = cd->nodes[ai];
      if (!eager_n[ai]) {
        cd->node_lazy[ai] = 1;
        n.exec_tape = n.tape;  // forced through the original tape on peek
        continue;
      }
      ++cd->num_eager;
      if (xops[ai].empty()) {  // can_dump: nothing was expanded
        n.exec_tape = n.tape;
        continue;
      }
      // Re-sealed even when no splice touched the body so the exec copy
      // gets the load-folded superinstructions the original cannot carry
      // (the original tape stays splice-grade for lazy forcing).
      const auto begin = static_cast<std::uint32_t>(cd->ops.size());
      cd->ops.insert(cd->ops.end(), xops[ai].begin(), xops[ai].end());
      const TapeRef& orig = cd->tapes[static_cast<size_t>(n.tape)];
      n.exec_tape = tb.finish_tape(begin, orig.w, orig.sgn);
    }

    // Fanout CSR: signal -> *eager* assign nodes whose exec tape reads it
    // (dep_map equivalent; includes array-base loads so element writes
    // re-evaluate readers). Built from the exec tapes so fused-away
    // intermediates no longer appear and spliced fanin does.
    std::vector<std::pair<int, std::int32_t>> fan_pairs;
    for (std::size_t ai = 0; ai < A; ++ai) {
      if (cd->node_lazy[ai]) continue;
      const TapeRef& t =
          cd->tapes[static_cast<size_t>(cd->nodes[ai].exec_tape)];
      for (std::uint32_t i = t.begin; i < t.begin + t.len; ++i) {
        const TOp& o = cd->ops[i];
        if (reads_scalar(o) || reads_array(o))
          fan_pairs.emplace_back(o.a, static_cast<std::int32_t>(ai));
      }
    }
    std::sort(fan_pairs.begin(), fan_pairs.end());
    fan_pairs.erase(std::unique(fan_pairs.begin(), fan_pairs.end()),
                    fan_pairs.end());
    build_csr(nsig, fan_pairs, &cd->fan_index, &cd->fan_nodes);

    std::vector<std::int32_t> trig_order;
    {
      build_csr(nsig, trig_pairs, &cd->trig_index, &trig_order);
      std::vector<CompiledDesign::Trigger> sorted;
      sorted.reserve(cd->trigs.size());
      for (const std::int32_t ti : trig_order)
        sorted.push_back(cd->trigs[static_cast<size_t>(ti)]);
      cd->trigs = std::move(sorted);
    }

    cd->sig_mask.resize(nsig);
    for (std::size_t i = 0; i < nsig; ++i)
      cd->sig_mask[i] = umask(d.signals[i].width);
  } catch (const FallbackError& f) {
    if (why) *why = f.why;
    if (span.active()) span.arg("fallback_reason", f.why);
    return nullptr;
  }

  if (span.active()) {
    span.arg("levels", static_cast<long long>(cd->num_levels));
    span.arg("comb_nodes", static_cast<long long>(cd->nodes.size()));
    span.arg("eager_nodes", static_cast<long long>(cd->num_eager));
    span.arg("procs", static_cast<long long>(cd->procs.size()));
    span.arg("tape_ops", static_cast<long long>(cd->ops.size()));
  }
  if (obs::enabled()) {
    auto& m = obs::MetricsRegistry::instance();
    m.set_gauge("vsim.compile.levels", static_cast<double>(cd->num_levels));
    m.add("vsim.compile.designs", 1.0);
  }
  if (why) why->clear();
  return cd;
}

// ---- Plan memoization -------------------------------------------------------

namespace {

struct PlanCache {
  std::mutex mu;
  struct Entry {
    std::weak_ptr<const Design> key;
    std::shared_ptr<const CompiledDesign> plan;
    std::string why;
  };
  std::unordered_map<const Design*, Entry> map;
};

PlanCache& plan_cache() {
  static auto* c = new PlanCache;
  return *c;
}

}  // namespace

std::shared_ptr<const CompiledDesign> compiled_plan(
    const std::shared_ptr<const Design>& design, std::string* why) {
  auto& c = plan_cache();
  {
    std::lock_guard<std::mutex> lk(c.mu);
    auto it = c.map.find(design.get());
    // A live weak_ptr at the same address is necessarily the same design;
    // expired entries mean the address was freed and possibly reused.
    if (it != c.map.end() && !it->second.key.expired()) {
      if (why) *why = it->second.why;
      if (obs::enabled())
        obs::MetricsRegistry::instance().add("vsim.plan_cache.hits", 1.0);
      return it->second.plan;
    }
  }
  auto plan = compile_design(design, why);  // pure: compile outside the lock
  {
    std::lock_guard<std::mutex> lk(c.mu);
    if (obs::enabled())
      obs::MetricsRegistry::instance().add("vsim.plan_cache.misses", 1.0);
    if (c.map.size() > 64) {
      for (auto it = c.map.begin(); it != c.map.end();)
        it = it->second.key.expired() ? c.map.erase(it) : std::next(it);
    }
    PlanCache::Entry e;
    e.key = design;
    e.plan = plan;
    if (plan == nullptr && why != nullptr) e.why = *why;
    c.map[design.get()] = std::move(e);
  }
  return plan;
}

bool plan_packable(const CompiledDesign& cd) {
  for (const PInstr& in : cd.prog)
    if (in.code == PInstr::kDisplay || in.code == PInstr::kDumpFile ||
        in.code == PInstr::kDumpVars)
      return false;
  return true;
}

// ---- CompiledSim ------------------------------------------------------------

struct CompiledSim::Dump {
  rtl::VcdCore core;
  // Signals touched since the last flush ((signal, element), element -1 for
  // scalars). Coalesced and emitted in ascending handle order at settle
  // boundaries so the VCD records net per-slot state deltas — the same
  // canonical form the event kernel emits, which is what makes dumps
  // byte-identical across backends.
  std::set<std::pair<int, long long>> pending;
  explicit Dump(const std::string& scope)
      : core(/*timescale_ns=*/1.0, scope, "hlsw vsim") {}
};

CompiledSim::CompiledSim(std::shared_ptr<const CompiledDesign> cd,
                         const SimConfig& cfg)
    : cd_(std::move(cd)), cfg_(cfg) {
  const Design& d = *cd_->design;
  const std::size_t n = d.signals.size();
  val_.assign(n, 0);
  arr_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Signal& s = d.signals[i];
    if (s.array_len > 0)
      arr_[i].assign(static_cast<size_t>(s.array_len), 0);
    else if (s.has_init)
      val_[i] = static_cast<std::uint64_t>(s.init) & cd_->sig_mask[i];
  }
  stack_.resize(static_cast<size_t>(std::max(cd_->max_stack, 1)));

  // Time 0: every continuous assign evaluates once; initial bodies are
  // ready; always bodies park until their first trigger (exactly the
  // event kernel's t0, where an always thread immediately hits its wait).
  level_q_.resize(static_cast<size_t>(std::max(cd_->num_levels, 1)));
  node_pending_.assign(cd_->nodes.size(), 0);
  for (std::size_t i = 0; i < cd_->nodes.size(); ++i) {
    if (cd_->node_lazy[i]) continue;  // lazy nodes never enter the queue
    node_pending_[i] = 1;
    level_q_[static_cast<size_t>(cd_->nodes[i].level)].push_back(
        static_cast<std::int32_t>(i));
    ++pending_;
  }

  ready_.assign(cd_->procs.size(), 0);
  reps_.resize(cd_->procs.size());
  for (std::size_t p = 0; p < cd_->procs.size(); ++p) {
    if (cd_->procs[p].initially_ready) {
      ready_[p] = 1;
      ++ready_count_;
    }
  }

  settle();
}

CompiledSim::~CompiledSim() {
  if (obs::enabled()) {
    auto& m = obs::MetricsRegistry::instance();
    m.add("vsim.compiled.comb_evals", static_cast<double>(comb_evals_));
    m.add("vsim.compiled.gated_evals", static_cast<double>(gated_evals_));
  }
}

void CompiledSim::fail_budget(int proc) const {
  fail("instruction budget exceeded without time advancing "
       "(zero-delay loop in " +
       cd_->procs[static_cast<size_t>(proc)].origin + "?)");
}

long long CompiledSim::peek_signed(int sig) const {
  return s64(peek(sig),
             cd_->design->signals[static_cast<size_t>(sig)].width);
}

// Recomputes a lazy node's target on demand: force the lazy transitive
// fanin first (scanning the *original* tape, whose loads name the real
// producer wires), then replay the original tape. The levelized graph is
// acyclic, so the recursion is bounded by the chain depth.
void CompiledSim::force_lazy(int node) {
  const CompiledDesign::Node& nd = cd_->nodes[static_cast<size_t>(node)];
  const TapeRef& t = cd_->tapes[static_cast<size_t>(nd.tape)];
  for (std::uint32_t i = t.begin; i < t.begin + t.len; ++i) {
    const TOp& o = cd_->ops[i];
    if (!reads_scalar(o)) continue;
    const std::int32_t m = cd_->node_of[static_cast<size_t>(o.a)];
    if (m >= 0 && cd_->node_lazy[static_cast<size_t>(m)]) force_lazy(m);
  }
  val_[static_cast<size_t>(nd.target)] =
      run_tape(nd.tape) & cd_->sig_mask[static_cast<size_t>(nd.target)];
}

std::uint64_t CompiledSim::peek_elem(int sig, int index) const {
  const auto& a = arr_[static_cast<size_t>(sig)];
  if (index < 0 || index >= static_cast<int>(a.size()))
    fail("element " + std::to_string(index) + " out of range for '" +
         cd_->design->signals[static_cast<size_t>(sig)].name + "'");
  return a[static_cast<size_t>(index)];
}

// Tape interpreter. Every tape ends in a kHalt sentinel (finish_tape), so
// the loop needs no bounds check. On GCC/Clang dispatch is direct-threaded:
// each op body jumps straight to the next op's handler through its own
// indirect branch, so the predictor learns the op sequences of hot tapes
// instead of funneling every transition through one shared switch site.
// The op bodies are written once; VSIM_OP / VSIM_NEXT expand to labels +
// computed goto or to case + break depending on the dispatch mode.
#if defined(__GNUC__) || defined(__clang__)
#define VSIM_THREADED 1
#define VSIM_OP(name) lbl_##name
#define VSIM_NEXT goto* kJump[static_cast<size_t>((++op)->code)]
#else
#define VSIM_OP(name) case TOp::name
#define VSIM_NEXT break
#endif

std::uint64_t CompiledSim::run_tape(int tape) {
  const TapeRef& t = cd_->tapes[static_cast<size_t>(tape)];
  const TOp* op = cd_->ops.data() + t.begin;
  std::uint64_t* sp = stack_.data();
#ifdef VSIM_THREADED
  // Handler table indexed by TOp::Code — order must match the enum.
  static const void* const kJump[] = {
      &&lbl_kConst,     &&lbl_kLoad,   &&lbl_kLoadSx, &&lbl_kLoadTr,
      &&lbl_kLoadElem,  &&lbl_kTrunc,  &&lbl_kSext,   &&lbl_kToSigned,
      &&lbl_kBitSel,    &&lbl_kRange,  &&lbl_kNeg,    &&lbl_kNot,
      &&lbl_kLNot,      &&lbl_kNeZero, &&lbl_kRedAnd, &&lbl_kRedNand,
      &&lbl_kRedOr,     &&lbl_kRedNor, &&lbl_kRedXor, &&lbl_kRedXnor,
      &&lbl_kAnd,       &&lbl_kOr,     &&lbl_kXor,    &&lbl_kXnorB,
      &&lbl_kAdd,       &&lbl_kSub,    &&lbl_kMul,    &&lbl_kDivU,
      &&lbl_kModU,      &&lbl_kDivS,   &&lbl_kModS,   &&lbl_kEq,
      &&lbl_kNe,        &&lbl_kLtU,    &&lbl_kLeU,    &&lbl_kGtU,
      &&lbl_kGeU,       &&lbl_kLtS,    &&lbl_kLeS,    &&lbl_kGtS,
      &&lbl_kGeS,       &&lbl_kShl,    &&lbl_kShrU,   &&lbl_kShrS,
      &&lbl_kConcatAcc, &&lbl_kRepl,   &&lbl_kMux,    &&lbl_kTime,
      &&lbl_kLoadElemSx, &&lbl_kLoadElemTr,
      &&lbl_kAddC,      &&lbl_kSubC,   &&lbl_kMulC,   &&lbl_kOrC,
      &&lbl_kXorC,      &&lbl_kShlC,   &&lbl_kConcatC,
      &&lbl_kAddL,      &&lbl_kSubL,   &&lbl_kMulL,   &&lbl_kAndL,
      &&lbl_kOrL,       &&lbl_kXorL,   &&lbl_kConcatL,
      &&lbl_kRangeL,    &&lbl_kLoadShlC,
      &&lbl_kHalt,
  };
  static_assert(sizeof(kJump) / sizeof(kJump[0]) ==
                static_cast<size_t>(TOp::kHalt) + 1);
  goto* kJump[static_cast<size_t>(op->code)];
#else
  for (;; ++op) switch (op->code) {
#endif
  VSIM_OP(kConst):
    *sp++ = op->imm;
    VSIM_NEXT;
  VSIM_OP(kLoad):
    *sp++ = val_[static_cast<size_t>(op->a)];
    VSIM_NEXT;
  VSIM_OP(kLoadSx): {
    std::uint64_t v = val_[static_cast<size_t>(op->a)];
    if ((v >> (op->w - 1)) & 1) v |= ~umask(op->w);
    *sp++ = v & op->imm;
    VSIM_NEXT;
  }
  VSIM_OP(kLoadTr):
    *sp++ = val_[static_cast<size_t>(op->a)] & op->imm;
    VSIM_NEXT;
  VSIM_OP(kLoadElem): {
    std::uint64_t u = sp[-1];
    if (op->w && ((u >> (op->w - 1)) & 1)) u |= ~umask(op->w);
    const long long idx = static_cast<long long>(u);
    const auto& a = arr_[static_cast<size_t>(op->a)];
    sp[-1] = (idx >= 0 && idx < static_cast<long long>(a.size()))
                 ? a[static_cast<size_t>(idx)]
                 : 0;
    VSIM_NEXT;
  }
  VSIM_OP(kTrunc):
    sp[-1] &= op->imm;
    VSIM_NEXT;
  VSIM_OP(kSext): {
    std::uint64_t v = sp[-1];
    if ((v >> (op->w - 1)) & 1) v |= ~umask(op->w);
    sp[-1] = v & op->imm;
    VSIM_NEXT;
  }
  VSIM_OP(kToSigned): {
    std::uint64_t v = sp[-1];
    if (op->w < 64 && ((v >> (op->w - 1)) & 1)) v |= ~umask(op->w);
    sp[-1] = v;
    VSIM_NEXT;
  }
  VSIM_OP(kBitSel): {
    const long long idx = static_cast<long long>(sp[-1]);
    --sp;
    sp[-1] = (idx >= 0 && idx < op->w) ? (sp[-1] >> idx) & 1 : 0;
    VSIM_NEXT;
  }
  VSIM_OP(kRange):
    sp[-1] = (sp[-1] >> op->a) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kNeg):
    sp[-1] = (0 - sp[-1]) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kNot):
    sp[-1] = ~sp[-1] & op->imm;
    VSIM_NEXT;
  VSIM_OP(kLNot):
    sp[-1] = sp[-1] == 0;
    VSIM_NEXT;
  VSIM_OP(kNeZero):
    sp[-1] = sp[-1] != 0;
    VSIM_NEXT;
  VSIM_OP(kRedAnd):
    sp[-1] = sp[-1] == op->imm;
    VSIM_NEXT;
  VSIM_OP(kRedNand):
    sp[-1] = sp[-1] != op->imm;
    VSIM_NEXT;
  VSIM_OP(kRedOr):
    sp[-1] = sp[-1] != 0;
    VSIM_NEXT;
  VSIM_OP(kRedNor):
    sp[-1] = sp[-1] == 0;
    VSIM_NEXT;
  VSIM_OP(kRedXor):
    sp[-1] = static_cast<std::uint64_t>(
        __builtin_parityll(static_cast<long long>(sp[-1])));
    VSIM_NEXT;
  VSIM_OP(kRedXnor):
    sp[-1] = static_cast<std::uint64_t>(
        !__builtin_parityll(static_cast<long long>(sp[-1])));
    VSIM_NEXT;
  VSIM_OP(kAnd):
    --sp;
    sp[-1] &= sp[0];
    VSIM_NEXT;
  VSIM_OP(kOr):
    --sp;
    sp[-1] |= sp[0];
    VSIM_NEXT;
  VSIM_OP(kXor):
    --sp;
    sp[-1] ^= sp[0];
    VSIM_NEXT;
  VSIM_OP(kXnorB):
    --sp;
    sp[-1] = ~(sp[-1] ^ sp[0]) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kAdd):
    --sp;
    sp[-1] = (sp[-1] + sp[0]) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kSub):
    --sp;
    sp[-1] = (sp[-1] - sp[0]) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kMul):
    --sp;
    sp[-1] = (sp[-1] * sp[0]) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kDivU):
    --sp;
    sp[-1] = sp[0] == 0 ? 0 : sp[-1] / sp[0];
    VSIM_NEXT;
  VSIM_OP(kModU):
    --sp;
    sp[-1] = sp[0] == 0 ? 0 : sp[-1] % sp[0];
    VSIM_NEXT;
  VSIM_OP(kDivS): {
    --sp;
    const long long sa = s64(sp[-1], op->w), sb = s64(sp[0], op->w);
    std::uint64_t r;
    if (sb == 0) r = 0;
    else if (sb == -1) r = 0 - sp[-1];  // avoid INT64_MIN / -1
    else r = static_cast<std::uint64_t>(sa / sb);
    sp[-1] = r & op->imm;
    VSIM_NEXT;
  }
  VSIM_OP(kModS): {
    --sp;
    const long long sa = s64(sp[-1], op->w), sb = s64(sp[0], op->w);
    std::uint64_t r;
    if (sb == 0 || sb == -1) r = 0;
    else r = static_cast<std::uint64_t>(sa % sb);
    sp[-1] = r & op->imm;
    VSIM_NEXT;
  }
  VSIM_OP(kEq):
    --sp;
    sp[-1] = sp[-1] == sp[0];
    VSIM_NEXT;
  VSIM_OP(kNe):
    --sp;
    sp[-1] = sp[-1] != sp[0];
    VSIM_NEXT;
  VSIM_OP(kLtU):
    --sp;
    sp[-1] = sp[-1] < sp[0];
    VSIM_NEXT;
  VSIM_OP(kLeU):
    --sp;
    sp[-1] = sp[-1] <= sp[0];
    VSIM_NEXT;
  VSIM_OP(kGtU):
    --sp;
    sp[-1] = sp[-1] > sp[0];
    VSIM_NEXT;
  VSIM_OP(kGeU):
    --sp;
    sp[-1] = sp[-1] >= sp[0];
    VSIM_NEXT;
  VSIM_OP(kLtS):
    --sp;
    sp[-1] = s64(sp[-1], op->w) < s64(sp[0], op->w);
    VSIM_NEXT;
  VSIM_OP(kLeS):
    --sp;
    sp[-1] = s64(sp[-1], op->w) <= s64(sp[0], op->w);
    VSIM_NEXT;
  VSIM_OP(kGtS):
    --sp;
    sp[-1] = s64(sp[-1], op->w) > s64(sp[0], op->w);
    VSIM_NEXT;
  VSIM_OP(kGeS):
    --sp;
    sp[-1] = s64(sp[-1], op->w) >= s64(sp[0], op->w);
    VSIM_NEXT;
  VSIM_OP(kShl): {
    --sp;
    const std::uint64_t sh = sp[0];
    sp[-1] = sh >= 64 ? 0 : (sp[-1] << sh) & op->imm;
    VSIM_NEXT;
  }
  VSIM_OP(kShrU): {
    --sp;
    const std::uint64_t sh = sp[0];
    sp[-1] = sh >= 64 ? 0 : sp[-1] >> sh;
    VSIM_NEXT;
  }
  VSIM_OP(kShrS): {
    --sp;
    const std::uint64_t sh = sp[0];
    const long long sa = s64(sp[-1], op->w);
    sp[-1] = static_cast<std::uint64_t>(sa >> (sh > 63 ? 63 : sh)) &
             op->imm;
    VSIM_NEXT;
  }
  VSIM_OP(kConcatAcc):
    --sp;
    sp[-1] = (sp[-1] << op->w) | sp[0];
    VSIM_NEXT;
  VSIM_OP(kRepl): {
    const std::uint64_t kv = sp[-1];
    std::uint64_t v = 0;
    for (std::int32_t i = 0; i < op->a; ++i) v = (v << op->w) | kv;
    sp[-1] = v;
    VSIM_NEXT;
  }
  VSIM_OP(kMux):
    sp -= 2;
    sp[-1] = sp[-1] != 0 ? sp[0] : sp[1];
    VSIM_NEXT;
  VSIM_OP(kTime):
    *sp++ = 0;  // this backend never advances time
    VSIM_NEXT;
  VSIM_OP(kLoadElemSx): {
    const long long idx = static_cast<long long>(sp[-1]);
    const auto& a = arr_[static_cast<size_t>(op->a)];
    std::uint64_t v = (idx >= 0 && idx < static_cast<long long>(a.size()))
                          ? a[static_cast<size_t>(idx)]
                          : 0;
    if ((v >> (op->w - 1)) & 1) v |= ~umask(op->w);
    sp[-1] = v & op->imm;
    VSIM_NEXT;
  }
  VSIM_OP(kLoadElemTr): {
    std::uint64_t u = sp[-1];
    if (op->w && ((u >> (op->w - 1)) & 1)) u |= ~umask(op->w);
    const long long idx = static_cast<long long>(u);
    const auto& a = arr_[static_cast<size_t>(op->a)];
    sp[-1] = ((idx >= 0 && idx < static_cast<long long>(a.size()))
                  ? a[static_cast<size_t>(idx)]
                  : 0) &
             op->imm;
    VSIM_NEXT;
  }
  VSIM_OP(kAddC):
    sp[-1] = (sp[-1] + static_cast<std::uint32_t>(op->a)) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kSubC):
    sp[-1] = (sp[-1] - static_cast<std::uint32_t>(op->a)) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kMulC):
    sp[-1] = (sp[-1] * static_cast<std::uint32_t>(op->a)) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kOrC):
    sp[-1] |= op->imm;
    VSIM_NEXT;
  VSIM_OP(kXorC):
    sp[-1] ^= op->imm;
    VSIM_NEXT;
  VSIM_OP(kShlC):
    sp[-1] = (sp[-1] << static_cast<std::uint32_t>(op->a)) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kConcatC):
    sp[-1] = (sp[-1] << op->w) | static_cast<std::uint32_t>(op->a);
    VSIM_NEXT;
  VSIM_OP(kAddL):
    sp[-1] = (sp[-1] + val_[static_cast<size_t>(op->a)]) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kSubL):
    sp[-1] = (sp[-1] - val_[static_cast<size_t>(op->a)]) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kMulL):
    sp[-1] = (sp[-1] * val_[static_cast<size_t>(op->a)]) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kAndL):
    sp[-1] &= val_[static_cast<size_t>(op->a)];
    VSIM_NEXT;
  VSIM_OP(kOrL):
    sp[-1] |= val_[static_cast<size_t>(op->a)];
    VSIM_NEXT;
  VSIM_OP(kXorL):
    sp[-1] ^= val_[static_cast<size_t>(op->a)];
    VSIM_NEXT;
  VSIM_OP(kConcatL):
    sp[-1] = (sp[-1] << op->w) | val_[static_cast<size_t>(op->a)];
    VSIM_NEXT;
  VSIM_OP(kRangeL):
    *sp++ = (val_[static_cast<size_t>(op->a)] >> op->w) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kLoadShlC):
    *sp++ = (val_[static_cast<size_t>(op->a)] << op->w) & op->imm;
    VSIM_NEXT;
  VSIM_OP(kHalt):
    return sp[-1];
#ifndef VSIM_THREADED
  }
#endif
}

#undef VSIM_THREADED
#undef VSIM_OP
#undef VSIM_NEXT

long long CompiledSim::run_tape_signed(int tape) {
  const TapeRef& t = cd_->tapes[static_cast<size_t>(tape)];
  const std::uint64_t v = run_tape(tape);
  return t.sgn ? s64(v, t.w) : static_cast<long long>(v);
}

void CompiledSim::mark_fanout(int sig) {
  const auto b = cd_->fan_index[static_cast<size_t>(sig)];
  const auto e = cd_->fan_index[static_cast<size_t>(sig) + 1];
  for (auto i = b; i < e; ++i) {
    const std::int32_t n = cd_->fan_nodes[static_cast<size_t>(i)];
    if (!node_pending_[static_cast<size_t>(n)]) {
      node_pending_[static_cast<size_t>(n)] = 1;
      level_q_[static_cast<size_t>(cd_->nodes[static_cast<size_t>(n)].level)]
          .push_back(n);
      ++pending_;
    }
  }
}

void CompiledSim::set_scalar(int sig, std::uint64_t v) {
  v &= cd_->sig_mask[static_cast<size_t>(sig)];
  const std::uint64_t old = val_[static_cast<size_t>(sig)];
  if (old == v) return;
  val_[static_cast<size_t>(sig)] = v;
  ++stats_.events;
  if (dumping_) dump_change(sig, -1);
  mark_fanout(sig);
  const auto b = cd_->trig_index[static_cast<size_t>(sig)];
  const auto e = cd_->trig_index[static_cast<size_t>(sig) + 1];
  if (b == e) return;
  const bool pos = !(old & 1) && (v & 1);
  const bool neg = (old & 1) && !(v & 1);
  for (auto i = b; i < e; ++i) {
    const auto& t = cd_->trigs[static_cast<size_t>(i)];
    // The running process cannot re-arm itself: the event kernel's thread
    // is not edge-waiting while it executes, so self-edges are lost.
    if (t.proc == running_proc_) continue;
    if (t.edge == Edge::kAny || (t.edge == Edge::kPos && pos) ||
        (t.edge == Edge::kNeg && neg)) {
      if (!ready_[static_cast<size_t>(t.proc)]) {
        ready_[static_cast<size_t>(t.proc)] = 1;
        ++ready_count_;
      }
    }
  }
}

void CompiledSim::set_elem(int sig, long long index, std::uint64_t v) {
  auto& a = arr_[static_cast<size_t>(sig)];
  if (index < 0 || index >= static_cast<long long>(a.size())) return;
  v &= cd_->sig_mask[static_cast<size_t>(sig)];
  if (a[static_cast<size_t>(index)] == v) return;
  a[static_cast<size_t>(index)] = v;
  ++stats_.events;
  if (dumping_) dump_change(sig, index);
  mark_fanout(sig);  // element writes never wake edge waits (kernel parity)
}

void CompiledSim::flush_comb() {
  if (pending_ == 0) return;
  long long evals = 0;
  for (auto& q : level_q_) {
    if (q.empty()) continue;
    // Appends during this loop go to strictly higher levels: a reader's
    // level always exceeds its writer's.
    for (std::size_t i = 0; i < q.size(); ++i) {
      const std::int32_t n = q[i];
      node_pending_[static_cast<size_t>(n)] = 0;
      const CompiledDesign::Node& nd = cd_->nodes[static_cast<size_t>(n)];
      set_scalar(nd.target, run_tape(nd.exec_tape));
      ++evals;
    }
    pending_ -= static_cast<long long>(q.size());
    q.clear();
    if (pending_ == 0) break;
  }
  comb_evals_ += evals;
  gated_evals_ += static_cast<long long>(cd_->num_eager) - evals;
}

void CompiledSim::commit_nba() {
  // Swap through a persistent scratch so neither vector re-allocates once
  // warm (a fresh vector here cost one malloc per delta cycle).
  std::vector<NbaEntry>& q = nba_scratch_;
  q.clear();
  q.swap(nba_);
  stats_.nba_commits += static_cast<long long>(q.size());
  const Design& d = *cd_->design;
  for (const NbaEntry& e : q) {
    const Signal& s = d.signals[static_cast<size_t>(e.sig)];
    if (s.array_len > 0) {
      set_elem(e.sig, e.index, e.value);
    } else if (e.index >= 0) {  // nonblocking bit write, committed RMW
      if (e.index < s.width) {
        const std::uint64_t old = val_[static_cast<size_t>(e.sig)];
        set_scalar(e.sig, (old & ~(1ULL << e.index)) |
                              ((e.value & 1ULL) << e.index));
      }
    } else {
      set_scalar(e.sig, e.value);
    }
  }
}

void CompiledSim::run_proc(int p) {
  running_proc_ = p;
  ready_[static_cast<size_t>(p)] = 0;
  --ready_count_;
  auto& reps = reps_[static_cast<size_t>(p)];
  int pc = cd_->procs[static_cast<size_t>(p)].entry;
  for (;;) {
    const PInstr& in = cd_->prog[static_cast<size_t>(pc)];
    ++stats_.instrs;
    switch (in.code) {
      case PInstr::kAssign:
        set_scalar(in.sig, run_tape(in.t0));
        ++pc;
        break;
      case PInstr::kAssignCopy:
        set_scalar(in.sig, val_[static_cast<size_t>(in.a)]);
        ++pc;
        break;
      case PInstr::kAssignConst:
        set_scalar(in.sig, in.imm);
        ++pc;
        break;
      case PInstr::kAssignElem: {
        const std::uint64_t v = run_tape(in.t0);
        const long long idx = static_cast<long long>(run_tape(in.t1));
        set_elem(in.sig, idx, v);
        ++pc;
        break;
      }
      case PInstr::kAssignBit: {
        const std::uint64_t v = run_tape(in.t0);
        const long long idx = static_cast<long long>(run_tape(in.t1));
        const Signal& s =
            cd_->design->signals[static_cast<size_t>(in.sig)];
        if (idx >= 0 && idx < s.width) {
          const std::uint64_t old = val_[static_cast<size_t>(in.sig)];
          set_scalar(in.sig,
                     (old & ~(1ULL << idx)) | ((v & 1ULL) << idx));
        }
        ++pc;
        break;
      }
      case PInstr::kNb:
        nba_.push_back(
            {in.sig, -1,
             run_tape(in.t0) & cd_->sig_mask[static_cast<size_t>(in.sig)]});
        ++pc;
        break;
      case PInstr::kNbCopy:
        nba_.push_back({in.sig, -1,
                        val_[static_cast<size_t>(in.a)] &
                            cd_->sig_mask[static_cast<size_t>(in.sig)]});
        ++pc;
        break;
      case PInstr::kNbConst:
        nba_.push_back({in.sig, -1, in.imm});  // masked at compile time
        ++pc;
        break;
      case PInstr::kNbElem: {
        const std::uint64_t v =
            run_tape(in.t0) & cd_->sig_mask[static_cast<size_t>(in.sig)];
        const long long idx = static_cast<long long>(run_tape(in.t1));
        nba_.push_back({in.sig, idx, v});
        ++pc;
        break;
      }
      case PInstr::kNbBit: {
        const std::uint64_t v = run_tape(in.t0);
        const long long idx = static_cast<long long>(run_tape(in.t1));
        nba_.push_back({in.sig, idx, v & 1});
        ++pc;
        break;
      }
      case PInstr::kJump:
        // Only backward jumps (loop back-edges) can run unboundedly, so
        // the zero-delay budget is checked here instead of per instruction.
        if (in.a <= pc &&
            stats_.instrs - slot_instr_base_ > cfg_.max_instrs_per_slot) {
          running_proc_ = -1;
          fail_budget(p);
        }
        pc = in.a;
        break;
      case PInstr::kJumpIfFalse:
        pc = run_tape(in.t0) != 0 ? pc + 1 : in.a;
        break;
      case PInstr::kJumpIfFalseSig:
        pc = val_[static_cast<size_t>(in.sig)] != 0 ? pc + 1 : in.a;
        break;
      case PInstr::kCaseJump: {
        const CompiledDesign::CaseTable& t =
            cd_->case_tables[static_cast<size_t>(in.a)];
        const std::uint64_t v = val_[static_cast<size_t>(in.sig)];
        const auto it = std::lower_bound(
            t.arms.begin(), t.arms.end(), v,
            [](const std::pair<std::uint64_t, std::int32_t>& a,
               std::uint64_t key) { return a.first < key; });
        pc = (it != t.arms.end() && it->first == v) ? it->second : t.def_pc;
        break;
      }
      case PInstr::kRepeatInit:
        reps.push_back(run_tape_signed(in.t0));
        ++pc;
        break;
      case PInstr::kRepeatTest:
        if (reps.back() > 0) {
          --reps.back();
          ++pc;
        } else {
          reps.pop_back();
          pc = in.a;
        }
        break;
      case PInstr::kDisplay:
        display_.push_back(
            format_display(cd_->displays[static_cast<size_t>(in.a)]));
        ++pc;
        break;
      case PInstr::kDumpFile:
        dump_name_ = cd_->dumpfiles[static_cast<size_t>(in.a)];
        ++pc;
        break;
      case PInstr::kDumpVars:
        start_dump();
        ++pc;
        break;
      case PInstr::kHalt:
        running_proc_ = -1;
        return;
    }
  }
}

void CompiledSim::settle() {
  slot_instr_base_ = stats_.instrs;
  for (;;) {
    flush_comb();
    if (ready_count_ > 0) {
      int p = -1;
      for (std::size_t i = 0; i < ready_.size(); ++i) {
        if (ready_[i]) {
          p = static_cast<int>(i);
          break;
        }
      }
      run_proc(p);
      continue;
    }
    if (nba_.empty()) break;
    commit_nba();
    ++stats_.delta_cycles;
  }
  if (dumping_) flush_dump();
}

void CompiledSim::poke(int sig, std::uint64_t value) {
  set_scalar(sig, value);
}

RunResult CompiledSim::run() {
  obs::ScopedSpan span("vsim.run", "vsim");
  if (span.active()) span.arg("backend", "compiled");
  settle();
  if (obs::enabled()) {
    auto& m = obs::MetricsRegistry::instance();
    m.add("vsim.events", static_cast<double>(stats_.events));
    m.add("vsim.nba_commits", static_cast<double>(stats_.nba_commits));
  }
  RunResult r;
  r.end_time = 0;
  r.display = display_;
  r.vcd_name = dump_name_;
  if (dumping_) r.vcd_text = dump_->core.str(0);
  return r;
}

std::string CompiledSim::format_display(const DisplayEntry& de) {
  std::ostringstream os;
  auto as_signed = [&](const DisplayEntry::Arg& a) -> long long {
    const std::uint64_t v = run_tape(a.tape);
    return a.sgn ? s64(v, a.w) : static_cast<long long>(v);
  };
  if (de.bare) {
    for (std::size_t i = 0; i < de.args.size(); ++i) {
      if (i) os << " ";
      os << as_signed(de.args[i]);
    }
    return os.str();
  }
  for (const auto& p : de.pieces) {
    if (p.spec == 0) {
      os << p.lit;
      continue;
    }
    const DisplayEntry::Arg& a = de.args[static_cast<size_t>(p.arg)];
    switch (p.spec) {
      case 'd':
        os << as_signed(a);
        break;
      case 't':
        os << static_cast<long long>(run_tape(a.tape));
        break;
      case 'h': {
        std::ostringstream hx;
        hx << std::hex << run_tape(a.tape);
        os << hx.str();
        break;
      }
      case 'b': {
        const std::uint64_t v = run_tape(a.tape);
        for (int bit = std::max(a.w, 1) - 1; bit >= 0; --bit)
          os << ((v >> bit) & 1 ? '1' : '0');
        break;
      }
      case 's':
        os << a.str;
        break;
    }
  }
  return os.str();
}

void CompiledSim::start_dump() {
  if (dumping_) return;
  const Design& d = *cd_->design;
  dump_ = std::make_unique<Dump>(d.top);
  const auto n = d.signals.size();
  dump_handle_.assign(n, -1);
  dump_elem_handle_.assign(n, {});
  // Mark everything pending rather than snapshotting the mid-slot state at
  // the instant $dumpvars ran: the flush at the end of this time slot then
  // records every signal's SETTLED time-0 value, which does not depend on
  // how the engine interleaved the other time-0 processes.
  for (std::size_t i = 0; i < n; ++i) {
    const Signal& s = d.signals[i];
    if (s.array_len > 0) {
      for (int j = 0; j < s.array_len; ++j) {
        const int h = dump_->core.add_signal(
            s.name + "[" + std::to_string(j) + "]", s.width);
        dump_elem_handle_[i].push_back(h);
        dump_->pending.emplace(static_cast<int>(i), j);
      }
    } else {
      const int h = dump_->core.add_signal(s.name, s.width);
      dump_handle_[i] = h;
      dump_->pending.emplace(static_cast<int>(i), -1);
    }
  }
  dumping_ = true;
}

void CompiledSim::dump_change(int sig, long long index) const {
  dump_->pending.emplace(sig, index);
}

void CompiledSim::flush_dump() const {
  for (const auto& [sig, index] : dump_->pending) {
    if (index < 0) {
      const int h = dump_handle_[static_cast<size_t>(sig)];
      if (h >= 0)
        dump_->core.change(
            0, h, static_cast<long long>(val_[static_cast<size_t>(sig)]));
      continue;
    }
    const auto& hs = dump_elem_handle_[static_cast<size_t>(sig)];
    if (index < static_cast<long long>(hs.size()))
      dump_->core.change(
          0, hs[static_cast<size_t>(index)],
          static_cast<long long>(
              arr_[static_cast<size_t>(sig)][static_cast<size_t>(index)]));
  }
  dump_->pending.clear();
}

}  // namespace hlsw::vsim
