// Structural lint over elaborated Designs — the checks a synthesis frontend
// would warn about and that the hlsw emitter promises to never trigger:
//
//  - never-read:       a reg that is procedurally assigned but whose value no
//                      expression ever reads (dead state),
//  - width-truncation: an assignment whose right-hand side is self-determined
//                      wider than the target, silently dropping bits (constant
//                      right-hand sides that fit the target are exempt —
//                      `state <= 35` is idiomatic, not a bug),
//  - multi-driven:     a net driven by more than one continuous assign, by an
//                      assign and a process, or from several processes
//                      (signals synthesized by task inlining are exempt: every
//                      call site legitimately writes the argument signals).
//
// tests/vsim/lint_test.cpp pins that rtl::emit_verilog output lints clean for
// every Table 1 architecture.
#pragma once

#include <string>
#include <vector>

#include "vsim/elab.h"

namespace hlsw::vsim {

struct LintIssue {
  std::string rule;    // "never-read" | "width-truncation" | "multi-driven"
  std::string signal;  // elaborated signal name
  std::string detail;  // human-readable explanation
};

// Deterministic: issues are ordered by rule, then by signal index /
// discovery order within the rule.
std::vector<LintIssue> lint(const Design& d);

// One "rule: signal — detail" line per issue ("clean" for none).
std::string lint_report(const std::vector<LintIssue>& issues);

}  // namespace hlsw::vsim
