#include "vsim/lint.h"

#include <map>
#include <set>
#include <sstream>

namespace hlsw::vsim {

namespace {

inline unsigned long long umask(int w) {
  return w >= 64 ? ~0ULL : (1ULL << w) - 1ULL;
}

// Signed value of a literal (optionally under one unary +/-); false if the
// expression is not a plain constant.
bool const_value(const Expr& e, long long* out) {
  const Expr* r = &e;
  bool neg = false;
  if (r->kind == ExprKind::kUnary && (r->name == "-" || r->name == "+")) {
    neg = r->name == "-";
    r = r->kids[0].get();
  }
  if (r->kind != ExprKind::kNumber) return false;
  long long v = static_cast<long long>(r->num);
  if (r->num_sized && r->num_width < 64 && r->num_signed &&
      (r->num >> (r->num_width - 1)) & 1)
    v -= 1LL << r->num_width;
  *out = neg ? -v : v;
  return true;
}

// Instrumentation counters (rtl::VerilogOptions::instrument) live in the
// reserved perf_ namespace and are write-only from inside the module by
// design: they are read back out-of-band (harness peek or the optional
// perf_rdata mux). Elaboration flattens instance paths, so match the last
// path component.
bool is_perf_counter(const std::string& name) {
  const std::size_t dot = name.rfind('.');
  const std::size_t base = dot == std::string::npos ? 0 : dot + 1;
  return name.compare(base, 5, "perf_") == 0;
}

class Linter {
 public:
  explicit Linter(const Design& d) : d_(d), read_(d.signals.size(), 0) {}

  std::vector<LintIssue> run() {
    for (const ElabAssign& a : d_.assigns) {
      ++cont_count_[a.target];
      mark_reads(*a.rhs);
      const Signal& t = d_.signals[static_cast<size_t>(a.target)];
      check_trunc(t.width, t.name, *a.rhs, "continuous assign");
    }
    for (std::size_t p = 0; p < d_.processes.size(); ++p)
      walk(*d_.processes[p].body, static_cast<int>(p));

    std::vector<LintIssue> out;
    // never-read — dead procedural state.
    for (std::size_t i = 0; i < d_.signals.size(); ++i) {
      const Signal& s = d_.signals[i];
      const bool written =
          proc_writers_.count(static_cast<int>(i)) ||
          cont_count_.count(static_cast<int>(i));
      if (s.is_reg && written && !read_[i] && !s.is_top_output &&
          !s.is_task_arg && !is_perf_counter(s.name))
        out.push_back({"never-read", s.name,
                       "assigned but its value is never read"});
    }
    // width-truncation — collected during the walk, in discovery order.
    for (auto& i : trunc_) out.push_back(std::move(i));
    // multi-driven — conflicting drivers.
    for (std::size_t i = 0; i < d_.signals.size(); ++i) {
      const Signal& s = d_.signals[i];
      const int sig = static_cast<int>(i);
      const int conts =
          cont_count_.count(sig) ? cont_count_.at(sig) : 0;
      const std::size_t procs =
          proc_writers_.count(sig) ? proc_writers_.at(sig).size() : 0;
      if (conts > 1) {
        out.push_back({"multi-driven", s.name,
                       "driven by " + std::to_string(conts) +
                           " continuous assigns"});
      } else if (conts >= 1 && procs > 0) {
        out.push_back({"multi-driven", s.name,
                       "driven by both a continuous assign and a process"});
      } else if (procs > 1 && !s.is_task_arg) {
        out.push_back({"multi-driven", s.name,
                       "driven from " + std::to_string(procs) +
                           " always/initial blocks"});
      }
    }
    return out;
  }

 private:
  void mark_reads(const Expr& e) {
    std::vector<int> r;
    collect_reads(e, &r);
    for (const int sig : r) read_[static_cast<size_t>(sig)] = 1;
  }

  void check_trunc(int lhs_w, const std::string& name, const Expr& rhs,
                   const std::string& where) {
    if (rhs.self_w <= lhs_w) return;
    long long v;
    if (const_value(rhs, &v)) {
      const long long lo =
          lhs_w >= 64 ? 0 : -(1LL << (lhs_w - 1));
      const long long hi = static_cast<long long>(umask(lhs_w));
      if (lhs_w >= 64 || (v >= lo && v <= hi)) return;
    }
    trunc_.push_back(
        {"width-truncation", name,
         where + " drops " + std::to_string(rhs.self_w - lhs_w) +
             " high bits (rhs is " + std::to_string(rhs.self_w) +
             " bits wide, target is " + std::to_string(lhs_w) + ")"});
  }

  void write_lhs(const Expr& lhs, int pid) {
    if (lhs.kind == ExprKind::kIdent) {
      proc_writers_[lhs.sig].insert(pid);
      return;
    }
    // element / bit select: the base is written, the index is read.
    proc_writers_[lhs.kids[0]->sig].insert(pid);
    mark_reads(*lhs.kids[1]);
  }

  void check_assign(const Stmt& st, const char* where) {
    const Expr& lhs = *st.lhs;
    const int lw = lhs.self_w;
    const std::string name = lhs.kind == ExprKind::kIdent
                                 ? lhs.name
                                 : lhs.kids[0]->name;
    check_trunc(lw, name, *st.rhs, where);
  }

  void walk(const Stmt& st, int pid) {
    switch (st.kind) {
      case StmtKind::kBlock:
      case StmtKind::kForever:
        for (const auto& s : st.sub) walk(*s, pid);
        break;
      case StmtKind::kBlockingAssign:
      case StmtKind::kNbAssign:
        write_lhs(*st.lhs, pid);
        mark_reads(*st.rhs);
        check_assign(st, st.kind == StmtKind::kNbAssign
                             ? "nonblocking assignment"
                             : "blocking assignment");
        break;
      case StmtKind::kIf:
        mark_reads(*st.cond);
        for (const auto& s : st.sub) walk(*s, pid);
        break;
      case StmtKind::kCase:
        mark_reads(*st.cond);
        for (const auto& item : st.items) {
          for (const auto& l : item.labels) mark_reads(*l);
          walk(*item.body, pid);
        }
        break;
      case StmtKind::kRepeat:
        mark_reads(*st.cond);
        walk(*st.sub[0], pid);
        break;
      case StmtKind::kEventCtrl:
        for (const auto& [edge, e] : st.events) mark_reads(*e);
        walk(*st.sub[0], pid);
        break;
      case StmtKind::kDelay:
        walk(*st.sub[0], pid);
        break;
      case StmtKind::kSysTask:
        for (const auto& a : st.args) mark_reads(*a);
        break;
      case StmtKind::kTaskCall:  // inlined away during elaboration
      case StmtKind::kNull:
        break;
    }
  }

  const Design& d_;
  std::vector<char> read_;
  std::map<int, int> cont_count_;
  std::map<int, std::set<int>> proc_writers_;
  std::vector<LintIssue> trunc_;
};

}  // namespace

std::vector<LintIssue> lint(const Design& d) { return Linter(d).run(); }

std::string lint_report(const std::vector<LintIssue>& issues) {
  if (issues.empty()) return "clean";
  std::ostringstream os;
  for (const auto& i : issues)
    os << i.rule << ": " << i.signal << " — " << i.detail << "\n";
  return os.str();
}

}  // namespace hlsw::vsim
