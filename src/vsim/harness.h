// The emit→verify loop closed in-process: glue between the HLS pipeline and
// the vsim Verilog interpreter.
//
//  - load_design:    parse + elaborate emitted Verilog text (traced),
//  - DutHarness:     drives an elaborated emitted module through the
//                    clk/rst/start/done protocol and speaks PortIo, so the
//                    executed Verilog text slots into hls::cosim_sweep as
//                    just another model,
//  - run_testbench:  runs the generated self-checking testbench (module +
//                    testbench text) to its PASS/FAIL summary,
//  - vsim_sweep:     parallel differential sweep (untimed golden vs executed
//                    Verilog text) — one elaborated design shared by every
//                    shard, a fresh Simulation per block,
//  - verify_emitted: the full third cosim leg — golden vs rtl::Simulator vs
//                    vsim, bit-for-bit, plus lint and the testbench run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/ir.h"
#include "hls/profile.h"
#include "hls/schedule.h"
#include "hls/verify.h"
#include "rtl/testbench.h"
#include "vsim/lint.h"
#include "vsim/sim.h"

namespace hlsw::vsim {

// Parses Verilog source text and elaborates `top` (spans vsim.parse and
// vsim.elaborate). Throws std::runtime_error with a diagnostic on any
// lex/parse/elaboration failure. Results are memoized in a small
// process-wide LRU keyed by (text, top) — repeated run_testbench/replay of
// the same source skips re-parsing and re-elaboration (counters
// vsim.design_cache.hits / .misses). The returned Design is immutable, so
// sharing one instance across callers and threads is safe.
std::shared_ptr<const Design> load_design(const std::string& verilog,
                                          const std::string& top);

// Drives an elaborated emit_verilog module: pokes flattened input pins,
// toggles clk, pulses start, waits for done, and reads flattened output
// pins back into PortIo form. State (register files, adaptive weights)
// carries across run() calls exactly as in rtl::Simulator.
class DutHarness {
 public:
  DutHarness(const hls::Function& f, std::shared_ptr<const Design> design,
             const SimConfig& cfg = {});

  // Applies reset (rst high across a few clock edges). Called on
  // construction; call again to replay from scratch.
  void reset();

  hls::PortIo run(const hls::PortIo& in);
  std::vector<hls::PortIo> run_stream(const std::vector<hls::PortIo>& ins);

  // Posedges from start assertion until done was observed high for the most
  // recent vector (== schedule latency_cycles + 1 for the emitted FSM).
  long long last_cycles() const { return last_cycles_; }

  // Reads the instrumented design's perf_* counter registers (cumulative
  // since the last reset) straight out of the simulated module — the
  // measurement leg of hls::reconcile_profile. The map must come from the
  // same InstrumentOptions the module was emitted with; throws (via
  // signal_handle) if a mapped counter does not exist in the design.
  hls::CounterValues read_counters(
      const std::vector<hls::PerfCounter>& map) const;

  Simulation& sim() { return sim_; }

 private:
  void tick();

  std::vector<rtl::PortPin> pins_;
  Simulation sim_;
  // Signal handles resolved once at construction: tick()/run() poke and
  // peek by index instead of re-hashing pin names every cycle.
  std::vector<int> pin_handle_;
  int h_clk_ = -1;
  int h_rst_ = -1;
  int h_start_ = -1;
  int h_done_ = -1;
  long long last_cycles_ = 0;
};

struct TestbenchResult {
  bool passed = false;    // PASS summary printed and no FAIL lines
  bool finished = false;  // reached $finish
  long long end_time = 0;
  std::vector<std::string> display;
  std::string vcd_name;  // $dumpfile argument ("" if the tb did not dump)
  std::string vcd_text;
};

// Parses `sources` (module + generated testbench in one string), elaborates
// `tb_module`, free-runs to $finish and scans the display log.
TestbenchResult run_testbench(const std::string& sources,
                              const std::string& tb_module,
                              const SimConfig& cfg = {});

// Emits Verilog for (f, s) and differentially sweeps the executed text
// against the untimed interpreter golden. The design is parsed and
// elaborated once (and the compiled execution plan, when `cfg.compiled`,
// is memoized process-wide), so every shard shares the front-end work and
// only per-leg Simulation state is rebuilt; sharded per CosimOptions
// (thread pool, block size). Stateful designs need block_size >=
// vectors.size(), as with cosim_sweep. `cfg` selects the vsim backend for
// every leg (event vs compiled benchmarking).
hls::CosimResult vsim_sweep(const hls::Function& f, const hls::Schedule& s,
                            const std::vector<hls::PortIo>& vectors,
                            const hls::CosimOptions& opts = {},
                            const SimConfig& cfg = {});

struct VerifyEmittedResult {
  hls::CosimResult cosim;              // three-way mismatch reports
  std::vector<LintIssue> lint_issues;  // emitted module must lint clean
  TestbenchResult testbench;           // generated tb executed by vsim
  bool ok() const {
    return cosim.ok() && lint_issues.empty() && testbench.passed;
  }
};

// The full closed loop for one scheduled design: three-way differential
// (untimed golden vs rtl::Simulator vs vsim-executed Verilog text,
// bit-for-bit), structural lint of the emitted module, and the generated
// self-checking testbench run through vsim. The testbench replays the
// first (up to) 8 vectors; the differential covers all of them.
VerifyEmittedResult verify_emitted(const hls::Function& f,
                                   const hls::Schedule& s,
                                   const std::vector<hls::PortIo>& vectors,
                                   const hls::CosimOptions& opts = {});

}  // namespace hlsw::vsim
