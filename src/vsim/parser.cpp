#include "vsim/parser.h"

#include <map>
#include <stdexcept>

#include "vsim/lexer.h"

namespace hlsw::vsim {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  SourceUnit parse_unit() {
    SourceUnit su;
    while (!at_eof()) su.modules.push_back(parse_module());
    if (su.modules.empty()) fail("no modules in source");
    return su;
  }

 private:
  // ---- Token helpers -------------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  const Token& ahead(std::size_t k) const {
    return toks_[std::min(pos_ + k, toks_.size() - 1)];
  }
  bool at_eof() const { return cur().kind == Tok::kEof; }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("vsim parse error at line " +
                             std::to_string(cur().line) + ": " + what);
  }

  bool is_sym(const char* s) const {
    return cur().kind == Tok::kSymbol && cur().text == s;
  }
  bool is_kw(const char* s) const {
    return cur().kind == Tok::kIdent && cur().text == s;
  }
  Token take() { return toks_[pos_++]; }
  void expect_sym(const char* s) {
    if (!is_sym(s)) fail(std::string("expected '") + s + "'");
    ++pos_;
  }
  void expect_kw(const char* s) {
    if (!is_kw(s)) fail(std::string("expected keyword '") + s + "'");
    ++pos_;
  }
  bool eat_sym(const char* s) {
    if (!is_sym(s)) return false;
    ++pos_;
    return true;
  }
  bool eat_kw(const char* s) {
    if (!is_kw(s)) return false;
    ++pos_;
    return true;
  }
  std::string expect_ident() {
    if (cur().kind != Tok::kIdent) fail("expected identifier");
    return take().text;
  }

  long long const_int(const ExprPtr& e) const {
    // Declaration ranges and localparam values must fold to integers here
    // (localparam references resolve through the module being parsed).
    switch (e->kind) {
      case ExprKind::kNumber: {
        long long v = static_cast<long long>(e->num);
        if (e->num_sized && e->num_width < 64 && e->num_signed &&
            (e->num >> (e->num_width - 1)) & 1)
          v -= 1LL << e->num_width;
        return v;
      }
      case ExprKind::kIdent: {
        auto it = params_.find(e->name);
        if (it == params_.end())
          throw std::runtime_error("vsim parse error: '" + e->name +
                                   "' is not a constant");
        return it->second;
      }
      case ExprKind::kUnary:
        if (e->name == "-") return -const_int(e->kids[0]);
        if (e->name == "+") return const_int(e->kids[0]);
        break;
      case ExprKind::kBinary: {
        const long long a = const_int(e->kids[0]);
        const long long b = const_int(e->kids[1]);
        if (e->name == "+") return a + b;
        if (e->name == "-") return a - b;
        if (e->name == "*") return a * b;
        break;
      }
      default:
        break;
    }
    throw std::runtime_error(
        "vsim parse error: expression is not a supported constant");
  }

  // ---- Modules -------------------------------------------------------------
  Module parse_module() {
    params_.clear();
    expect_kw("module");
    Module m;
    m.name = expect_ident();
    if (eat_sym("(")) parse_ansi_ports(&m);
    expect_sym(";");
    while (!eat_kw("endmodule")) {
      if (at_eof()) fail("unexpected end of file inside module");
      parse_module_item(&m);
    }
    return m;
  }

  void parse_ansi_ports(Module* m) {
    if (eat_sym(")")) return;
    do {
      NetDecl d;
      if (eat_kw("input")) d.is_input = true;
      else if (eat_kw("output")) d.is_output = true;
      else fail("expected port direction");
      if (eat_kw("wire")) d.is_reg = false;
      else if (eat_kw("reg")) d.is_reg = true;
      if (eat_kw("signed")) d.is_signed = true;
      d.width = parse_opt_range();
      d.name = expect_ident();
      m->port_order.push_back(d.name);
      m->nets.push_back(std::move(d));
    } while (eat_sym(","));
    expect_sym(")");
  }

  // Returns the width of an optional [msb:lsb] range (1 when absent).
  int parse_opt_range() {
    if (!eat_sym("[")) return 1;
    const long long msb = const_int(parse_expr());
    expect_sym(":");
    const long long lsb = const_int(parse_expr());
    expect_sym("]");
    if (lsb != 0 || msb < 0 || msb > 63)
      fail("only [msb:0] ranges with msb<=63 are supported");
    return static_cast<int>(msb) + 1;
  }

  void parse_module_item(Module* m) {
    if (is_kw("reg") || is_kw("wire") || is_kw("integer")) {
      parse_net_decl(m);
      return;
    }
    if (eat_kw("localparam")) {
      do {
        // Optional range on the localparam itself; the value is what counts.
        if (is_sym("[")) parse_opt_range();
        const std::string name = expect_ident();
        expect_sym("=");
        const long long v = const_int(parse_expr());
        params_[name] = v;
        m->localparams.emplace_back(name, v);
      } while (eat_sym(","));
      expect_sym(";");
      return;
    }
    if (eat_kw("assign")) {
      ContAssign a;
      a.lhs = parse_lvalue();
      expect_sym("=");
      a.rhs = parse_expr();
      expect_sym(";");
      m->assigns.push_back(std::move(a));
      return;
    }
    if (eat_kw("always")) {
      m->always.push_back(parse_stmt());
      return;
    }
    if (eat_kw("initial")) {
      m->initials.push_back(parse_stmt());
      return;
    }
    if (eat_kw("task")) {
      m->tasks.push_back(parse_task());
      return;
    }
    if (cur().kind == Tok::kIdent && ahead(1).kind == Tok::kIdent &&
        ahead(2).kind == Tok::kSymbol && ahead(2).text == "(") {
      m->instances.push_back(parse_instance());
      return;
    }
    fail("unsupported module item '" + cur().text + "'");
  }

  void parse_net_decl(Module* m) {
    NetDecl base;
    if (eat_kw("integer")) {
      base.is_reg = true;
      base.is_signed = true;
      base.width = 32;
    } else {
      base.is_reg = eat_kw("reg");
      if (!base.is_reg) expect_kw("wire");
      if (eat_kw("signed")) base.is_signed = true;
      base.width = parse_opt_range();
    }
    do {
      NetDecl d = base;
      d.name = expect_ident();
      if (eat_sym("[")) {  // register file: [0:N-1]
        const long long lo = const_int(parse_expr());
        expect_sym(":");
        const long long hi = const_int(parse_expr());
        expect_sym("]");
        if (lo != 0 || hi < 0) fail("array bounds must be [0:N-1]");
        d.array_len = static_cast<int>(hi) + 1;
      }
      if (eat_sym("=")) {
        d.has_init = true;
        d.init = const_int(parse_expr());
      }
      m->nets.push_back(std::move(d));
    } while (eat_sym(","));
    expect_sym(";");
  }

  TaskDecl parse_task() {
    TaskDecl t;
    t.name = expect_ident();
    if (eat_sym("(")) {
      if (!is_sym(")")) {
        do {
          NetDecl a;
          expect_kw("input");
          if (eat_kw("integer")) {
            a.is_signed = true;
            a.width = 32;
          } else {
            if (eat_kw("reg")) {}
            if (eat_kw("signed")) a.is_signed = true;
            a.width = parse_opt_range();
          }
          a.is_reg = true;
          a.name = expect_ident();
          t.args.push_back(std::move(a));
        } while (eat_sym(","));
      }
      expect_sym(")");
    }
    expect_sym(";");
    t.body = parse_stmt();
    expect_kw("endtask");
    return t;
  }

  Instance parse_instance() {
    Instance inst;
    inst.module_name = expect_ident();
    inst.inst_name = expect_ident();
    expect_sym("(");
    if (!is_sym(")")) {
      do {
        expect_sym(".");
        PortConn pc;
        pc.port = expect_ident();
        expect_sym("(");
        if (!is_sym(")")) pc.expr = parse_expr();
        expect_sym(")");
        inst.conns.push_back(std::move(pc));
      } while (eat_sym(","));
    }
    expect_sym(")");
    expect_sym(";");
    return inst;
  }

  // ---- Statements ----------------------------------------------------------
  StmtPtr parse_stmt() {
    auto st = std::make_shared<Stmt>();
    if (eat_sym(";")) {
      st->kind = StmtKind::kNull;
      return st;
    }
    if (eat_kw("begin")) {
      st->kind = StmtKind::kBlock;
      while (!eat_kw("end")) {
        if (at_eof()) fail("unexpected end of file inside begin/end");
        st->sub.push_back(parse_stmt());
      }
      return st;
    }
    if (eat_kw("if")) {
      st->kind = StmtKind::kIf;
      expect_sym("(");
      st->cond = parse_expr();
      expect_sym(")");
      st->sub.push_back(parse_stmt());
      if (eat_kw("else")) st->sub.push_back(parse_stmt());
      return st;
    }
    if (eat_kw("case")) {
      st->kind = StmtKind::kCase;
      expect_sym("(");
      st->cond = parse_expr();
      expect_sym(")");
      while (!eat_kw("endcase")) {
        if (at_eof()) fail("unexpected end of file inside case");
        CaseItem item;
        if (eat_kw("default")) {
          item.is_default = true;
          eat_sym(":");
        } else {
          do item.labels.push_back(parse_expr());
          while (eat_sym(","));
          expect_sym(":");
        }
        item.body = parse_stmt();
        st->items.push_back(std::move(item));
      }
      return st;
    }
    if (eat_kw("repeat")) {
      st->kind = StmtKind::kRepeat;
      expect_sym("(");
      st->cond = parse_expr();
      expect_sym(")");
      st->sub.push_back(parse_stmt());
      return st;
    }
    if (eat_kw("forever")) {
      st->kind = StmtKind::kForever;
      st->sub.push_back(parse_stmt());
      return st;
    }
    if (eat_sym("@")) {
      st->kind = StmtKind::kEventCtrl;
      expect_sym("(");
      do {
        Edge e = Edge::kAny;
        if (eat_kw("posedge")) e = Edge::kPos;
        else if (eat_kw("negedge")) e = Edge::kNeg;
        st->events.emplace_back(e, parse_expr());
      } while (eat_kw("or") || eat_sym(","));
      expect_sym(")");
      st->sub.push_back(parse_stmt());
      return st;
    }
    if (eat_sym("#")) {
      st->kind = StmtKind::kDelay;
      if (cur().kind != Tok::kNumber) fail("expected delay value after '#'");
      st->delay = static_cast<double>(take().value);
      st->sub.push_back(parse_stmt());
      return st;
    }
    if (cur().kind == Tok::kSysName) {
      st->kind = StmtKind::kSysTask;
      st->callee = take().text;
      if (eat_sym("(")) {
        if (!is_sym(")")) {
          do st->args.push_back(parse_expr());
          while (eat_sym(","));
        }
        expect_sym(")");
      }
      expect_sym(";");
      return st;
    }
    if (cur().kind == Tok::kIdent) {
      // Either a task enable `name(...);` or an assignment.
      if (ahead(1).kind == Tok::kSymbol &&
          (ahead(1).text == "(" || ahead(1).text == ";")) {
        st->kind = StmtKind::kTaskCall;
        st->callee = take().text;
        if (eat_sym("(")) {
          if (!is_sym(")")) {
            do st->args.push_back(parse_expr());
            while (eat_sym(","));
          }
          expect_sym(")");
        }
        expect_sym(";");
        return st;
      }
      st->lhs = parse_lvalue();
      if (eat_sym("=")) st->kind = StmtKind::kBlockingAssign;
      else if (eat_sym("<=")) st->kind = StmtKind::kNbAssign;
      else fail("expected '=' or '<=' in assignment");
      st->rhs = parse_expr();
      expect_sym(";");
      return st;
    }
    fail("unsupported statement starting at '" + cur().text + "'");
  }

  // LHS of an assignment: identifier with optional single element select.
  ExprPtr parse_lvalue() {
    auto id = std::make_shared<Expr>();
    id->kind = ExprKind::kIdent;
    id->name = expect_ident();
    if (eat_sym("[")) {
      auto sel = std::make_shared<Expr>();
      sel->kind = ExprKind::kSelect;
      sel->kids.push_back(std::move(id));
      sel->kids.push_back(parse_expr());
      expect_sym("]");
      return sel;
    }
    return id;
  }

  // ---- Expressions (precedence climbing) ----------------------------------
  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr c = parse_binary(0);
    if (!eat_sym("?")) return c;
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kTernary;
    e->kids.push_back(std::move(c));
    e->kids.push_back(parse_ternary());
    expect_sym(":");
    e->kids.push_back(parse_ternary());
    return e;
  }

  // Binary precedence tiers, loosest first.
  static int tier_of(const std::string& op) {
    if (op == "||") return 0;
    if (op == "&&") return 1;
    if (op == "|") return 2;
    if (op == "^" || op == "~^" || op == "^~") return 3;
    if (op == "&") return 4;
    if (op == "==" || op == "!=" || op == "===" || op == "!==") return 5;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 6;
    if (op == "<<" || op == ">>" || op == "<<<" || op == ">>>") return 7;
    if (op == "+" || op == "-") return 8;
    if (op == "*" || op == "/" || op == "%") return 9;
    return -1;
  }
  static constexpr int kTiers = 10;

  ExprPtr parse_binary(int tier) {
    if (tier >= kTiers) return parse_unary();
    ExprPtr lhs = parse_binary(tier + 1);
    while (cur().kind == Tok::kSymbol && tier_of(cur().text) == tier) {
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kBinary;
      e->name = take().text;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(parse_binary(tier + 1));
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (cur().kind == Tok::kSymbol) {
      const std::string& s = cur().text;
      if (s == "-" || s == "+" || s == "~" || s == "!" || s == "&" ||
          s == "|" || s == "^" || s == "~&" || s == "~|" || s == "~^" ||
          s == "^~") {
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kUnary;
        e->name = take().text;
        e->kids.push_back(parse_unary());
        return e;
      }
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    // Element/bit selects and part selects, possibly chained (m[i][b]).
    while (is_sym("[")) {
      if (e->kind != ExprKind::kIdent && e->kind != ExprKind::kSelect)
        fail("select applied to a non-identifier expression");
      ++pos_;
      ExprPtr first = parse_expr();
      if (eat_sym(":")) {
        auto r = std::make_shared<Expr>();
        r->kind = ExprKind::kRange;
        r->kids.push_back(std::move(e));
        r->kids.push_back(std::move(first));
        r->kids.push_back(parse_expr());
        expect_sym("]");
        e = std::move(r);
      } else {
        auto s = std::make_shared<Expr>();
        s->kind = ExprKind::kSelect;
        s->kids.push_back(std::move(e));
        s->kids.push_back(std::move(first));
        expect_sym("]");
        e = std::move(s);
      }
    }
    return e;
  }

  ExprPtr parse_primary() {
    if (cur().kind == Tok::kNumber) {
      const Token t = take();
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kNumber;
      e->num = t.value;
      e->num_width = t.width;
      e->num_sized = t.sized;
      e->num_signed = t.is_signed;
      return e;
    }
    if (cur().kind == Tok::kString) {
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kString;
      e->str = take().text;
      return e;
    }
    if (cur().kind == Tok::kSysName) {
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kSysCall;
      e->name = take().text;
      if (e->name == "$time") return e;  // argument-less system function
      expect_sym("(");
      do e->kids.push_back(parse_expr());
      while (eat_sym(","));
      expect_sym(")");
      return e;
    }
    if (cur().kind == Tok::kIdent) {
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kIdent;
      e->name = take().text;
      return e;
    }
    if (eat_sym("(")) {
      ExprPtr e = parse_expr();
      expect_sym(")");
      return e;
    }
    if (eat_sym("{")) {
      ExprPtr first = parse_expr();
      if (is_sym("{")) {
        // Replication {N{...}}: the inner braces hold a concat list.
        ++pos_;
        auto r = std::make_shared<Expr>();
        r->kind = ExprKind::kReplicate;
        r->kids.push_back(std::move(first));  // count
        auto inner = std::make_shared<Expr>();
        inner->kind = ExprKind::kConcat;
        do inner->kids.push_back(parse_expr());
        while (eat_sym(","));
        expect_sym("}");
        r->kids.push_back(inner->kids.size() == 1 ? inner->kids[0] : inner);
        expect_sym("}");
        return r;
      }
      auto c = std::make_shared<Expr>();
      c->kind = ExprKind::kConcat;
      c->kids.push_back(std::move(first));
      while (eat_sym(",")) c->kids.push_back(parse_expr());
      expect_sym("}");
      return c;
    }
    fail("unexpected token '" + cur().text + "' in expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::map<std::string, long long> params_;
};

}  // namespace

SourceUnit parse(const std::string& src) { return Parser(lex(src)).parse_unit(); }

}  // namespace hlsw::vsim
