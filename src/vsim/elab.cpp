#include "vsim/elab.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hlsw::vsim {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("vsim elaboration error: " + what);
}

// Constant folding over annotated expressions (localparams are already
// literals by the time this runs).
long long fold_const(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumber: {
      long long v = static_cast<long long>(e.num);
      if (e.num_sized && e.num_width < 64 && e.num_signed &&
          (e.num >> (e.num_width - 1)) & 1)
        v -= 1LL << e.num_width;
      return v;
    }
    case ExprKind::kUnary:
      if (e.name == "-") return -fold_const(*e.kids[0]);
      if (e.name == "+") return fold_const(*e.kids[0]);
      break;
    case ExprKind::kBinary: {
      const long long a = fold_const(*e.kids[0]);
      const long long b = fold_const(*e.kids[1]);
      if (e.name == "+") return a + b;
      if (e.name == "-") return a - b;
      if (e.name == "*") return a * b;
      break;
    }
    default:
      break;
  }
  fail("expression used where a constant is required");
}

class Elaborator {
 public:
  explicit Elaborator(const SourceUnit& su) {
    for (const auto& m : su.modules) {
      if (!modules_.emplace(m.name, &m).second)
        fail("duplicate module '" + m.name + "'");
    }
  }

  std::shared_ptr<const Design> run(const std::string& top) {
    const Module* m = module(top);
    design_ = std::make_shared<Design>();
    design_->top = top;

    Scope scope;
    scope.mod = m;
    // Top-level nets become signals under their own names; top ports keep
    // their direction so harness code can poke inputs / read outputs.
    declare_nets(*m, "", &scope, /*top_level=*/true);
    elaborate_module(*m, scope, 0);
    return design_;
  }

 private:
  struct Scope {
    const Module* mod = nullptr;
    std::string prefix;
    std::map<std::string, int> names;
    std::map<std::string, long long> params;
  };

  const Module* module(const std::string& name) const {
    auto it = modules_.find(name);
    if (it == modules_.end()) fail("unknown module '" + name + "'");
    return it->second;
  }

  int add_signal(Signal s) {
    if (s.width < 1 || s.width > 64)
      fail("signal '" + s.name + "' has unsupported width " +
           std::to_string(s.width));
    const int idx = static_cast<int>(design_->signals.size());
    if (!design_->signal_index.emplace(s.name, idx).second)
      fail("duplicate signal '" + s.name + "'");
    design_->signals.push_back(std::move(s));
    return idx;
  }

  void declare_nets(const Module& m, const std::string& prefix, Scope* scope,
                    bool top_level) {
    scope->prefix = prefix;
    for (const auto& [name, value] : m.localparams)
      scope->params[name] = value;
    for (const auto& d : m.nets) {
      // Instance port nets are aliased to parent signals by the caller.
      if (!top_level && (d.is_input || d.is_output) &&
          scope->names.count(d.name))
        continue;
      Signal s;
      s.name = prefix + d.name;
      s.width = d.width;
      s.is_signed = d.is_signed;
      s.is_reg = d.is_reg;
      s.array_len = d.array_len;
      s.has_init = d.has_init;
      s.init = d.init;
      if (top_level) {
        s.is_top_input = d.is_input;
        s.is_top_output = d.is_output;
      }
      scope->names[d.name] = add_signal(std::move(s));
    }
  }

  void elaborate_module(const Module& m, Scope scope, int depth) {
    if (depth > 8) fail("instance nesting too deep");

    // Instances first (declaration order), so a testbench's DUT processes
    // precede the testbench's own — a fixed, documented order.
    for (const auto& inst : m.instances) {
      const Module* inner = module(inst.module_name);
      Scope child;
      child.mod = inner;
      const std::string prefix = scope.prefix + inst.inst_name + ".";
      std::set<std::string> inner_ports(inner->port_order.begin(),
                                        inner->port_order.end());
      for (const auto& conn : inst.conns) {
        if (!inner_ports.count(conn.port))
          fail("instance '" + inst.inst_name + "' connects unknown port '" +
               conn.port + "'");
        const NetDecl* pd = nullptr;
        for (const auto& d : inner->nets)
          if (d.name == conn.port) pd = &d;
        if (pd == nullptr) fail("port '" + conn.port + "' has no declaration");
        int sig;
        if (conn.expr == nullptr) {
          Signal s;  // unconnected port: private floating net
          s.name = prefix + conn.port;
          s.width = pd->width;
          s.is_signed = pd->is_signed;
          s.is_reg = pd->is_reg;
          sig = add_signal(std::move(s));
        } else {
          if (conn.expr->kind != ExprKind::kIdent)
            fail("port connection '." + conn.port +
                 "(...)' must be a plain identifier");
          auto it = scope.names.find(conn.expr->name);
          if (it == scope.names.end())
            fail("port connection references undeclared '" +
                 conn.expr->name + "'");
          sig = it->second;
          Signal& s = design_->signals[static_cast<size_t>(sig)];
          if (s.width != pd->width)
            fail("width mismatch on port '" + conn.port + "' of instance '" +
                 inst.inst_name + "'");
          // A procedurally driven output makes the connected parent net
          // register-like for lint purposes.
          s.is_reg = s.is_reg || pd->is_reg;
        }
        child.names[conn.port] = sig;
      }
      declare_nets(*inner, prefix, &child, /*top_level=*/false);
      elaborate_module(*inner, child, depth + 1);
    }

    for (const auto& a : m.assigns) {
      ElabAssign ea;
      ExprPtr lhs = a.lhs;
      annotate(&lhs, scope);
      if (lhs->kind != ExprKind::kIdent)
        fail("continuous assign target must be a scalar signal");
      ea.target = lhs->sig;
      ea.rhs = a.rhs;
      annotate(&ea.rhs, scope);
      collect_reads(*ea.rhs, &ea.deps);
      std::sort(ea.deps.begin(), ea.deps.end());
      ea.deps.erase(std::unique(ea.deps.begin(), ea.deps.end()),
                    ea.deps.end());
      design_->assigns.push_back(std::move(ea));
    }

    int n = 0;
    for (const auto& st : m.always) {
      Process p;
      p.body = st;
      annotate_stmt(&p.body, scope);
      p.is_always = true;
      p.origin = scope.prefix + m.name + ".always[" + std::to_string(n++) + "]";
      design_->processes.push_back(std::move(p));
    }
    n = 0;
    for (const auto& st : m.initials) {
      Process p;
      p.body = st;
      annotate_stmt(&p.body, scope);
      p.is_always = false;
      p.origin =
          scope.prefix + m.name + ".initial[" + std::to_string(n++) + "]";
      design_->processes.push_back(std::move(p));
    }
  }

  // ---- Statement annotation (with task inlining) ---------------------------
  void annotate_stmt(StmtPtr* sp, Scope& scope) {
    Stmt& st = **sp;
    switch (st.kind) {
      case StmtKind::kBlock:
      case StmtKind::kForever:
        for (auto& s : st.sub) annotate_stmt(&s, scope);
        break;
      case StmtKind::kBlockingAssign:
      case StmtKind::kNbAssign:
        annotate(&st.lhs, scope);
        if (st.lhs->kind != ExprKind::kIdent &&
            st.lhs->kind != ExprKind::kSelect)
          fail("unsupported assignment target");
        annotate(&st.rhs, scope);
        break;
      case StmtKind::kIf:
        annotate(&st.cond, scope);
        for (auto& s : st.sub) annotate_stmt(&s, scope);
        break;
      case StmtKind::kCase:
        annotate(&st.cond, scope);
        for (auto& item : st.items) {
          for (auto& l : item.labels) annotate(&l, scope);
          annotate_stmt(&item.body, scope);
        }
        break;
      case StmtKind::kRepeat:
        annotate(&st.cond, scope);
        annotate_stmt(&st.sub[0], scope);
        break;
      case StmtKind::kEventCtrl:
        for (auto& [edge, e] : st.events) {
          annotate(&e, scope);
          if (e->kind != ExprKind::kIdent)
            fail("event controls must name a scalar signal");
        }
        annotate_stmt(&st.sub[0], scope);
        break;
      case StmtKind::kDelay:
        annotate_stmt(&st.sub[0], scope);
        break;
      case StmtKind::kSysTask:
        for (auto& a : st.args) annotate(&a, scope);
        break;
      case StmtKind::kTaskCall:
        inline_task(sp, scope);
        break;
      case StmtKind::kNull:
        break;
    }
  }

  void inline_task(StmtPtr* sp, Scope& scope) {
    const Stmt call = **sp;
    const TaskDecl* task = nullptr;
    for (const auto& t : scope.mod->tasks)
      if (t.name == call.callee) task = &t;
    if (task == nullptr) fail("call to unknown task '" + call.callee + "'");
    if (call.args.size() != task->args.size())
      fail("task '" + task->name + "' called with wrong argument count");
    if (!tasks_in_progress_.insert(scope.prefix + task->name).second)
      fail("recursive task '" + task->name + "' is not supported");

    // Argument signals are created once per elaborated scope; the annotated
    // body is cached and shared across every call site.
    Scope task_scope = scope;
    for (const auto& a : task->args) {
      const std::string full =
          scope.prefix + task->name + "." + a.name;
      int sig = design_->find(full);
      if (sig < 0) {
        Signal s;
        s.name = full;
        s.width = a.width;
        s.is_signed = a.is_signed;
        s.is_reg = true;
        s.is_task_arg = true;
        sig = add_signal(std::move(s));
      }
      task_scope.names[a.name] = sig;
    }
    const std::string cache_key = scope.prefix + task->name;
    auto it = task_bodies_.find(cache_key);
    if (it == task_bodies_.end()) {
      StmtPtr body = task->body;
      annotate_stmt(&body, task_scope);
      it = task_bodies_.emplace(cache_key, std::move(body)).first;
    }

    auto block = std::make_shared<Stmt>();
    block->kind = StmtKind::kBlock;
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      auto asg = std::make_shared<Stmt>();
      asg->kind = StmtKind::kBlockingAssign;
      auto lhs = std::make_shared<Expr>();
      lhs->kind = ExprKind::kIdent;
      lhs->name = task->args[i].name;
      lhs->sig = task_scope.names.at(task->args[i].name);
      const Signal& s = design_->signals[static_cast<size_t>(lhs->sig)];
      lhs->self_w = s.width;
      lhs->self_sgn = s.is_signed;
      asg->lhs = std::move(lhs);
      asg->rhs = call.args[i];
      annotate(&asg->rhs, scope);
      block->sub.push_back(std::move(asg));
    }
    block->sub.push_back(it->second);
    *sp = std::move(block);
    tasks_in_progress_.erase(scope.prefix + task->name);
  }

  // ---- Expression annotation: resolution + LRM self-sizing ----------------
  void annotate(ExprPtr* ep, const Scope& scope) {
    Expr& e = **ep;
    switch (e.kind) {
      case ExprKind::kNumber:
        e.self_w = e.num_sized ? e.num_width : 32;
        e.self_sgn = e.num_signed;
        return;
      case ExprKind::kString:
        e.self_w = 0;
        return;
      case ExprKind::kIdent: {
        auto it = scope.names.find(e.name);
        if (it != scope.names.end()) {
          e.sig = it->second;
          const Signal& s = design_->signals[static_cast<size_t>(e.sig)];
          e.self_w = s.width;
          e.self_sgn = s.is_signed;
          return;
        }
        auto pit = scope.params.find(e.name);
        if (pit != scope.params.end()) {
          // Fold localparams to unsized signed literals in place.
          e.kind = ExprKind::kNumber;
          e.num = static_cast<unsigned long long>(pit->second) & 0xffffffffULL;
          e.num_width = 32;
          e.num_sized = false;
          e.num_signed = true;
          e.self_w = 32;
          e.self_sgn = true;
          return;
        }
        fail("undeclared identifier '" + e.name + "'");
      }
      case ExprKind::kSelect: {
        annotate(&e.kids[0], scope);
        annotate(&e.kids[1], scope);
        const Expr& base = *e.kids[0];
        if (base.kind == ExprKind::kIdent && base.sig >= 0 &&
            design_->signals[static_cast<size_t>(base.sig)].array_len > 0) {
          const Signal& s = design_->signals[static_cast<size_t>(base.sig)];
          e.self_w = s.width;   // register-file element select
          e.self_sgn = s.is_signed;
        } else {
          e.self_w = 1;         // bit select
          e.self_sgn = false;
        }
        return;
      }
      case ExprKind::kRange: {
        annotate(&e.kids[0], scope);
        annotate(&e.kids[1], scope);
        annotate(&e.kids[2], scope);
        e.hi = static_cast<int>(fold_const(*e.kids[1]));
        e.lo = static_cast<int>(fold_const(*e.kids[2]));
        if (e.lo < 0 || e.hi < e.lo || e.hi > 63)
          fail("part select bounds out of range");
        e.self_w = e.hi - e.lo + 1;
        e.self_sgn = false;
        return;
      }
      case ExprKind::kUnary:
        annotate(&e.kids[0], scope);
        if (e.name == "-" || e.name == "+" || e.name == "~") {
          e.self_w = e.kids[0]->self_w;
          e.self_sgn = e.kids[0]->self_sgn;
        } else {  // ! and reductions
          e.self_w = 1;
          e.self_sgn = false;
        }
        return;
      case ExprKind::kBinary: {
        annotate(&e.kids[0], scope);
        annotate(&e.kids[1], scope);
        const std::string& op = e.name;
        if (op == "==" || op == "!=" || op == "===" || op == "!==" ||
            op == "<" || op == "<=" || op == ">" || op == ">=" ||
            op == "&&" || op == "||") {
          e.self_w = 1;
          e.self_sgn = false;
        } else if (op == "<<" || op == ">>" || op == "<<<" || op == ">>>") {
          e.self_w = e.kids[0]->self_w;
          e.self_sgn = e.kids[0]->self_sgn;
        } else {
          e.self_w = std::max(e.kids[0]->self_w, e.kids[1]->self_w);
          e.self_sgn = e.kids[0]->self_sgn && e.kids[1]->self_sgn;
        }
        return;
      }
      case ExprKind::kTernary:
        for (auto& k : e.kids) annotate(&k, scope);
        e.self_w = std::max(e.kids[1]->self_w, e.kids[2]->self_w);
        e.self_sgn = e.kids[1]->self_sgn && e.kids[2]->self_sgn;
        return;
      case ExprKind::kConcat: {
        int w = 0;
        for (auto& k : e.kids) {
          annotate(&k, scope);
          w += k->self_w;
        }
        if (w < 1 || w > 64) fail("concatenation wider than 64 bits");
        e.self_w = w;
        e.self_sgn = false;
        return;
      }
      case ExprKind::kReplicate: {
        annotate(&e.kids[0], scope);
        annotate(&e.kids[1], scope);
        e.repl = fold_const(*e.kids[0]);
        const long long w = e.repl * e.kids[1]->self_w;
        if (e.repl < 1 || w > 64) fail("replication wider than 64 bits");
        e.self_w = static_cast<int>(w);
        e.self_sgn = false;
        return;
      }
      case ExprKind::kSysCall:
        for (auto& k : e.kids) annotate(&k, scope);
        if (e.name == "$signed" || e.name == "$unsigned") {
          if (e.kids.size() != 1) fail(e.name + " takes one argument");
          e.self_w = e.kids[0]->self_w;
          e.self_sgn = e.name == "$signed";
        } else if (e.name == "$time") {
          e.self_w = 64;
          e.self_sgn = false;
        } else {
          fail("unsupported system function '" + e.name + "'");
        }
        return;
    }
  }

  std::map<std::string, const Module*> modules_;
  std::shared_ptr<Design> design_;
  std::map<std::string, StmtPtr> task_bodies_;
  std::set<std::string> tasks_in_progress_;
};

}  // namespace

void collect_reads(const Expr& e, std::vector<int>* out) {
  if (e.kind == ExprKind::kIdent && e.sig >= 0) out->push_back(e.sig);
  for (const auto& k : e.kids)
    if (k) collect_reads(*k, out);
}

std::shared_ptr<const Design> elaborate(const SourceUnit& su,
                                        const std::string& top_module) {
  return Elaborator(su).run(top_module);
}

}  // namespace hlsw::vsim
