#include "vsim/pack.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtl/testbench.h"
#include "vsim/codegen.h"

// The lane loops below autovectorize, but the default x86-64 baseline only
// gives SSE2 (2 lanes per vector op). target_clones emits additional
// AVX2/AVX-512 bodies for the hot engine functions and picks the widest
// the host supports at load time (GNU ifunc), so one portable binary gets
// 4-8 lanes per vector op where available — measured ~1.5x on the packed
// sweep. No-op on toolchains without the attribute. Also disabled under
// ThreadSanitizer: the ifunc resolvers target_clones emits run during
// relocation, before the TSan runtime has set up its thread state, and the
// instrumented resolver prologue (__tsan_func_entry) then segfaults on the
// null TLS — the sanitized build only checks races, it does not need SIMD.
#ifndef __has_attribute
#define __has_attribute(x) 0
#endif
#if defined(__SANITIZE_THREAD__)
#define HLSW_PACK_NO_SIMD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HLSW_PACK_NO_SIMD 1
#endif
#endif
#if defined(__x86_64__) && defined(__ELF__) && !defined(HLSW_PACK_NO_SIMD) && \
    __has_attribute(target_clones)
#define HLSW_PACK_SIMD \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define HLSW_PACK_SIMD
#endif

namespace hlsw::vsim {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("vsim runtime error: " + what);
}

inline std::uint64_t umask(int w) {
  return w >= 64 ? ~0ULL : (1ULL << w) - 1ULL;
}

inline long long s64(std::uint64_t v, int w) {
  if (w < 64 && ((v >> (w - 1)) & 1)) v |= ~umask(w);
  return static_cast<long long>(v);
}

inline int popcount(std::uint64_t m) { return __builtin_popcountll(m); }

// Load-site classification as in compile.cpp: the xL superinstructions are
// reads of val[a] too.
inline bool reads_scalar(const TOp& o) {
  switch (o.code) {
    case TOp::kLoad:
    case TOp::kLoadSx:
    case TOp::kLoadTr:
    case TOp::kAddL:
    case TOp::kSubL:
    case TOp::kMulL:
    case TOp::kAndL:
    case TOp::kOrL:
    case TOp::kXorL:
    case TOp::kConcatL:
    case TOp::kRangeL:
    case TOp::kLoadShlC:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ---- PackedSim --------------------------------------------------------------

PackedSim::PackedSim(std::shared_ptr<const CompiledDesign> cd, int lanes,
                     const SimConfig& cfg)
    : cd_(std::move(cd)), cfg_(cfg), lanes_(lanes) {
  if (lanes_ < 1 || lanes_ > kMaxLanes)
    fail("packed lane count " + std::to_string(lanes_) + " outside [1, " +
         std::to_string(kMaxLanes) + "]");
  full_mask_ = lanes_ == 64 ? ~0ULL : (1ULL << lanes_) - 1ULL;

  const Design& d = *cd_->design;
  const std::size_t nsig = d.signals.size();
  const std::size_t L = static_cast<std::size_t>(lanes_);
  vals_.assign(nsig * L, 0);
  arr_.resize(nsig);
  for (std::size_t i = 0; i < nsig; ++i) {
    const Signal& s = d.signals[i];
    if (s.array_len > 0) {
      arr_[i].assign(static_cast<std::size_t>(s.array_len) * L, 0);
    } else if (s.has_init) {
      const std::uint64_t v =
          static_cast<std::uint64_t>(s.init) & cd_->sig_mask[i];
      std::fill_n(val(static_cast<int>(i)), L, v);
    }
  }
  stack_.resize(static_cast<std::size_t>(std::max(cd_->max_stack, 1)) * L);
  scratch_.resize(2 * L);

  level_q_.resize(static_cast<std::size_t>(std::max(cd_->num_levels, 1)));
  node_pending_.assign(cd_->nodes.size(), 0);
  for (std::size_t i = 0; i < cd_->nodes.size(); ++i) {
    if (cd_->node_lazy[i]) continue;
    node_pending_[i] = 1;
    level_q_[static_cast<std::size_t>(cd_->nodes[i].level)].push_back(
        static_cast<std::int32_t>(i));
    ++pending_;
  }

  ready_.assign(cd_->procs.size(), 0);
  reps_.resize(cd_->procs.size());
  for (auto& r : reps_) r.resize(L);
  for (std::size_t p = 0; p < cd_->procs.size(); ++p)
    if (cd_->procs[p].initially_ready) ready_[p] = full_mask_;
  settle();
}

PackedSim::~PackedSim() {
  if (obs::enabled()) {
    auto& m = obs::MetricsRegistry::instance();
    m.add("vsim.events", static_cast<double>(stats_.events));
    m.add("vsim.nba_commits", static_cast<double>(stats_.nba_commits));
    if (divergence_splits_ > 0)
      m.add("vsim.packed.divergence_splits",
            static_cast<double>(divergence_splits_));
  }
}

void PackedSim::fail_budget(int proc) const {
  fail("instruction budget exceeded without time advancing "
       "(zero-delay loop in " +
       cd_->procs[static_cast<std::size_t>(proc)].origin + "?)");
}

void PackedSim::mark_fanout(int sig) {
  const auto b = cd_->fan_index[static_cast<std::size_t>(sig)];
  const auto e = cd_->fan_index[static_cast<std::size_t>(sig) + 1];
  for (auto i = b; i < e; ++i) {
    const std::int32_t n = cd_->fan_nodes[static_cast<std::size_t>(i)];
    if (!node_pending_[static_cast<std::size_t>(n)]) {
      node_pending_[static_cast<std::size_t>(n)] = 1;
      level_q_[static_cast<std::size_t>(
                   cd_->nodes[static_cast<std::size_t>(n)].level)]
          .push_back(n);
      ++pending_;
    }
  }
}

HLSW_PACK_SIMD
void PackedSim::set_masked(int sig, const std::uint64_t* nv,
                           std::uint64_t mask) {
  if (mask == 0) return;
  const std::uint64_t sm = cd_->sig_mask[static_cast<std::size_t>(sig)];
  std::uint64_t* v = val(sig);
  std::uint64_t ch = 0, pos = 0, neg = 0;
  if (mask == full_mask_) {
    // Full-context write (every flush store, most proc stores in lockstep):
    // branchless — stores are unconditional (unchanged lanes rewrite their
    // old value) and the edge masks need no change guard, since a bit-0
    // transition implies o != n.
    for (int l = 0; l < lanes_; ++l) {
      const std::uint64_t n = nv[l] & sm;
      const std::uint64_t o = v[l];
      v[l] = n;
      ch |= static_cast<std::uint64_t>(o != n) << l;
      pos |= ((~o & n) & 1) << l;
      neg |= ((o & ~n) & 1) << l;
    }
  } else {
    for (int l = 0; l < lanes_; ++l) {
      if (!((mask >> l) & 1)) continue;
      const std::uint64_t n = nv[l] & sm;
      const std::uint64_t o = v[l];
      if (o == n) continue;
      v[l] = n;
      const std::uint64_t bit = 1ULL << l;
      ch |= bit;
      if (!(o & 1) && (n & 1)) pos |= bit;
      if ((o & 1) && !(n & 1)) neg |= bit;
    }
  }
  if (ch == 0) return;
  stats_.events += popcount(ch);
  mark_fanout(sig);
  const auto b = cd_->trig_index[static_cast<std::size_t>(sig)];
  const auto e = cd_->trig_index[static_cast<std::size_t>(sig) + 1];
  for (auto i = b; i < e; ++i) {
    const auto& t = cd_->trigs[static_cast<std::size_t>(i)];
    // Self-skip, per lane exact: every changed lane lies inside the
    // running context's mask, so the whole change mask is the process's
    // own write.
    if (t.proc == running_proc_) continue;
    ready_[static_cast<std::size_t>(t.proc)] |=
        t.edge == Edge::kAny ? ch : (t.edge == Edge::kPos ? pos : neg);
  }
}

void PackedSim::set_masked_const(int sig, std::uint64_t nv,
                                 std::uint64_t mask) {
  std::uint64_t* plane = scratch_.data();
  for (int l = 0; l < lanes_; ++l) plane[l] = nv;
  set_masked(sig, plane, mask);
}

void PackedSim::set_elem_lane(int sig, int lane, long long index,
                              std::uint64_t v) {
  const long long n =
      cd_->design->signals[static_cast<std::size_t>(sig)].array_len;
  if (index < 0 || index >= n) return;  // silent drop, kernel parity
  v &= cd_->sig_mask[static_cast<std::size_t>(sig)];
  std::uint64_t& slot =
      arr_[static_cast<std::size_t>(sig)]
          [static_cast<std::size_t>(index) * lanes_ +
           static_cast<std::size_t>(lane)];
  if (slot == v) return;
  slot = v;
  ++stats_.events;
  mark_fanout(sig);  // element writes never wake edge waits
}

void PackedSim::poke(int sig, std::uint64_t value, std::uint64_t mask) {
  set_masked_const(sig, value, mask & full_mask_);
}

void PackedSim::poke_lane(int sig, int lane, std::uint64_t value) {
  set_masked_const(sig, value, 1ULL << lane);
}

void PackedSim::poke_plane(int sig, const std::uint64_t* plane,
                           std::uint64_t mask) {
  set_masked(sig, plane, mask & full_mask_);
}

std::uint64_t PackedSim::peek_nonzero_mask(int sig) const {
  const std::int32_t n = cd_->node_of[static_cast<std::size_t>(sig)];
  if (n >= 0 && cd_->node_lazy[static_cast<std::size_t>(n)])
    const_cast<PackedSim*>(this)->force_lazy(n);
  const std::uint64_t* v = val(sig);
  std::uint64_t m = 0;
  for (int l = 0; l < lanes_; ++l)
    m |= static_cast<std::uint64_t>(v[l] != 0) << l;
  return m;
}

std::uint64_t PackedSim::peek(int sig, int lane) const {
  const std::int32_t n = cd_->node_of[static_cast<std::size_t>(sig)];
  if (n >= 0 && cd_->node_lazy[static_cast<std::size_t>(n)])
    const_cast<PackedSim*>(this)->force_lazy(n);
  return val(sig)[lane];
}

long long PackedSim::peek_signed(int sig, int lane) const {
  return s64(peek(sig, lane),
             cd_->design->signals[static_cast<std::size_t>(sig)].width);
}

std::uint64_t PackedSim::peek_elem(int sig, int index, int lane) const {
  const Signal& s = cd_->design->signals[static_cast<std::size_t>(sig)];
  if (index < 0 || index >= s.array_len)
    fail("element " + std::to_string(index) + " out of range for '" + s.name +
         "'");
  return arr_[static_cast<std::size_t>(sig)]
             [static_cast<std::size_t>(index) * lanes_ +
              static_cast<std::size_t>(lane)];
}

void PackedSim::force_lazy(int node) {
  const CompiledDesign::Node& nd = cd_->nodes[static_cast<std::size_t>(node)];
  const TapeRef& t = cd_->tapes[static_cast<std::size_t>(nd.tape)];
  for (std::uint32_t i = t.begin; i < t.begin + t.len; ++i) {
    const TOp& o = cd_->ops[i];
    if (!reads_scalar(o)) continue;
    const std::int32_t m = cd_->node_of[static_cast<std::size_t>(o.a)];
    if (m >= 0 && cd_->node_lazy[static_cast<std::size_t>(m)]) force_lazy(m);
  }
  // Shadow write: masked store only, no events, no fanout (logical const).
  const std::uint64_t* r = run_tape(nd.tape);
  const std::uint64_t sm = cd_->sig_mask[static_cast<std::size_t>(nd.target)];
  std::uint64_t* v = val(nd.target);
  for (int l = 0; l < lanes_; ++l) v[l] = r[l] & sm;
}

// ---- Packed tape evaluation -------------------------------------------------

// Every op body is a lane loop over contiguous planes — one dispatch per op
// covers all lanes, and the loops autovectorize. Evaluation is pure, so
// computing lanes outside the running context's mask is harmless (their
// results are simply never consumed).
HLSW_PACK_SIMD
const std::uint64_t* PackedSim::run_tape(int tape) {
  const TapeRef& t = cd_->tapes[static_cast<std::size_t>(tape)];
  const TOp* op = cd_->ops.data() + t.begin;
  const int L = lanes_;
  int sp = 0;
  for (;; ++op) {
    switch (op->code) {
      case TOp::kConst: {
        std::uint64_t* d = at(sp++);
        for (int l = 0; l < L; ++l) d[l] = op->imm;
        break;
      }
      case TOp::kLoad: {
        const std::uint64_t* s = val(op->a);
        std::copy(s, s + L, at(sp++));
        break;
      }
      case TOp::kLoadSx: {
        const std::uint64_t* s = val(op->a);
        std::uint64_t* d = at(sp++);
        const std::uint64_t ext = ~umask(op->w);
        for (int l = 0; l < L; ++l) {
          std::uint64_t v = s[l];
          if ((v >> (op->w - 1)) & 1) v |= ext;
          d[l] = v & op->imm;
        }
        break;
      }
      case TOp::kLoadTr: {
        const std::uint64_t* s = val(op->a);
        std::uint64_t* d = at(sp++);
        for (int l = 0; l < L; ++l) d[l] = s[l] & op->imm;
        break;
      }
      case TOp::kLoadElem: {
        std::uint64_t* d = at(sp - 1);
        const auto& a = arr_[static_cast<std::size_t>(op->a)];
        const long long n =
            cd_->design->signals[static_cast<std::size_t>(op->a)].array_len;
        const std::uint64_t ext = op->w ? ~umask(op->w) : 0;
        for (int l = 0; l < L; ++l) {
          std::uint64_t u = d[l];
          if (op->w && ((u >> (op->w - 1)) & 1)) u |= ext;
          const long long idx = static_cast<long long>(u);
          d[l] = (idx >= 0 && idx < n)
                     ? a[static_cast<std::size_t>(idx) * L + l]
                     : 0;
        }
        break;
      }
      case TOp::kTrunc: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] &= op->imm;
        break;
      }
      case TOp::kSext: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t ext = ~umask(op->w);
        for (int l = 0; l < L; ++l) {
          std::uint64_t v = d[l];
          if ((v >> (op->w - 1)) & 1) v |= ext;
          d[l] = v & op->imm;
        }
        break;
      }
      case TOp::kToSigned: {
        std::uint64_t* d = at(sp - 1);
        if (op->w < 64) {
          const std::uint64_t ext = ~umask(op->w);
          for (int l = 0; l < L; ++l)
            if ((d[l] >> (op->w - 1)) & 1) d[l] |= ext;
        }
        break;
      }
      case TOp::kBitSel: {
        const std::uint64_t* ix = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) {
          const long long idx = static_cast<long long>(ix[l]);
          d[l] = (idx >= 0 && idx < op->w) ? (d[l] >> idx) & 1 : 0;
        }
        break;
      }
      case TOp::kRange: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = (d[l] >> op->a) & op->imm;
        break;
      }
      case TOp::kNeg: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = (0 - d[l]) & op->imm;
        break;
      }
      case TOp::kNot: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = ~d[l] & op->imm;
        break;
      }
      case TOp::kLNot: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] == 0;
        break;
      }
      case TOp::kNeZero:
      case TOp::kRedOr: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] != 0;
        break;
      }
      case TOp::kRedAnd: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] == op->imm;
        break;
      }
      case TOp::kRedNand: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] != op->imm;
        break;
      }
      case TOp::kRedNor: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] == 0;
        break;
      }
      case TOp::kRedXor: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l)
          d[l] = static_cast<std::uint64_t>(
              __builtin_parityll(static_cast<long long>(d[l])));
        break;
      }
      case TOp::kRedXnor: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l)
          d[l] = static_cast<std::uint64_t>(
              !__builtin_parityll(static_cast<long long>(d[l])));
        break;
      }
      case TOp::kAnd: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] &= b[l];
        break;
      }
      case TOp::kOr: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] |= b[l];
        break;
      }
      case TOp::kXor: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] ^= b[l];
        break;
      }
      case TOp::kXnorB: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = ~(d[l] ^ b[l]) & op->imm;
        break;
      }
      case TOp::kAdd: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = (d[l] + b[l]) & op->imm;
        break;
      }
      case TOp::kSub: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = (d[l] - b[l]) & op->imm;
        break;
      }
      case TOp::kMul: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = (d[l] * b[l]) & op->imm;
        break;
      }
      case TOp::kDivU: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = b[l] == 0 ? 0 : d[l] / b[l];
        break;
      }
      case TOp::kModU: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = b[l] == 0 ? 0 : d[l] % b[l];
        break;
      }
      case TOp::kDivS: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) {
          const long long sa = s64(d[l], op->w), sb = s64(b[l], op->w);
          std::uint64_t r;
          if (sb == 0) r = 0;
          else if (sb == -1) r = 0 - d[l];  // avoid INT64_MIN / -1
          else r = static_cast<std::uint64_t>(sa / sb);
          d[l] = r & op->imm;
        }
        break;
      }
      case TOp::kModS: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) {
          const long long sa = s64(d[l], op->w), sb = s64(b[l], op->w);
          d[l] = (sb == 0 || sb == -1)
                     ? 0
                     : static_cast<std::uint64_t>(sa % sb) & op->imm;
        }
        break;
      }
      case TOp::kEq: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] == b[l];
        break;
      }
      case TOp::kNe: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] != b[l];
        break;
      }
      case TOp::kLtU: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] < b[l];
        break;
      }
      case TOp::kLeU: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] <= b[l];
        break;
      }
      case TOp::kGtU: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] > b[l];
        break;
      }
      case TOp::kGeU: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] >= b[l];
        break;
      }
      case TOp::kLtS: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = s64(d[l], op->w) < s64(b[l], op->w);
        break;
      }
      case TOp::kLeS: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l)
          d[l] = s64(d[l], op->w) <= s64(b[l], op->w);
        break;
      }
      case TOp::kGtS: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = s64(d[l], op->w) > s64(b[l], op->w);
        break;
      }
      case TOp::kGeS: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l)
          d[l] = s64(d[l], op->w) >= s64(b[l], op->w);
        break;
      }
      case TOp::kShl: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l)
          d[l] = b[l] >= 64 ? 0 : (d[l] << b[l]) & op->imm;
        break;
      }
      case TOp::kShrU: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = b[l] >= 64 ? 0 : d[l] >> b[l];
        break;
      }
      case TOp::kShrS: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) {
          const std::uint64_t sh = b[l];
          d[l] = static_cast<std::uint64_t>(s64(d[l], op->w) >>
                                            (sh > 63 ? 63 : sh)) &
                 op->imm;
        }
        break;
      }
      case TOp::kConcatAcc: {
        const std::uint64_t* b = at(--sp);
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] = (d[l] << op->w) | b[l];
        break;
      }
      case TOp::kRepl: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) {
          const std::uint64_t kv = d[l];
          std::uint64_t v = 0;
          for (std::int32_t i = 0; i < op->a; ++i) v = (v << op->w) | kv;
          d[l] = v;
        }
        break;
      }
      case TOp::kMux: {
        sp -= 2;
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t* tv = at(sp);
        const std::uint64_t* ev = at(sp + 1);
        for (int l = 0; l < L; ++l) d[l] = d[l] != 0 ? tv[l] : ev[l];
        break;
      }
      case TOp::kTime: {
        std::uint64_t* d = at(sp++);
        for (int l = 0; l < L; ++l) d[l] = 0;
        break;
      }
      case TOp::kLoadElemSx: {
        std::uint64_t* d = at(sp - 1);
        const auto& a = arr_[static_cast<std::size_t>(op->a)];
        const long long n =
            cd_->design->signals[static_cast<std::size_t>(op->a)].array_len;
        const std::uint64_t ext = ~umask(op->w);
        for (int l = 0; l < L; ++l) {
          const long long idx = static_cast<long long>(d[l]);
          std::uint64_t v = (idx >= 0 && idx < n)
                                ? a[static_cast<std::size_t>(idx) * L + l]
                                : 0;
          if ((v >> (op->w - 1)) & 1) v |= ext;
          d[l] = v & op->imm;
        }
        break;
      }
      case TOp::kLoadElemTr: {
        std::uint64_t* d = at(sp - 1);
        const auto& a = arr_[static_cast<std::size_t>(op->a)];
        const long long n =
            cd_->design->signals[static_cast<std::size_t>(op->a)].array_len;
        const std::uint64_t ext = op->w ? ~umask(op->w) : 0;
        for (int l = 0; l < L; ++l) {
          std::uint64_t u = d[l];
          if (op->w && ((u >> (op->w - 1)) & 1)) u |= ext;
          const long long idx = static_cast<long long>(u);
          d[l] = ((idx >= 0 && idx < n)
                      ? a[static_cast<std::size_t>(idx) * L + l]
                      : 0) &
                 op->imm;
        }
        break;
      }
      case TOp::kAddC: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t c = static_cast<std::uint32_t>(op->a);
        for (int l = 0; l < L; ++l) d[l] = (d[l] + c) & op->imm;
        break;
      }
      case TOp::kSubC: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t c = static_cast<std::uint32_t>(op->a);
        for (int l = 0; l < L; ++l) d[l] = (d[l] - c) & op->imm;
        break;
      }
      case TOp::kMulC: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t c = static_cast<std::uint32_t>(op->a);
        for (int l = 0; l < L; ++l) d[l] = (d[l] * c) & op->imm;
        break;
      }
      case TOp::kOrC: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] |= op->imm;
        break;
      }
      case TOp::kXorC: {
        std::uint64_t* d = at(sp - 1);
        for (int l = 0; l < L; ++l) d[l] ^= op->imm;
        break;
      }
      case TOp::kShlC: {
        std::uint64_t* d = at(sp - 1);
        const std::uint32_t c = static_cast<std::uint32_t>(op->a);
        for (int l = 0; l < L; ++l) d[l] = (d[l] << c) & op->imm;
        break;
      }
      case TOp::kConcatC: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t c = static_cast<std::uint32_t>(op->a);
        for (int l = 0; l < L; ++l) d[l] = (d[l] << op->w) | c;
        break;
      }
      case TOp::kAddL: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t* s = val(op->a);
        for (int l = 0; l < L; ++l) d[l] = (d[l] + s[l]) & op->imm;
        break;
      }
      case TOp::kSubL: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t* s = val(op->a);
        for (int l = 0; l < L; ++l) d[l] = (d[l] - s[l]) & op->imm;
        break;
      }
      case TOp::kMulL: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t* s = val(op->a);
        for (int l = 0; l < L; ++l) d[l] = (d[l] * s[l]) & op->imm;
        break;
      }
      case TOp::kAndL: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t* s = val(op->a);
        for (int l = 0; l < L; ++l) d[l] &= s[l];
        break;
      }
      case TOp::kOrL: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t* s = val(op->a);
        for (int l = 0; l < L; ++l) d[l] |= s[l];
        break;
      }
      case TOp::kXorL: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t* s = val(op->a);
        for (int l = 0; l < L; ++l) d[l] ^= s[l];
        break;
      }
      case TOp::kConcatL: {
        std::uint64_t* d = at(sp - 1);
        const std::uint64_t* s = val(op->a);
        for (int l = 0; l < L; ++l) d[l] = (d[l] << op->w) | s[l];
        break;
      }
      case TOp::kRangeL: {
        std::uint64_t* d = at(sp++);
        const std::uint64_t* s = val(op->a);
        for (int l = 0; l < L; ++l) d[l] = (s[l] >> op->w) & op->imm;
        break;
      }
      case TOp::kLoadShlC: {
        std::uint64_t* d = at(sp++);
        const std::uint64_t* s = val(op->a);
        for (int l = 0; l < L; ++l) d[l] = (s[l] << op->w) & op->imm;
        break;
      }
      case TOp::kHalt:
        return at(sp - 1);
    }
  }
}

// ---- NBA arenas -------------------------------------------------------------

std::int64_t PackedSim::push_val_plane(const std::uint64_t* v,
                                       std::uint64_t pmask) {
  const std::int64_t ofs = static_cast<std::int64_t>(nba_vals_.size());
  for (int l = 0; l < lanes_; ++l) nba_vals_.push_back(v[l] & pmask);
  return ofs;
}

std::int64_t PackedSim::push_idx_plane(const std::uint64_t* v,
                                       std::uint64_t /*pmask*/) {
  const std::int64_t ofs = static_cast<std::int64_t>(nba_idx_.size());
  for (int l = 0; l < lanes_; ++l)
    nba_idx_.push_back(static_cast<long long>(v[l]));
  return ofs;
}

HLSW_PACK_SIMD
void PackedSim::commit_nba() {
  nba_scratch_.clear();
  nba_scratch_.swap(nba_);
  nba_vals_scratch_.clear();
  nba_vals_scratch_.swap(nba_vals_);
  nba_idx_scratch_.clear();
  nba_idx_scratch_.swap(nba_idx_);
  const Design& d = *cd_->design;
  for (const NbaEntry& e : nba_scratch_) {
    stats_.nba_commits += popcount(e.mask);
    const Signal& s = d.signals[static_cast<std::size_t>(e.sig)];
    const std::uint64_t* v = nba_vals_scratch_.data() + e.val_ofs;
    if (s.array_len > 0) {
      // Inlined set_elem_lane loop: same per-lane change detection and
      // silent out-of-range drop, but the array/mask lookups hoist and
      // fanout is marked once for the whole plane (marking is idempotent).
      const long long* ix = nba_idx_scratch_.data() + e.idx_ofs;
      const std::uint64_t sm = cd_->sig_mask[static_cast<std::size_t>(e.sig)];
      const long long n = s.array_len;
      auto& a = arr_[static_cast<std::size_t>(e.sig)];
      bool changed = false;
      for (int l = 0; l < lanes_; ++l) {
        if (!((e.mask >> l) & 1)) continue;
        const long long idx = ix[l];
        if (idx < 0 || idx >= n) continue;
        const std::uint64_t nv = v[l] & sm;
        std::uint64_t& slot = a[static_cast<std::size_t>(idx) * lanes_ +
                               static_cast<std::size_t>(l)];
        if (slot == nv) continue;
        slot = nv;
        ++stats_.events;
        changed = true;
      }
      if (changed) mark_fanout(e.sig);
    } else if (e.idx_ofs >= 0) {
      // Nonblocking bit write: per-lane RMW for in-range indices, silent
      // drop past the width, and a *negative* index degrades to a full
      // scalar write of the enqueued value — exactly the interpreter's
      // commit dispatch on NbaEntry::index.
      const long long* ix = nba_idx_scratch_.data() + e.idx_ofs;
      std::uint64_t* nv = scratch_.data() + lanes_;
      const std::uint64_t* cur = val(e.sig);
      std::uint64_t bit_mask = 0, neg_mask = 0;
      for (int l = 0; l < lanes_; ++l) {
        if (!((e.mask >> l) & 1)) continue;
        if (ix[l] < 0) {
          neg_mask |= 1ULL << l;
        } else if (ix[l] < s.width) {
          nv[l] = (cur[l] & ~(1ULL << ix[l])) | ((v[l] & 1ULL) << ix[l]);
          bit_mask |= 1ULL << l;
        }
      }
      if (neg_mask) set_masked(e.sig, v, neg_mask);
      if (bit_mask) set_masked(e.sig, nv, bit_mask);
    } else {
      set_masked(e.sig, v, e.mask);
    }
  }
}

// ---- Flush + scheduling -----------------------------------------------------

HLSW_PACK_SIMD
void PackedSim::flush_comb() {
  if (pending_ == 0) return;
  for (auto& q : level_q_) {
    if (q.empty()) continue;
    // Appends during this loop go to strictly higher levels, as in the
    // scalar engine.
    for (std::size_t i = 0; i < q.size(); ++i) {
      const std::int32_t n = q[i];
      node_pending_[static_cast<std::size_t>(n)] = 0;
      const CompiledDesign::Node& nd = cd_->nodes[static_cast<std::size_t>(n)];
      // All lanes re-evaluate when any lane's fanin changed; per-lane
      // change detection keeps the unchanged lanes event-silent.
      set_masked(nd.target, run_tape(nd.exec_tape), full_mask_);
    }
    pending_ -= static_cast<long long>(q.size());
    q.clear();
    if (pending_ == 0) break;
  }
}

HLSW_PACK_SIMD
void PackedSim::run_proc(int p, std::uint64_t mask) {
  running_proc_ = p;
  std::vector<Ctx> work;  // contexts split off by divergent branches
  auto& lane_reps = reps_[static_cast<std::size_t>(p)];
  int pc = cd_->procs[static_cast<std::size_t>(p)].entry;
  std::uint64_t m = mask;
  const std::uint64_t* r;
  for (;;) {
    const PInstr& in = cd_->prog[static_cast<std::size_t>(pc)];
    stats_.instrs += popcount(m);
    switch (in.code) {
      case PInstr::kAssign:
        set_masked(in.sig, run_tape(in.t0), m);
        ++pc;
        break;
      case PInstr::kAssignCopy:
        set_masked(in.sig, val(in.a), m);
        ++pc;
        break;
      case PInstr::kAssignConst:
        set_masked_const(in.sig, in.imm, m);
        ++pc;
        break;
      case PInstr::kAssignElem: {
        r = run_tape(in.t0);  // value first, then index (kernel order)
        std::uint64_t* v = scratch_.data() + lanes_;
        std::copy(r, r + lanes_, v);
        r = run_tape(in.t1);
        for (int l = 0; l < lanes_; ++l)
          if ((m >> l) & 1)
            set_elem_lane(in.sig, l, static_cast<long long>(r[l]), v[l]);
        ++pc;
        break;
      }
      case PInstr::kAssignBit: {
        r = run_tape(in.t0);
        std::uint64_t* v = scratch_.data() + lanes_;
        std::copy(r, r + lanes_, v);
        r = run_tape(in.t1);
        const int w =
            cd_->design->signals[static_cast<std::size_t>(in.sig)].width;
        const std::uint64_t* cur = val(in.sig);
        std::uint64_t valid = 0;
        for (int l = 0; l < lanes_; ++l) {
          if (!((m >> l) & 1)) continue;
          const long long idx = static_cast<long long>(r[l]);
          if (idx < 0 || idx >= w) continue;
          v[l] = (cur[l] & ~(1ULL << idx)) | ((v[l] & 1ULL) << idx);
          valid |= 1ULL << l;
        }
        set_masked(in.sig, v, valid);
        ++pc;
        break;
      }
      case PInstr::kNb:
        nba_.push_back(
            {in.sig, m,
             push_val_plane(run_tape(in.t0),
                            cd_->sig_mask[static_cast<std::size_t>(in.sig)]),
             -1});
        ++pc;
        break;
      case PInstr::kNbCopy:
        nba_.push_back(
            {in.sig, m,
             push_val_plane(val(in.a),
                            cd_->sig_mask[static_cast<std::size_t>(in.sig)]),
             -1});
        ++pc;
        break;
      case PInstr::kNbConst: {
        std::uint64_t* plane = scratch_.data();
        for (int l = 0; l < lanes_; ++l) plane[l] = in.imm;
        nba_.push_back({in.sig, m, push_val_plane(plane, ~0ULL), -1});
        ++pc;
        break;
      }
      case PInstr::kNbElem: {
        const std::int64_t vofs = push_val_plane(
            run_tape(in.t0),
            cd_->sig_mask[static_cast<std::size_t>(in.sig)]);
        nba_.push_back(
            {in.sig, m, vofs, push_idx_plane(run_tape(in.t1), ~0ULL)});
        ++pc;
        break;
      }
      case PInstr::kNbBit: {
        const std::int64_t vofs = push_val_plane(run_tape(in.t0), 1ULL);
        nba_.push_back(
            {in.sig, m, vofs, push_idx_plane(run_tape(in.t1), ~0ULL)});
        ++pc;
        break;
      }
      case PInstr::kJump:
        // Aggregate budget: per-lane instruction counts sum into instrs,
        // so the slot ceiling scales by the lane count.
        if (in.a <= pc &&
            stats_.instrs - slot_instr_base_ >
                cfg_.max_instrs_per_slot * static_cast<long long>(lanes_)) {
          running_proc_ = -1;
          fail_budget(p);
        }
        pc = in.a;
        break;
      case PInstr::kJumpIfFalse: {
        r = run_tape(in.t0);
        std::uint64_t taken = 0;
        for (int l = 0; l < lanes_; ++l)
          taken |= static_cast<std::uint64_t>(r[l] == 0) << l;
        taken &= m;
        if (taken == m) {
          pc = in.a;
        } else if (taken == 0) {
          ++pc;
        } else {
          ++divergence_splits_;
          work.push_back({in.a, taken});
          m &= ~taken;
          ++pc;
        }
        break;
      }
      case PInstr::kJumpIfFalseSig: {
        const std::uint64_t* s = val(in.sig);
        std::uint64_t taken = 0;
        for (int l = 0; l < lanes_; ++l)
          taken |= static_cast<std::uint64_t>(s[l] == 0) << l;
        taken &= m;
        if (taken == m) {
          pc = in.a;
        } else if (taken == 0) {
          ++pc;
        } else {
          ++divergence_splits_;
          work.push_back({in.a, taken});
          m &= ~taken;
          ++pc;
        }
        break;
      }
      case PInstr::kCaseJump: {
        const CompiledDesign::CaseTable& t =
            cd_->case_tables[static_cast<std::size_t>(in.a)];
        const std::uint64_t* s = val(in.sig);
        // Group lanes by dispatch target; sweep lanes usually stay in
        // lockstep (the FSM state is schedule-, not data-, dependent).
        struct Group {
          std::int32_t pc;
          std::uint64_t mask;
        };
        Group groups[kMaxLanes];
        int ng = 0;
        // Lockstep fast path: when every running lane holds the same
        // selector (the usual sweep case — the FSM state is schedule-, not
        // data-, dependent), one binary search dispatches them all.
        const int first = __builtin_ctzll(m);
        const std::uint64_t s0 = s[first];
        bool lockstep = true;
        for (int l = 0; l < lanes_; ++l)
          lockstep &= (s[l] == s0) | !((m >> l) & 1);
        if (lockstep) {
          const auto it = std::lower_bound(
              t.arms.begin(), t.arms.end(), s0,
              [](const std::pair<std::uint64_t, std::int32_t>& a,
                 std::uint64_t v) { return a.first < v; });
          pc = (it != t.arms.end() && it->first == s0) ? it->second
                                                       : t.def_pc;
          break;
        }
        for (int l = 0; l < lanes_; ++l) {
          if (!((m >> l) & 1)) continue;
          const auto it = std::lower_bound(
              t.arms.begin(), t.arms.end(), s[l],
              [](const std::pair<std::uint64_t, std::int32_t>& a,
                 std::uint64_t v) { return a.first < v; });
          const std::int32_t target =
              (it != t.arms.end() && it->first == s[l]) ? it->second
                                                        : t.def_pc;
          int g = 0;
          while (g < ng && groups[g].pc != target) ++g;
          if (g == ng) groups[ng++] = {target, 0};
          groups[g].mask |= 1ULL << l;
        }
        divergence_splits_ += ng - 1;
        for (int g = 1; g < ng; ++g)
          work.push_back({groups[g].pc, groups[g].mask});
        pc = groups[0].pc;
        m = groups[0].mask;
        break;
      }
      case PInstr::kRepeatInit: {
        r = run_tape(in.t0);
        const TapeRef& t = cd_->tapes[static_cast<std::size_t>(in.t0)];
        for (int l = 0; l < lanes_; ++l)
          if ((m >> l) & 1)
            lane_reps[static_cast<std::size_t>(l)].push_back(
                t.sgn ? s64(r[l], t.w) : static_cast<long long>(r[l]));
        ++pc;
        break;
      }
      case PInstr::kRepeatTest: {
        std::uint64_t cont = 0;
        for (int l = 0; l < lanes_; ++l) {
          if (!((m >> l) & 1)) continue;
          auto& st = lane_reps[static_cast<std::size_t>(l)];
          if (st.back() > 0) {
            --st.back();
            cont |= 1ULL << l;
          } else {
            st.pop_back();
          }
        }
        const std::uint64_t exit = m & ~cont;
        if (exit == m) {
          pc = in.a;
        } else if (exit == 0) {
          ++pc;
        } else {
          ++divergence_splits_;
          work.push_back({in.a, exit});
          m = cont;
          ++pc;
        }
        break;
      }
      case PInstr::kDisplay:
      case PInstr::kDumpFile:
      case PInstr::kDumpVars:
        running_proc_ = -1;
        fail("$display/$dump system tasks are not supported on the packed "
             "multi-lane backend");
      case PInstr::kHalt:
        if (work.empty()) {
          running_proc_ = -1;
          return;
        }
        pc = work.back().pc;
        m = work.back().mask;
        work.pop_back();
        break;
    }
  }
}

void PackedSim::settle() {
  slot_instr_base_ = stats_.instrs;
  for (;;) {
    flush_comb();
    int p = -1;
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      if (ready_[i] != 0) {
        p = static_cast<int>(i);
        break;
      }
    }
    if (p >= 0) {
      const std::uint64_t m = ready_[static_cast<std::size_t>(p)];
      ready_[static_cast<std::size_t>(p)] = 0;
      run_proc(p, m);
      continue;
    }
    if (nba_.empty()) break;
    commit_nba();
    ++stats_.delta_cycles;
  }
}

// ---- PackedDutHarness -------------------------------------------------------

namespace {

int find_signal(const Design& d, const std::string& name) {
  const int h = d.find(name);
  if (h < 0)
    fail("packed harness: signal '" + name + "' not found in design '" +
         d.top + "'");
  return h;
}

// Engine selection for the packed tiers: kAuto (with compiled on),
// kCodegen and kPackedCodegen all try the generated lane-major engine
// first; kEvent/kCompiled force the interpreted tier so the benchmarks
// can measure the interpreted baseline on demand.
std::unique_ptr<PackedEngine> make_packed_engine(
    const std::shared_ptr<const CompiledDesign>& plan, int lanes,
    const SimConfig& cfg, std::string* fallback_reason) {
  const Backend want = cfg.backend;
  const bool try_cg = want == Backend::kPackedCodegen ||
                      want == Backend::kCodegen ||
                      (want == Backend::kAuto && cfg.compiled);
  if (try_cg) {
    std::string why;
    if (auto mod = packed_codegen_plan(plan, lanes, &why))
      return std::make_unique<PackedCodegenSim>(std::move(mod), cfg);
    *fallback_reason = "packed-codegen: " + why;
  }
  return std::make_unique<PackedSim>(plan, lanes, cfg);
}

}  // namespace

PackedDutHarness::PackedDutHarness(const hls::Function& f,
                                   std::shared_ptr<const CompiledDesign> plan,
                                   int lanes, const SimConfig& cfg)
    : pins_(rtl::flatten_port_pins(f)) {
  // Built in the body (not the init list): the factory records the
  // degrade reason into fallback_reason_, declared after sim_
  sim_ = make_packed_engine(plan, lanes, cfg, &fallback_reason_);
  const Design& d = *plan->design;
  pin_handle_.reserve(pins_.size());
  for (const auto& p : pins_) pin_handle_.push_back(find_signal(d, p.name));
  h_clk_ = find_signal(d, "clk");
  h_rst_ = find_signal(d, "rst");
  h_start_ = find_signal(d, "start");
  h_done_ = find_signal(d, "done");
  reset();
}

void PackedDutHarness::tick(std::uint64_t mask) {
  sim_->poke(h_clk_, 1, mask);
  sim_->settle();
  sim_->poke(h_clk_, 0, mask);
  sim_->settle();
}

void PackedDutHarness::reset() {
  const std::uint64_t all = sim_->full_mask();
  sim_->poke(h_clk_, 0, all);
  sim_->poke(h_start_, 0, all);
  sim_->poke(h_rst_, 1, all);
  for (int i = 0; i < 3; ++i) tick(all);
  sim_->poke(h_rst_, 0, all);
  sim_->settle();
}

std::vector<std::vector<hls::PortIo>> PackedDutHarness::run_streams(
    const std::vector<std::vector<hls::PortIo>>& streams) {
  const int L = sim_->lanes();
  if (static_cast<int>(streams.size()) != L)
    fail("packed harness: " + std::to_string(streams.size()) +
         " streams for " + std::to_string(L) + " lanes");
  std::vector<std::vector<hls::PortIo>> outs(streams.size());
  std::size_t nvec = 0;
  for (const auto& s : streams) nvec = std::max(nvec, s.size());

  for (std::size_t v = 0; v < nvec; ++v) {
    std::uint64_t active = 0;
    for (int l = 0; l < L; ++l)
      if (v < streams[static_cast<std::size_t>(l)].size())
        active |= 1ULL << l;

    in_plane_.assign(static_cast<std::size_t>(L), 0);
    for (std::size_t i = 0; i < pins_.size(); ++i) {
      const auto& p = pins_[i];
      if (!p.is_input) continue;
      for (int l = 0; l < L; ++l)
        if ((active >> l) & 1)
          in_plane_[static_cast<std::size_t>(l)] =
              static_cast<std::uint64_t>(rtl::pin_value(
                  p, streams[static_cast<std::size_t>(l)][v]));
      sim_->poke_plane(pin_handle_[i], in_plane_.data(), active);
    }
    sim_->poke(h_start_, 1, active);
    tick(active);
    sim_->poke(h_start_, 0, active);
    std::uint64_t waiting = active & ~sim_->peek_nonzero_mask(h_done_);
    long long cycles = 1;
    // Lanes whose done arrived are clock-gated out of subsequent ticks, so
    // every lane sees exactly the edges its scalar replay would.
    while (waiting != 0) {
      if (++cycles > 1'000'000)
        throw std::runtime_error(
            "vsim harness: done never asserted — emitted FSM hung");
      tick(waiting);
      waiting &= ~sim_->peek_nonzero_mask(h_done_);
    }

    for (int l = 0; l < L; ++l) {
      if (!((active >> l) & 1)) continue;
      hls::PortIo out;
      for (std::size_t i = 0; i < pins_.size(); ++i) {
        const auto& p = pins_[i];
        if (p.is_input) continue;
        const long long raw =
            p.sgn ? sim_->peek_signed(pin_handle_[i], l)
                  : static_cast<long long>(sim_->peek(pin_handle_[i], l));
        hls::FxValue* slot;
        if (p.from_array) {
          auto& vec = out.arrays[p.port];
          if (vec.size() <= static_cast<std::size_t>(p.index))
            vec.resize(static_cast<std::size_t>(p.index) + 1);
          slot = &vec[static_cast<std::size_t>(p.index)];
        } else {
          slot = &out.vars[p.port];
        }
        slot->fw = p.fw;
        slot->cplx = p.cplx;
        (p.re ? slot->re : slot->im) = raw;
      }
      outs[static_cast<std::size_t>(l)].push_back(std::move(out));
    }
  }
  return outs;
}

hls::CounterValues PackedDutHarness::read_counters(
    const std::vector<hls::PerfCounter>& map) const {
  hls::CounterValues out;
  out.source = "vsim_packed";
  const Design& d = *sim_->compiled().design;
  for (const hls::PerfCounter& c : map) {
    const int h = find_signal(d, c.name);
    long long total = 0;
    for (int l = 0; l < sim_->lanes(); ++l)
      total += static_cast<long long>(sim_->peek(h, l));
    out.values[c.name] = total;
  }
  return out;
}

}  // namespace hlsw::vsim
