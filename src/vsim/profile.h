// profile_run: the closed predicted-vs-measured loop for one design point.
//
// Synthesizes (run_synthesis), certifies the feasibility lower bounds on
// the ORIGINAL IR (PR 6), emits the Verilog with on-chip perf counters
// (rtl::VerilogOptions::instrument), then drives the same stimulus through
// up to three measurement legs —
//   * rtl::Simulator          (schedule timing model, counters from SimStats),
//   * vsim event engine       (emitted FSM, counters peeked from the design),
//   * vsim compiled backend   (same FSM through the cycle-based engine)
// — checks every leg's outputs against the untimed golden interpreter,
// reconciles every leg's counters against the schedule predictions and the
// feasibility floors (hls::reconcile_profile), and cross-checks the legs
// against each other: counters that are timing-model independent
// (invocations, loop iterations, memory-port activity) must agree across
// ALL legs, and the two vsim backends must agree on EVERY counter bit for
// bit. The result serializes as the profile_run.json StructuredReport
// ({tool: "hlsw.profile", schema_version: 2}; v2 added the per-leg "lanes"
// field for the packed auto-selection, v1 had scalar legs only); nothing is
// dropped — every disagreement lands in a leg report's deviations or in
// `cross_issues`.
#pragma once

#include <string>
#include <vector>

#include "hls/directives.h"
#include "hls/feasibility.h"
#include "hls/interp.h"
#include "hls/ir.h"
#include "hls/profile.h"
#include "hls/report.h"
#include "hls/tech.h"
#include "obs/json.h"

namespace hlsw::vsim {

struct ProfileRunOptions {
  // Counter selection; `enabled` is forced on (a profile run without
  // counters measures nothing).
  hls::InstrumentOptions instrument;
  // Measurement legs. The first three are on by default; the codegen leg
  // is opt-in because it invokes the host toolchain once per design (it
  // degrades to the compiled interpreter — with the reason recorded in the
  // leg's fallback_reason — on machines without one, so enabling it is
  // always safe, just not always cheap).
  bool run_rtl_sim = true;
  bool run_vsim_event = true;
  bool run_vsim_compiled = true;
  bool run_vsim_codegen = false;
  // Lane budget for the compiled leg (clamped to [1, 64]). When > 1 and the
  // stimulus has at least `lanes` vectors, the compiled leg auto-selects
  // the bit-packed multi-lane backend: the vectors split into `lanes`
  // contiguous blocks, each block replays from reset in its own lane (the
  // vsim_sweep block contract — stateful designs need block-independent
  // stimulus), outputs check against a per-block golden replay, and the
  // perf counters are summed across lanes (every counter accumulates per
  // invocation, so the sum equals the scalar sequential measurement). The
  // choice is surfaced per leg as "lanes" in profile_run.json plus a note;
  // unpackable designs fall back to the scalar compiled leg with a note.
  int lanes = 1;
  // When non-empty, write_profile_run_json() is called on the result.
  std::string report_path;
};

struct ProfileRunResult {
  std::string function;
  std::string verilog;  // instrumented module text
  std::vector<hls::PerfCounter> counter_map;
  hls::SynthesisResult synthesis;
  hls::FeasibilityVerdict feasibility;     // bounds certified on original IR
  std::vector<hls::CounterValues> counters;  // one per executed leg
  std::vector<hls::ProfileReport> reports;   // reconciled, aligned with ^
  // Aligned with `counters`: the backend that actually executed each leg
  // ("rtl_sim", "event", "compiled", "codegen") and, when the requested
  // backend degraded, the typed fallback reason ("" otherwise). Serialized
  // per leg as "backend" / "fallback_reason" in profile_run.json.
  std::vector<std::string> leg_backends;
  std::vector<std::string> leg_fallbacks;
  // Aligned with `counters`: lanes the leg executed with (1 = scalar; > 1
  // only for the compiled leg when the packed backend was auto-selected).
  std::vector<int> leg_lanes;
  // Output words that differed from the golden interpreter, per leg.
  std::vector<long long> output_mismatches;
  // Cross-leg counter disagreements and other hard problems found by the
  // driver itself (as opposed to per-leg reconciliation deviations).
  std::vector<std::string> cross_issues;
  // Driver notes that do not fail the run (e.g. compiled backend fell back
  // to the event engine and why).
  std::vector<std::string> notes;

  // Every leg's outputs matched golden, every leg report reconciled ok
  // (hard deviations and bound violations fail it) and no cross issues.
  bool ok() const;
  obs::Json to_json() const;  // the profile_run.json document
};

// Runs the full loop for (f original IR, dir, tech) over `vectors`.
// Emits obs metrics alongside the per-leg reconciliation metrics.
ProfileRunResult profile_run(const hls::Function& f,
                             const hls::Directives& dir,
                             const hls::TechLibrary& tech,
                             const std::vector<hls::PortIo>& vectors,
                             const ProfileRunOptions& opts = {});

bool write_profile_run_json(const ProfileRunResult& r,
                            const std::string& path);

}  // namespace hlsw::vsim
