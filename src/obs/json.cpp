#include "obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hlsw::obs {

namespace {

// Largest double below which every integral value is exactly representable.
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

std::string format_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no NaN/Inf
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) <= kMaxExactInt) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest %g form that round-trips.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

Json& Json::push(Json v) {
  assert(type_ == Type::kArray || type_ == Type::kNull);
  type_ = Type::kArray;
  arr_.push_back(std::move(v));
  return *this;
}

std::size_t Json::size() const {
  return type_ == Type::kArray ? arr_.size() : obj_.size();
}

const Json& Json::at(std::size_t i) const {
  assert(type_ == Type::kArray && i < arr_.size());
  return arr_[i];
}

Json& Json::set(std::string_view key, Json v) {
  assert(type_ == Type::kObject || type_ == Type::kNull);
  type_ = Type::kObject;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Json::dump_to(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: *out += format_number(num_); break;
    case Type::kString:
      out->push_back('"');
      *out += json_escape(str_);
      out->push_back('"');
      break;
    case Type::kArray:
      out->push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out->push_back(',');
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline_pad(depth);
      out->push_back(']');
      break;
    case Type::kObject:
      out->push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out->push_back(',');
        newline_pad(depth + 1);
        out->push_back('"');
        *out += json_escape(obj_[i].first);
        *out += pretty ? "\": " : "\":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline_pad(depth);
      out->push_back('}');
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

// -- Parser -------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty())
      err = what + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word)
      return fail("invalid literal");
    pos += word.size();
    return true;
  }

  static void append_utf8(std::string* s, unsigned cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) break;
      char e = text[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json* out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      if (!literal("null")) return false;
      *out = Json();
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      *out = Json(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      *out = Json(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Json(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      *out = Json::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Json elem;
        if (!parse_value(&elem)) return false;
        out->push(std::move(elem));
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos;
      *out = Json::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Json value;
        if (!parse_value(&value)) return false;
        out->set(key, std::move(value));
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = text.data() + pos;
      char* end = nullptr;
      const double v = std::strtod(start, &end);
      if (end == start) return fail("bad number");
      pos += static_cast<std::size_t>(end - start);
      *out = Json(v);
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

bool Json::parse(std::string_view text, Json* out, std::string* err) {
  Parser p{text, 0, {}};
  Json result;
  if (!p.parse_value(&result)) {
    if (err) *err = p.err;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (err) *err = "trailing characters at offset " + std::to_string(p.pos);
    return false;
  }
  *out = std::move(result);
  return true;
}

}  // namespace hlsw::obs
