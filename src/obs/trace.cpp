#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>

namespace hlsw::obs {

namespace {

bool env_enabled() {
  const char* e = std::getenv("HLSW_TRACE");
  return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

TraceSession::TraceSession() : epoch_ns_(steady_now_ns()) {}

TraceSession& TraceSession::instance() {
  static TraceSession session;
  return session;
}

double TraceSession::now_us() const {
  return static_cast<double>(steady_now_ns() - epoch_ns_) * 1e-3;
}

TraceSession::ThreadBuf& TraceSession::local_buf() {
  // One buffer per thread, registered with the session on first use and
  // owned by it forever after (events of exited pool workers stay valid).
  thread_local ThreadBuf* buf = nullptr;
  if (buf == nullptr) {
    auto owned = std::make_unique<ThreadBuf>();
    buf = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    buf->tid = next_tid_++;
    bufs_.push_back(std::move(owned));
  }
  return *buf;
}

void TraceSession::append(TraceEvent ev) {
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);  // uncontended except vs. flush
  ev.tid = buf.tid;
  ev.seq = buf.next_seq++;
  buf.events.push_back(std::move(ev));
}

void TraceSession::span(std::string name, std::string cat, double ts_us,
                        double dur_us, Json args) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kSpan;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.args = std::move(args);
  append(std::move(ev));
}

void TraceSession::instant(std::string name, std::string cat, Json args) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInstant;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.ts_us = now_us();
  ev.args = std::move(args);
  append(std::move(ev));
}

void TraceSession::counter(std::string name, double value) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kCounter;
  ev.name = std::move(name);
  ev.cat = "counter";
  ev.ts_us = now_us();
  ev.value = value;
  append(std::move(ev));
}

std::vector<TraceEvent> TraceSession::snapshot() const {
  std::vector<TraceEvent> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : bufs_) {
      std::lock_guard<std::mutex> bl(buf->mu);
      merged.insert(merged.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return merged;
}

std::size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->events.clear();
  }
}

Json TraceSession::chrome_trace() const {
  Json events = Json::array();
  // Process metadata so Perfetto labels the track.
  events.push(Json::object()
                  .set("name", "process_name")
                  .set("ph", "M")
                  .set("pid", 1)
                  .set("args", Json::object().set("name", "hlsw")));
  for (const TraceEvent& ev : snapshot()) {
    Json rec = Json::object();
    rec.set("name", ev.name);
    if (!ev.cat.empty()) rec.set("cat", ev.cat);
    switch (ev.kind) {
      case TraceEvent::Kind::kSpan:
        rec.set("ph", "X").set("ts", ev.ts_us).set("dur", ev.dur_us);
        break;
      case TraceEvent::Kind::kInstant:
        rec.set("ph", "i").set("ts", ev.ts_us).set("s", "t");
        break;
      case TraceEvent::Kind::kCounter:
        rec.set("ph", "C").set("ts", ev.ts_us);
        rec.set("args", Json::object().set("value", ev.value));
        break;
    }
    rec.set("pid", 1).set("tid", ev.tid);
    if (ev.kind != TraceEvent::Kind::kCounter && ev.args.is_object())
      rec.set("args", ev.args);
    events.push(std::move(rec));
  }
  return Json::object()
      .set("traceEvents", std::move(events))
      .set("displayTimeUnit", "ms");
}

std::string TraceSession::chrome_trace_json() const {
  return chrome_trace().dump();
}

bool TraceSession::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json() << "\n";
  return static_cast<bool>(out);
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  active_ = true;
  name_.assign(name);
  cat_.assign(cat);
  t0_ = TraceSession::instance().now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceSession& s = TraceSession::instance();
  s.span(std::move(name_), std::move(cat_), t0_, s.now_us() - t0_,
         std::move(args_));
}

void ScopedSpan::arg(std::string_view key, Json v) {
  if (active_) args_.set(key, std::move(v));
}

}  // namespace hlsw::obs
