#include "obs/report.h"

#include <fstream>

namespace hlsw::obs {

StructuredReport::StructuredReport(std::string tool) {
  root_ = Json::object()
              .set("tool", std::move(tool))
              .set("schema_version", 1);
}

StructuredReport& StructuredReport::set(std::string_view key, Json value) {
  root_.set(key, std::move(value));
  return *this;
}

std::string StructuredReport::str(int indent) const {
  return root_.dump(indent);
}

bool StructuredReport::write_file(const std::string& path, int indent) const {
  return write_json_file(path, root_, indent);
}

bool StructuredReport::write_json_file(const std::string& path,
                                       const Json& doc, int indent) {
  std::ofstream out(path);
  if (!out) return false;
  out << doc.dump(indent) << "\n";
  return static_cast<bool>(out);
}

}  // namespace hlsw::obs
