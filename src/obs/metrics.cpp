#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace hlsw::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::add(std::string_view name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    gauges_.emplace(std::string(name), value);
  else
    it->second = value;
}

void MetricsRegistry::observe(std::string_view name, double sample) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(name);
  if (it == samples_.end())
    samples_.emplace(std::string(name), std::vector<double>{sample});
  else
    it->second.push_back(sample);
}

namespace {

// Nearest-rank quantile of an ascending-sorted sample vector: the
// ceil(q*N)-th smallest value (so p50 of 1..100 is exactly 50).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  std::size_t idx = rank <= 1 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

MetricsRegistry::HistStats hist_stats(std::vector<double> samples) {
  MetricsRegistry::HistStats h;
  if (samples.empty()) return h;
  std::sort(samples.begin(), samples.end());
  h.count = samples.size();
  h.min = samples.front();
  h.max = samples.back();
  h.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  h.p50 = quantile(samples, 0.50);
  h.p95 = quantile(samples, 0.95);
  h.p99 = quantile(samples, 0.99);
  return h;
}

std::string fmt(double v) {
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 1e15)
    std::snprintf(buf, sizeof buf, "%.0f", v);
  else
    std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.counters.assign(counters_.begin(), counters_.end());
  s.gauges.assign(gauges_.begin(), gauges_.end());
  for (const auto& [name, samples] : samples_)
    s.histograms.emplace_back(name, hist_stats(samples));
  return s;
}

double MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

std::string MetricsRegistry::summary_table() const {
  const Snapshot s = snapshot();
  std::ostringstream os;
  os << "== Metrics ==\n";
  std::size_t width = 8;
  for (const auto& [name, _] : s.counters) width = std::max(width, name.size());
  for (const auto& [name, _] : s.gauges) width = std::max(width, name.size());
  for (const auto& [name, _] : s.histograms)
    width = std::max(width, name.size());
  const auto pad = [&](const std::string& name) {
    std::string out = name;
    out.resize(width + 2, ' ');
    return out;
  };
  for (const auto& [name, v] : s.counters)
    os << "counter  " << pad(name) << fmt(v) << "\n";
  for (const auto& [name, v] : s.gauges)
    os << "gauge    " << pad(name) << fmt(v) << "\n";
  for (const auto& [name, h] : s.histograms)
    os << "hist     " << pad(name) << "count=" << h.count
       << " min=" << fmt(h.min) << " p50=" << fmt(h.p50)
       << " p95=" << fmt(h.p95) << " p99=" << fmt(h.p99)
       << " max=" << fmt(h.max) << " mean=" << fmt(h.mean) << "\n";
  return os.str();
}

Json MetricsRegistry::to_json() const {
  const Snapshot s = snapshot();
  Json counters = Json::object(), gauges = Json::object(),
       hists = Json::object();
  for (const auto& [name, v] : s.counters) counters.set(name, v);
  for (const auto& [name, v] : s.gauges) gauges.set(name, v);
  for (const auto& [name, h] : s.histograms)
    hists.set(name, Json::object()
                        .set("count", h.count)
                        .set("min", h.min)
                        .set("max", h.max)
                        .set("mean", h.mean)
                        .set("p50", h.p50)
                        .set("p95", h.p95)
                        .set("p99", h.p99));
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(hists));
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  samples_.clear();
}

}  // namespace hlsw::obs
