// Structured (machine-readable) run reports. A StructuredReport is a JSON
// object with a stable envelope — {"tool": ..., "schema_version": 1, then
// tool-specific sections in insertion order} — written pretty-printed so
// the artifacts (dse_run.json, BENCH_*.json, sim stats) diff cleanly
// across PRs. This is the machine-facing counterpart of the paper's
// designer-facing text reports in hls/report.h.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.h"

namespace hlsw::obs {

class StructuredReport {
 public:
  explicit StructuredReport(std::string tool);

  // The underlying object, for direct manipulation.
  Json& root() { return root_; }
  const Json& root() const { return root_; }

  // Adds (or replaces) a top-level section; returns *this for chaining.
  StructuredReport& set(std::string_view key, Json value);

  std::string str(int indent = 2) const;
  bool write_file(const std::string& path, int indent = 2) const;

  // One-shot helper for callers that already hold a Json document.
  static bool write_json_file(const std::string& path, const Json& doc,
                              int indent = 2);

 private:
  Json root_;
};

}  // namespace hlsw::obs
