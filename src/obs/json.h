// Minimal JSON value type shared by every observability artifact the tools
// emit — Chrome traces, metrics snapshots, structured reports, bench
// records, dse_run.json — and by the tests that parse those artifacts back
// to validate them. Objects preserve insertion order so emitted documents
// are deterministic and diffable across runs; numbers round-trip (integral
// values print as integers, everything else with shortest exact form).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hlsw::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(unsigned v) : type_(Type::kNumber), num_(v) {}
  Json(long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(long long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(unsigned long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(unsigned long long v)
      : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  long long as_int() const { return static_cast<long long>(num_); }
  const std::string& as_string() const { return str_; }

  // Array operations. push() returns *this for chaining.
  Json& push(Json v);
  std::size_t size() const;  // array/object element count
  const Json& at(std::size_t i) const;

  // Object operations. set() overwrites an existing key in place (keeping
  // its position) or appends; returns *this for chaining.
  Json& set(std::string_view key, Json v);
  const Json* find(std::string_view key) const;  // null if absent
  const std::vector<std::pair<std::string, Json>>& items() const {
    return obj_;
  }

  // Compact when indent < 0 ("key":value, no spaces); pretty otherwise.
  std::string dump(int indent = -1) const;

  // Strict parse of a complete document (trailing garbage is an error).
  // Returns false and fills *err (if given) on malformed input.
  static bool parse(std::string_view text, Json* out,
                    std::string* err = nullptr);

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

// JSON string escaping (exposed for writers that stream text directly).
std::string json_escape(std::string_view s);

}  // namespace hlsw::obs
