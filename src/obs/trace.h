// Process-wide tracing for the synthesis / DSE / RTL-simulation pipeline.
//
// Model: a single TraceSession collects events into per-thread buffers
// (each writer thread appends to its own buffer under its own uncontended
// mutex — no shared hot lock), merged and deterministically sorted on
// flush. Events export as Chrome trace_event JSON ("traceEvents" array of
// ph X/i/C records) loadable in about:tracing and Perfetto.
//
// Cost model: tracing is off unless the HLSW_TRACE environment variable is
// set (or set_enabled(true) is called). Every instrumentation site guards
// on enabled() — one relaxed atomic load — so a disabled build path does no
// allocation, no clock reads and no locking; benchmarks are unaffected.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace hlsw::obs {

// Global switch: initialized from the HLSW_TRACE env var ("" and "0" mean
// off), overridable at run time (tests, tools). One relaxed atomic load.
bool enabled();
void set_enabled(bool on);

struct TraceEvent {
  enum class Kind { kSpan, kInstant, kCounter };
  Kind kind = Kind::kInstant;
  std::string name;
  std::string cat;
  double ts_us = 0;   // microseconds since the session epoch
  double dur_us = 0;  // kSpan only
  double value = 0;   // kCounter only
  std::uint32_t tid = 0;
  std::uint64_t seq = 0;  // per-thread emission index (merge tie-break)
  Json args;              // object, or null when none
};

class TraceSession {
 public:
  // The process-wide session (epoch = first use).
  static TraceSession& instance();

  // Microseconds since the session epoch (monotonic clock).
  double now_us() const;

  // Event producers; thread-safe, callable from any thread. They record
  // unconditionally — call sites guard with enabled().
  void span(std::string name, std::string cat, double ts_us, double dur_us,
            Json args = Json());
  void instant(std::string name, std::string cat, Json args = Json());
  void counter(std::string name, double value);

  // Merged view of every thread's events, sorted by (ts, tid, seq) — the
  // same input always yields the same output, regardless of which thread
  // flushed or how the OS interleaved the writers.
  std::vector<TraceEvent> snapshot() const;
  std::size_t event_count() const;

  // Drops all recorded events. Thread buffer registrations (and therefore
  // tid assignments) survive, so a clear between runs keeps tids stable.
  void clear();

  // Chrome trace_event JSON: {"traceEvents":[...]}.
  Json chrome_trace() const;
  std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;

 private:
  TraceSession();
  struct ThreadBuf {
    std::uint32_t tid = 0;
    std::uint64_t next_seq = 0;
    std::vector<TraceEvent> events;
    mutable std::mutex mu;
  };
  ThreadBuf& local_buf();
  void append(TraceEvent ev);

  mutable std::mutex mu_;  // guards bufs_ registration and snapshot walk
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::uint32_t next_tid_ = 1;
  std::uint64_t epoch_ns_ = 0;
};

// RAII span: captures the start time at construction, records a kSpan event
// covering its lifetime at destruction. When tracing is disabled at
// construction the object is inert (no strings, no clock, no session).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view cat = "hls");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  // Attaches a key/value to the span's args (no-op when inactive).
  void arg(std::string_view key, Json v);

 private:
  bool active_ = false;
  double t0_ = 0;
  std::string name_, cat_;
  Json args_;
};

}  // namespace hlsw::obs
