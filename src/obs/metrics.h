// Process-wide metrics for the synthesis / DSE / RTL-simulation pipeline:
// monotonic counters, last-value gauges, and sample histograms with
// nearest-rank p50/p95/p99 quantiles. Instrumentation sites guard on
// obs::enabled() so a disabled run records nothing and pays one relaxed
// atomic load; the registry itself is always safe to call from any thread.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace hlsw::obs {

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  void add(std::string_view name, double delta = 1.0);      // counter
  void set_gauge(std::string_view name, double value);      // gauge
  void observe(std::string_view name, double sample);       // histogram

  struct HistStats {
    std::size_t count = 0;
    double min = 0, max = 0, mean = 0;
    double p50 = 0, p95 = 0, p99 = 0;  // nearest-rank quantiles
  };
  struct Snapshot {
    // Sorted by name (std::map iteration order) for deterministic output.
    std::vector<std::pair<std::string, double>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistStats>> histograms;
  };
  Snapshot snapshot() const;

  // Current value of a counter (0 if never touched) — test convenience.
  double counter_value(std::string_view name) const;

  // Human-readable aligned summary of every metric.
  std::string summary_table() const;

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}.
  Json to_json() const;

  void reset();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::vector<double>, std::less<>> samples_;
};

}  // namespace hlsw::obs
