// The hlsw synthesis service: one process hosting the synthesis, DSE,
// cosim, verify and profile pipelines behind a socket API, so many clients
// (CI shards, sweep scripts, notebook sessions) share a single warm
// SynthesisCache and vsim design cache instead of each paying cold-start.
//
// Request/response envelopes (one JSON object per frame, see proto.h):
//   request   {"op": "...", "id": <int>, "tenant": "...", ...params}
//   response  {"id": <echoed>, "ok": true,  "result": {...}}
//          or {"id": <echoed>, "ok": false, "error": {"code", "what",
//              "where"}}
// `id` is chosen by the client and echoed verbatim, so clients may pipeline
// requests and match responses out of order. `tenant` names the fairness
// bucket (defaults to "default"); see scheduler.h.
//
// Ops: ping, synth, dse, cosim, verify, profile, metrics, trace,
// flush_caches, shutdown. docs/SERVER.md specifies each op's parameters
// and result schema.
//
// Error codes a client can receive:
//   truncated_frame, oversized_frame   framing broke; connection closes
//   bad_json, not_object, bad_params,  payload problems; connection stays
//   unknown_op, unknown_design           up, only that request fails
//   busy                               tenant queue full — resubmit later
//   forbidden                          op disabled by server options
//   shutting_down                      daemon is draining
//   job_failed                         the job itself threw worker-side;
//                                        `what` carries the exception text,
//                                        `where` the failing stage
//
// Execution model: one reader thread per connection parses and validates
// frames; jobs are queued per tenant in a FairScheduler and executed by a
// util::ThreadPool of workers. A worker exception fails exactly that job
// (structured job_failed response) — the daemon never dies with a tenant's
// design. DSE jobs get a dedicated coordinator thread (bounded by
// max_dse_coordinators) which shards the sweep into per-candidate synthesis
// units via DseOptions::executor and schedules them through the SAME
// fair queues — a giant sweep competes unit-by-unit with other tenants'
// jobs instead of monopolizing a worker for its whole duration.
//
// Results are bit-identical to direct library calls: handlers invoke the
// same run_synthesis/explore/cosim_sweep/verify_emitted/profile_run entry
// points with server-owned threading disabled or externally provided, and
// every one of those is deterministic by contract
// (tests/serve/equivalence_test.cpp holds the daemon to this).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hls/ir.h"
#include "hls/synth_cache.h"
#include "obs/json.h"
#include "serve/proto.h"
#include "serve/scheduler.h"
#include "util/thread_pool.h"

namespace hlsw::serve {

struct ServerOptions {
  // Unix-domain listener path ("" = none). The default transport.
  std::string unix_path;
  // TCP listener port: -1 = none, 0 = ephemeral (read back via
  // tcp_port()), otherwise the given port.
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  // Worker threads executing jobs. 0 = hardware concurrency.
  unsigned workers = 0;
  SchedulerOptions sched;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Concurrent DSE coordinator threads; further dse requests get `busy`.
  int max_dse_coordinators = 4;
  // Whether the `shutdown` op is honored (daemons exposed beyond a test
  // harness usually want SIGTERM handling instead).
  bool allow_shutdown_op = false;
  // Turns on obs tracing/metrics instrumentation (obs::set_enabled) for
  // the whole process, so per-job spans land in the trace.
  bool enable_obs = false;
  // When non-empty, stop() flushes the Chrome trace buffer here.
  std::string trace_path;
};

class Server {
 public:
  // Thrown by request handlers for job problems discovered worker-side;
  // execute_job turns it into the structured error response.
  struct JobError {
    std::string code, what, where;
  };

  explicit Server(ServerOptions opts = {});
  ~Server();  // calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds listeners and starts worker + accept threads. False (with *err)
  // if no listener was configured or a bind failed.
  bool start(std::string* err = nullptr);

  // Blocks until request_stop() — typically triggered by the `shutdown`
  // op or a signal handler. Does not itself stop the server.
  void wait();
  void request_stop();

  // Graceful drain: stop accepting connections and jobs, finish every
  // accepted job, write every response, join all threads, flush traces.
  // Idempotent.
  void stop();

  // Actual TCP port after start() (useful with tcp_port = 0).
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return opts_.unix_path; }

  // Registers a named design. The factory runs WORKER-side: a throwing
  // factory fails the requesting job with job_failed, not the daemon.
  // "qam_decoder" (the paper's Figure 4 design) is pre-registered.
  void register_design(const std::string& name,
                       std::function<hls::Function()> factory);

  // The process-wide synthesis memoization shared by synth and dse jobs
  // across every tenant (exposed for tests and pre-warming).
  const std::shared_ptr<hls::SynthesisCache>& synth_cache() const {
    return synth_cache_;
  }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;  // serializes response frames from worker threads
    ~Connection();
  };

  void accept_loop(int listen_fd);
  void conn_loop(std::shared_ptr<Connection> c);
  void worker_loop();
  // Parses/validates one frame on the connection thread and either answers
  // immediately (control ops, payload errors) or enqueues a job.
  void handle_frame(const std::shared_ptr<Connection>& c,
                    const std::string& payload);
  // Runs one job end to end on a worker (or DSE coordinator) thread and
  // writes the response. Never throws.
  void execute_job(const std::shared_ptr<Connection>& c, obs::Json req,
                   const std::string& op, const std::string& tenant,
                   long long id);
  // Dispatches to the per-op handler; throws JobError / std::exception.
  obs::Json run_job(const obs::Json& req, const std::string& op,
                    const std::string& tenant);

  obs::Json handle_synth(const obs::Json& req);
  obs::Json handle_dse(const obs::Json& req, const std::string& tenant);
  obs::Json handle_cosim(const obs::Json& req);
  obs::Json handle_verify(const obs::Json& req);
  obs::Json handle_profile(const obs::Json& req);
  obs::Json metrics_json() const;

  hls::Function resolve_design(const obs::Json& req) const;

  void send_json(const std::shared_ptr<Connection>& c, const obs::Json& doc);

  ServerOptions opts_;
  std::shared_ptr<hls::SynthesisCache> synth_cache_;
  FairScheduler sched_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;

  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::thread> accept_threads_;

  mutable std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;

  mutable std::mutex coord_mu_;
  std::vector<std::thread> coordinators_;
  std::atomic<int> active_coordinators_{0};

  mutable std::mutex design_mu_;
  std::map<std::string, std::function<hls::Function()>> designs_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  bool started_ = false;

  std::chrono::steady_clock::time_point start_time_;

  std::atomic<long long> jobs_accepted_{0};
  std::atomic<long long> jobs_ok_{0};
  std::atomic<long long> jobs_failed_{0};
  std::atomic<long long> busy_rejections_{0};
  std::atomic<long long> protocol_errors_{0};
};

// Envelope builders (shared with tests so expectations match by
// construction).
obs::Json make_ok(long long id, obs::Json result);
obs::Json make_error(long long id, const std::string& code,
                     const std::string& what, const std::string& where);

}  // namespace hlsw::serve
