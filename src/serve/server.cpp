#include "serve/server.h"

#include "hls/dse.h"
#include "hls/report.h"
#include "hls/verify.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qam/decoder_ir.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"
#include "serve/wire.h"
#include "vsim/harness.h"
#include "vsim/lint.h"
#include "vsim/profile.h"

#include <sys/socket.h>
#include <unistd.h>

namespace hlsw::serve {

using obs::Json;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Json make_ok(long long id, Json result) {
  return Json::object().set("id", id).set("ok", true).set("result",
                                                          std::move(result));
}

Json make_error(long long id, const std::string& code, const std::string& what,
                const std::string& where) {
  return Json::object().set("id", id).set("ok", false).set(
      "error", Json::object().set("code", code).set("what", what).set(
                   "where", where));
}

Server::Connection::~Connection() { close_fd(fd); }

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      synth_cache_(std::make_shared<hls::SynthesisCache>()),
      sched_(opts_.sched) {
  register_design("qam_decoder",
                  [] { return qam::build_qam_decoder_ir(); });
}

Server::~Server() { stop(); }

void Server::register_design(const std::string& name,
                             std::function<hls::Function()> factory) {
  std::lock_guard<std::mutex> lock(design_mu_);
  designs_[name] = std::move(factory);
}

bool Server::start(std::string* err) {
  if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
    if (err) *err = "no listener configured (unix_path empty, tcp_port < 0)";
    return false;
  }
  if (opts_.enable_obs) obs::set_enabled(true);
  if (!opts_.unix_path.empty()) {
    unix_fd_ = listen_unix(opts_.unix_path, err);
    if (unix_fd_ < 0) return false;
  }
  if (opts_.tcp_port >= 0) {
    tcp_fd_ = listen_tcp(opts_.tcp_host, opts_.tcp_port, &bound_tcp_port_,
                         err);
    if (tcp_fd_ < 0) {
      close_fd(unix_fd_);
      unix_fd_ = -1;
      return false;
    }
  }
  start_time_ = std::chrono::steady_clock::now();
  const unsigned workers =
      opts_.workers ? opts_.workers : util::ThreadPool::default_thread_count();
  pool_ = std::make_unique<util::ThreadPool>(workers);
  // Each worker thread runs one long-lived scheduler loop; the loops end
  // when the scheduler reports drained-and-empty during stop().
  for (unsigned i = 0; i < workers; ++i)
    pool_->submit([this] { worker_loop(); });
  if (unix_fd_ >= 0)
    accept_threads_.emplace_back([this] { accept_loop(unix_fd_); });
  if (tcp_fd_ >= 0)
    accept_threads_.emplace_back([this] { accept_loop(tcp_fd_); });
  started_ = true;
  return true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [&] { return stop_requested_; });
}

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::stop() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  request_stop();
  if (!started_) return;

  // 1. Stop accepting connections: closing the listeners pops the accept
  //    threads out of accept(2).
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();

  // 2. Stop reading requests: half-close every connection's read side so
  //    conn_loop sees EOF, then join the readers. Write sides stay open —
  //    queued jobs still owe these sockets their responses. With readers
  //    gone, no new jobs or coordinators can be created (this is what
  //    makes the coordinator join below race-free).
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& c : conns_)
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : conn_threads_) t.join();
    conn_threads_.clear();
  }

  // 3. Drain: queued jobs finish, no new ones. Coordinators' outstanding
  //    sub-units are served by the still-live workers; late shards run
  //    inline on the coordinator (push_unbounded contract).
  sched_.drain();
  {
    std::lock_guard<std::mutex> lock(coord_mu_);
    for (std::thread& t : coordinators_) t.join();
    coordinators_.clear();
  }
  // 4. Destroying the pool joins the workers, which exit once the
  //    scheduler is empty — at which point every accepted job has run and
  //    every response frame has been written.
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns_.clear();  // Connection destructors close the fds
  }
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
  if (!opts_.trace_path.empty())
    obs::TraceSession::instance().write_chrome_trace(opts_.trace_path);
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = accept_fd(listen_fd);
    if (fd < 0) return;  // listener closed: server is stopping
    if (stopping_.load()) {
      close_fd(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { conn_loop(conn); });
  }
}

void Server::send_json(const std::shared_ptr<Connection>& c, const Json& doc) {
  const std::string payload = doc.dump();
  std::lock_guard<std::mutex> lock(c->write_mu);
  write_frame(c->fd, payload);  // a vanished peer is not the server's problem
}

void Server::conn_loop(std::shared_ptr<Connection> c) {
  std::string payload, err;
  for (;;) {
    const FrameStatus st =
        read_frame(c->fd, &payload, opts_.max_frame_bytes, &err);
    if (st == FrameStatus::kOk) {
      handle_frame(c, payload);
      continue;
    }
    if (st == FrameStatus::kTruncated) {
      // Best effort: the peer may have shutdown(WR) and still be reading.
      ++protocol_errors_;
      send_json(c, make_error(0, "truncated_frame", err, "serve.read_frame"));
    } else if (st == FrameStatus::kOversized) {
      ++protocol_errors_;
      send_json(c, make_error(0, "oversized_frame", err, "serve.read_frame"));
    }
    break;  // kClosed / kError / after a framing error: connection is done
  }
  // The fd stays open: queued jobs for this connection still write their
  // responses through the shared_ptr. The Connection destructor closes it
  // once the last job releases its reference.
}

void Server::handle_frame(const std::shared_ptr<Connection>& c,
                          const std::string& payload) {
  Json req;
  std::string perr;
  if (!Json::parse(payload, &req, &perr)) {
    ++protocol_errors_;
    send_json(c, make_error(0, "bad_json", perr, "serve.parse"));
    return;
  }
  if (!req.is_object()) {
    ++protocol_errors_;
    send_json(c, make_error(0, "not_object",
                            "request root must be a JSON object",
                            "serve.parse"));
    return;
  }
  long long id = 0;
  if (const Json* j = req.find("id")) {
    if (!j->is_number()) {
      ++protocol_errors_;
      send_json(c, make_error(0, "bad_params", "id: expected number",
                              "serve.parse"));
      return;
    }
    id = j->as_int();
  }
  const Json* opj = req.find("op");
  if (opj == nullptr || !opj->is_string()) {
    ++protocol_errors_;
    send_json(c, make_error(id, "bad_params", "op: expected string",
                            "serve.parse"));
    return;
  }
  const std::string op = opj->as_string();
  std::string tenant = "default";
  if (const Json* j = req.find("tenant")) {
    if (!j->is_string()) {
      ++protocol_errors_;
      send_json(c, make_error(id, "bad_params", "tenant: expected string",
                              "serve.parse"));
      return;
    }
    tenant = j->as_string();
  }

  // ---- Control ops: answered on the connection thread, never queued ----
  if (op == "ping") {
    send_json(c, make_ok(id, Json::object().set("pong", true)));
    return;
  }
  if (op == "metrics") {
    send_json(c, make_ok(id, metrics_json()));
    return;
  }
  if (op == "trace") {
    auto& ts = obs::TraceSession::instance();
    Json result = Json::object()
                      .set("events", static_cast<long long>(ts.event_count()))
                      .set("trace", ts.chrome_trace());
    if (const Json* j = req.find("clear"); j && j->is_bool() && j->as_bool())
      ts.clear();
    send_json(c, make_ok(id, std::move(result)));
    return;
  }
  if (op == "flush_caches") {
    const std::size_t n = synth_cache_->size();
    synth_cache_->clear();
    send_json(c, make_ok(id, Json::object().set(
                                 "synth_cache_evicted",
                                 static_cast<long long>(n))));
    return;
  }
  if (op == "shutdown") {
    if (!opts_.allow_shutdown_op) {
      send_json(c, make_error(id, "forbidden",
                              "shutdown op disabled by server options",
                              "serve.shutdown"));
      return;
    }
    send_json(c, make_ok(id, Json::object().set("draining", true)));
    request_stop();
    return;
  }
  if (op != "synth" && op != "dse" && op != "cosim" && op != "verify" &&
      op != "profile") {
    ++protocol_errors_;
    send_json(c, make_error(id, "unknown_op", "unknown op '" + op + "'",
                            "serve.dispatch"));
    return;
  }

  // ---- DSE: coordinator thread, not a worker slot ----
  // The coordinator BLOCKS on its sharded sub-units; were it a worker, W
  // concurrent dse jobs would occupy all W slots and deadlock against
  // their own shards. A bounded side thread keeps every worker free to
  // execute units.
  if (op == "dse") {
    int active = active_coordinators_.load();
    do {
      if (active >= opts_.max_dse_coordinators) {
        ++busy_rejections_;
        obs::MetricsRegistry::instance().add("serve.busy_rejections");
        send_json(c, make_error(id, "busy",
                                "all " +
                                    std::to_string(opts_.max_dse_coordinators) +
                                    " dse coordinators are in use",
                                "serve.dse"));
        return;
      }
    } while (!active_coordinators_.compare_exchange_weak(active, active + 1));
    if (stopping_.load() || sched_.draining()) {
      active_coordinators_.fetch_sub(1);
      send_json(c, make_error(id, "shutting_down", "daemon is draining",
                              "serve.dse"));
      return;
    }
    ++jobs_accepted_;
    std::lock_guard<std::mutex> lock(coord_mu_);
    coordinators_.emplace_back(
        [this, c, req = std::move(req), op, tenant, id]() mutable {
          execute_job(c, std::move(req), op, tenant, id);
          active_coordinators_.fetch_sub(1);
        });
    return;
  }

  // ---- Everything else: one work unit through the fair scheduler ----
  const PushStatus st = sched_.push(
      tenant, [this, c, req = std::move(req), op, tenant, id]() mutable {
        execute_job(c, std::move(req), op, tenant, id);
      });
  switch (st) {
    case PushStatus::kAccepted:
      ++jobs_accepted_;
      return;
    case PushStatus::kBusy:
      ++busy_rejections_;
      obs::MetricsRegistry::instance().add("serve.busy_rejections");
      send_json(c, make_error(id, "busy",
                              "tenant '" + tenant + "' queue is full (" +
                                  std::to_string(opts_.sched.max_queue_depth) +
                                  " jobs)",
                              "serve.schedule"));
      return;
    case PushStatus::kStopped:
      send_json(c, make_error(id, "shutting_down", "daemon is draining",
                              "serve.schedule"));
      return;
  }
}

void Server::execute_job(const std::shared_ptr<Connection>& c, Json req,
                         const std::string& op, const std::string& tenant,
                         long long id) {
  const auto t0 = std::chrono::steady_clock::now();
  Json resp;
  {
    obs::ScopedSpan span("serve.job", "serve");
    if (span.active()) {
      span.arg("op", op);
      span.arg("tenant", tenant);
      span.arg("id", id);
    }
    try {
      resp = make_ok(id, run_job(req, op, tenant));
      ++jobs_ok_;
    } catch (const JobError& e) {
      // Structured failure: the job is dead, the daemon is not.
      resp = make_error(id, e.code, e.what, e.where);
      ++jobs_failed_;
    } catch (const std::exception& e) {
      resp = make_error(id, "job_failed", e.what(), "serve." + op);
      ++jobs_failed_;
    } catch (...) {
      resp = make_error(id, "job_failed", "non-standard exception",
                        "serve." + op);
      ++jobs_failed_;
    }
  }
  // Latency histograms feed the metrics op's p50/p95/p99; recorded
  // unconditionally — a server without observability is flying blind.
  auto& m = obs::MetricsRegistry::instance();
  const double ms = ms_since(t0);
  m.observe("serve.job_ms", ms);
  m.observe("serve.job_ms." + op, ms);
  m.add("serve.jobs." + op);
  send_json(c, resp);
}

void Server::worker_loop() {
  std::function<void()> unit;
  while (sched_.pop(&unit)) {
    unit();
    unit = nullptr;  // release captured state before blocking in pop
  }
}

// ---- Job handlers (worker/coordinator side) ----

hls::Function Server::resolve_design(const Json& req) const {
  const Json* j = req.find("design");
  if (j == nullptr || !j->is_string())
    throw JobError{"bad_params", "design: expected string", "serve.params"};
  std::function<hls::Function()> factory;
  {
    std::lock_guard<std::mutex> lock(design_mu_);
    auto it = designs_.find(j->as_string());
    if (it == designs_.end())
      throw JobError{"unknown_design",
                     "no design registered under '" + j->as_string() + "'",
                     "serve.params"};
    factory = it->second;
  }
  return factory();  // may throw: becomes job_failed for this job only
}

namespace {

hls::Directives directives_of(const Json& req) {
  hls::Directives dir;
  if (const Json* j = req.find("directives")) {
    std::string err;
    if (!directives_from_json(*j, &dir, &err))
      throw Server::JobError{"bad_params", err, "serve.params"};
  }
  return dir;
}

hls::TechLibrary tech_of(const Json& req) {
  hls::TechLibrary tech = hls::TechLibrary::asic90();
  std::string err;
  if (!tech_from_json(req.find("tech"), &tech, &err))
    throw Server::JobError{"bad_params", err, "serve.params"};
  return tech;
}

std::vector<hls::PortIo> vectors_of(const Json& req) {
  const Json* j = req.find("vectors");
  if (j == nullptr)
    throw Server::JobError{"bad_params", "vectors: required", "serve.params"};
  std::vector<hls::PortIo> vectors;
  std::string err;
  if (!vectors_from_json(*j, &vectors, &err))
    throw Server::JobError{"bad_params", err, "serve.params"};
  if (vectors.empty())
    throw Server::JobError{"bad_params", "vectors: must be non-empty",
                           "serve.params"};
  return vectors;
}

}  // namespace

Json Server::run_job(const Json& req, const std::string& op,
                     const std::string& tenant) {
  if (op == "synth") return handle_synth(req);
  if (op == "dse") return handle_dse(req, tenant);
  if (op == "cosim") return handle_cosim(req);
  if (op == "verify") return handle_verify(req);
  if (op == "profile") return handle_profile(req);
  throw JobError{"unknown_op", "unknown op '" + op + "'", "serve.dispatch"};
}

Json Server::handle_synth(const Json& req) {
  const hls::Function f = resolve_design(req);
  const hls::Directives dir = directives_of(req);
  const hls::TechLibrary tech = tech_of(req);

  // Metrics come from the process-wide cache — the whole point of the
  // daemon: tenant B's synth of a configuration tenant A already explored
  // is a lookup, not a schedule. Keys canonicalize semantics-equal
  // directive spellings, so results are bit-identical to a direct
  // run_synthesis either way.
  const std::string key =
      hls::dse_cache_key(hls::function_fingerprint(f), dir, tech);
  bool hit = false;
  const hls::SynthesisCache::Metrics metrics = synth_cache_->get_or_compute(
      key,
      [&] {
        const hls::SynthesisResult r = hls::run_synthesis(f, dir, tech);
        return hls::SynthesisCache::Metrics{r.latency_cycles(),
                                            r.latency_ns(), r.area.total};
      },
      &hit);
  obs::MetricsRegistry::instance().add(hit ? "serve.synth_cache.hits"
                                           : "serve.synth_cache.misses");
  Json result = Json::object()
                    .set("latency_cycles", metrics.latency_cycles)
                    .set("latency_ns", metrics.latency_ns)
                    .set("area", metrics.area)
                    .set("cached", hit);
  if (const Json* j = req.find("emit_verilog");
      j && j->is_bool() && j->as_bool()) {
    const hls::SynthesisResult r = hls::run_synthesis(f, dir, tech);
    result.set("verilog", rtl::emit_verilog(r.transformed, r.schedule));
  }
  return result;
}

Json Server::handle_dse(const Json& req, const std::string& tenant) {
  const hls::Function f = resolve_design(req);
  const hls::TechLibrary tech = tech_of(req);
  hls::DseOptions o;
  std::string err;
  if (!dse_options_from_json(req.find("options"), &o, &err))
    throw JobError{"bad_params", err, "serve.params"};
  o.cache = synth_cache_;
  // Shard the sweep: every candidate-synthesis closure becomes one fair-
  // scheduled unit under this job's tenant, interleaving with other
  // tenants' work. Once draining begins push_unbounded refuses and the
  // closure runs right here on the coordinator — explore() only requires
  // that each closure run exactly once, somewhere.
  o.executor = [this, tenant](std::function<void()> unit) {
    if (!sched_.push_unbounded(tenant, unit)) unit();
  };
  const auto t0 = std::chrono::steady_clock::now();
  hls::DseResult result;
  try {
    result = hls::explore(f, o, tech);
  } catch (const std::invalid_argument& e) {
    throw JobError{"bad_params", e.what(), "serve.dse.options"};
  }
  return hls::dse_run_json(result, o, ms_since(t0));
}

Json Server::handle_cosim(const Json& req) {
  const hls::Function f = resolve_design(req);
  const hls::Directives dir = directives_of(req);
  const hls::TechLibrary tech = tech_of(req);
  const std::vector<hls::PortIo> vectors = vectors_of(req);
  hls::CosimOptions o;
  std::string err;
  if (!cosim_options_from_json(req.find("options"), &o, &err))
    throw JobError{"bad_params", err, "serve.params"};
  o.threads = 0;  // the job IS the unit of parallelism; no nested pool
  o.pool = nullptr;
  // Default to one sequential block: the registered designs are stateful
  // (adaptive equalizers), so replay-from-reset blocks need deliberate,
  // client-chosen stimulus splits.
  const Json* copt = req.find("options");
  if (copt == nullptr || copt->find("block_size") == nullptr)
    o.block_size = vectors.size();

  const hls::SynthesisResult r = hls::run_synthesis(f, dir, tech);
  // One golden evaluation context for the whole sweep (threads is pinned
  // to 0 above, so blocks run sequentially): construction copies the
  // Function and rebuilds its indices, which per-block instantiation paid
  // once per block. reset() between blocks restores fresh-instance state.
  struct SharedGolden {
    hls::Interpreter interp;
    bool used = false;
    explicit SharedGolden(const hls::Function& fn) : interp(fn) {}
  };
  auto sg = std::make_shared<SharedGolden>(r.transformed);
  auto golden = [sg] {
    return [sg](const std::vector<hls::PortIo>& v) {
      if (sg->used)
        sg->interp.reset();
      else
        sg->used = true;
      return sg->interp.run_stream(v);
    };
  };
  auto dut = [&r] {
    auto sim = std::make_shared<rtl::Simulator>(r.transformed, r.schedule);
    return [sim](const std::vector<hls::PortIo>& v) {
      return sim->run_stream(v);
    };
  };
  return cosim_result_to_json(hls::cosim_sweep(golden, dut, vectors, o));
}

Json Server::handle_verify(const Json& req) {
  const hls::Function f = resolve_design(req);
  const hls::Directives dir = directives_of(req);
  const hls::TechLibrary tech = tech_of(req);
  const std::vector<hls::PortIo> vectors = vectors_of(req);
  hls::CosimOptions o;
  std::string err;
  if (!cosim_options_from_json(req.find("options"), &o, &err))
    throw JobError{"bad_params", err, "serve.params"};
  o.threads = 0;
  o.pool = nullptr;
  const Json* vopt = req.find("options");
  if (vopt == nullptr || vopt->find("block_size") == nullptr)
    o.block_size = vectors.size();

  const hls::SynthesisResult r = hls::run_synthesis(f, dir, tech);
  const vsim::VerifyEmittedResult v =
      vsim::verify_emitted(r.transformed, r.schedule, vectors, o);
  Json lint = Json::array();
  for (const vsim::LintIssue& li : v.lint_issues)
    lint.push(Json::object()
                  .set("rule", li.rule)
                  .set("signal", li.signal)
                  .set("detail", li.detail));
  return Json::object()
      .set("ok", v.ok())
      .set("cosim", cosim_result_to_json(v.cosim))
      .set("lint_issues", std::move(lint))
      .set("testbench", Json::object()
                            .set("passed", v.testbench.passed)
                            .set("finished", v.testbench.finished));
}

Json Server::handle_profile(const Json& req) {
  const hls::Function f = resolve_design(req);
  const hls::Directives dir = directives_of(req);
  const hls::TechLibrary tech = tech_of(req);
  const std::vector<hls::PortIo> vectors = vectors_of(req);
  vsim::ProfileRunOptions o;
  if (const Json* opt = req.find("options")) {
    if (!opt->is_object())
      throw JobError{"bad_params", "options: expected object", "serve.params"};
    for (const auto& [key, value] : opt->items()) {
      if (key == "lanes" && value.is_number())
        o.lanes = static_cast<int>(value.as_int());
      else if (key == "run_rtl_sim" && value.is_bool())
        o.run_rtl_sim = value.as_bool();
      else if (key == "run_vsim_event" && value.is_bool())
        o.run_vsim_event = value.as_bool();
      else if (key == "run_vsim_compiled" && value.is_bool())
        o.run_vsim_compiled = value.as_bool();
      else if (key == "run_vsim_codegen" && value.is_bool())
        o.run_vsim_codegen = value.as_bool();
      else
        throw JobError{"bad_params",
                       "options." + key + ": unknown key or wrong type",
                       "serve.params"};
    }
  }
  return vsim::profile_run(f, dir, tech, vectors, o).to_json();
}

Json Server::metrics_json() const {
  auto& m = obs::MetricsRegistry::instance();
  const double hits = m.counter_value("serve.synth_cache.hits");
  const double misses = m.counter_value("serve.synth_cache.misses");
  const double lookups = hits + misses;
  Json depths = Json::object();
  for (const auto& [tenant, depth] : sched_.queue_depths())
    depths.set(tenant, static_cast<long long>(depth));
  Json server =
      Json::object()
          .set("uptime_ms", ms_since(start_time_))
          .set("jobs", Json::object()
                           .set("accepted", jobs_accepted_.load())
                           .set("ok", jobs_ok_.load())
                           .set("failed", jobs_failed_.load())
                           .set("busy_rejections", busy_rejections_.load())
                           .set("protocol_errors", protocol_errors_.load()))
          .set("queue_depths", std::move(depths))
          .set("synth_cache",
               Json::object()
                   .set("size", static_cast<long long>(synth_cache_->size()))
                   .set("hits", hits)
                   .set("misses", misses)
                   .set("hit_rate", lookups > 0 ? hits / lookups : 0.0));
  return Json::object()
      .set("server", std::move(server))
      .set("registry", m.to_json());
}

}  // namespace hlsw::serve
