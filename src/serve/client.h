// Client side of the serve protocol: connect, submit requests, collect
// responses. Supports PIPELINING — submit() sends immediately and returns
// the request id; wait() reads frames until that id's response arrives,
// parking any responses that belong to other outstanding ids. One Client
// instance is single-threaded (use one per client thread; the server
// handles any number of concurrent connections).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.h"
#include "serve/proto.h"

namespace hlsw::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connect_unix(const std::string& path, std::string* err = nullptr);
  bool connect_tcp(const std::string& host, int port,
                   std::string* err = nullptr);
  bool connected() const { return fd_ >= 0; }
  void close();

  // Sends {"op", "id", "tenant"?, ...params} and returns the assigned id
  // (monotonic per client), or -1 on transport failure. `params` must be
  // a JSON object (or null for none); its keys land in the envelope.
  long long submit(const std::string& op, obs::Json params = obs::Json(),
                   const std::string& tenant = "",
                   std::string* err = nullptr);

  // Blocks until the response for `id` arrives (parking out-of-order
  // responses for other pending ids). False on transport failure or if the
  // connection closes first.
  bool wait(long long id, obs::Json* response, std::string* err = nullptr);

  // submit + wait. Returns false only on TRANSPORT failure; a server-side
  // error response still returns true (inspect response["ok"]).
  bool call(const std::string& op, obs::Json params, obs::Json* response,
            std::string* err = nullptr, const std::string& tenant = "");

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  long long next_id_ = 1;
  std::map<long long, obs::Json> parked_;
};

}  // namespace hlsw::serve
