// JSON (de)serialization of the domain values the serve protocol carries:
// directives, port I/O vectors, and the option subsets a client may set on
// dse/cosim/profile jobs. Shared by the server's request handlers, the
// client-side tests and the equivalence suite — one codec, so a value that
// round-trips here is bit-identical on both sides of the wire.
//
// Conventions:
//  * FxValue raw components serialize as decimal STRINGS ("-2048"), not
//    JSON numbers: obs::Json stores numbers as doubles, and a full-width
//    64-bit raw value would silently lose low bits through the double.
//    Strings keep the codec exact for every representable signal value.
//  * from_json functions validate exhaustively, never throw, and report
//    the first problem through *err (path-prefixed, e.g.
//    "directives.loops.dfe.unroll: expected number").
//  * Unknown keys are rejected (typo'd directive names would otherwise
//    silently synthesize the default architecture — the one result the
//    submitter did not ask for).
#pragma once

#include <string>
#include <vector>

#include "hls/directives.h"
#include "hls/dse.h"
#include "hls/interp.h"
#include "hls/tech.h"
#include "hls/verify.h"
#include "obs/json.h"

namespace hlsw::serve {

// ---- Directives ----
obs::Json directives_to_json(const hls::Directives& dir);
bool directives_from_json(const obs::Json& j, hls::Directives* out,
                          std::string* err);

// ---- Port I/O (stimulus and results) ----
obs::Json fxvalue_to_json(const hls::FxValue& v);
bool fxvalue_from_json(const obs::Json& j, hls::FxValue* out,
                       std::string* err);
obs::Json portio_to_json(const hls::PortIo& io);
bool portio_from_json(const obs::Json& j, hls::PortIo* out, std::string* err);
obs::Json vectors_to_json(const std::vector<hls::PortIo>& vectors);
bool vectors_from_json(const obs::Json& j, std::vector<hls::PortIo>* out,
                       std::string* err);

// ---- Technology library selection ----
// Accepted names: "asic90" (default when absent), "fpga_lut4".
bool tech_from_json(const obs::Json* j, hls::TechLibrary* out,
                    std::string* err);

// ---- Job option subsets ----
// Client-settable DseOptions fields (threads/cache/pool/executor/progress
// stay server-owned). Absent keys keep the library defaults.
bool dse_options_from_json(const obs::Json* j, hls::DseOptions* out,
                           std::string* err);
// Client-settable CosimOptions fields: block_size, mismatch_limit, lanes.
bool cosim_options_from_json(const obs::Json* j, hls::CosimOptions* out,
                             std::string* err);

// ---- Result helpers ----
obs::Json cosim_result_to_json(const hls::CosimResult& r);

}  // namespace hlsw::serve
