// Wire protocol for the hlsw synthesis service: length-prefixed JSON
// frames over a stream socket (unix-domain by default, TCP opt-in).
//
// Frame layout: a 4-byte big-endian unsigned payload length followed by
// exactly that many bytes of UTF-8 JSON. The prefix makes message
// boundaries explicit on a byte stream, so a reader never has to guess
// where one JSON document ends and the next begins, and a malformed
// payload never desynchronizes the framing.
//
// Error taxonomy (tests/serve/proto_test.cpp drives every row over a real
// socket):
//   * kClosed     clean EOF exactly at a frame boundary — not an error.
//   * kTruncated  EOF mid-prefix or mid-payload. The peer's write side is
//                 gone but its read side may still be open (shutdown(WR)),
//                 so the server best-effort answers with a typed
//                 `truncated_frame` error before closing.
//   * kOversized  the prefix announces more than `max_bytes`. The payload
//                 is unread and the stream unrecoverable; the server
//                 answers `oversized_frame` and closes.
//   * kError      a transport-level read failure (ECONNRESET & co).
// Payload-level problems (unparseable JSON, non-object roots, unknown op
// values) keep the framing intact; they are answered per frame by the
// server and the connection stays up. See docs/SERVER.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hlsw::serve {

// Ceiling on accepted payload sizes (16 MiB): generous for any job this
// protocol carries, small enough that a hostile prefix cannot make the
// server allocate unbounded memory.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameStatus { kOk, kClosed, kTruncated, kOversized, kError };
std::string to_string(FrameStatus s);

// Reads one frame into *payload. Blocks until a full frame, EOF or error.
FrameStatus read_frame(int fd, std::string* payload,
                       std::uint32_t max_bytes = kDefaultMaxFrameBytes,
                       std::string* err = nullptr);

// Writes one frame (prefix + payload), looping over partial writes.
// Returns false on any transport failure (the peer vanished; SIGPIPE is
// suppressed). Callers serialize concurrent writers per connection.
bool write_frame(int fd, std::string_view payload, std::string* err = nullptr);

// ---- Socket plumbing (thin wrappers so server/client/tests share one
// error-checked implementation) ----

// Binds + listens on a unix-domain socket, replacing a stale socket file.
// Returns the listening fd or -1 with *err filled.
int listen_unix(const std::string& path, std::string* err);

// Binds + listens on host:port (IPv4). port 0 picks an ephemeral port;
// *bound_port (if non-null) receives the actual one.
int listen_tcp(const std::string& host, int port, int* bound_port,
               std::string* err);

int connect_unix(const std::string& path, std::string* err);
int connect_tcp(const std::string& host, int port, std::string* err);

// accept(2) that retries EINTR; returns -1 on failure (listener closed).
int accept_fd(int listen_fd);

void close_fd(int fd);

}  // namespace hlsw::serve
