#include "serve/wire.h"

#include <cstdlib>

namespace hlsw::serve {

namespace {

using obs::Json;

bool fail(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

// Decimal text for a signed 128-bit raw component (no locale, no allocation
// surprises — the exactness contract of the codec).
std::string int128_to_string(__int128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  unsigned __int128 u =
      neg ? static_cast<unsigned __int128>(-(v + 1)) + 1
          : static_cast<unsigned __int128>(v);
  char buf[48];
  int i = 48;
  while (u > 0) {
    buf[--i] = static_cast<char>('0' + static_cast<int>(u % 10));
    u /= 10;
  }
  if (neg) buf[--i] = '-';
  return std::string(buf + i, buf + 48);
}

bool int128_from_string(const std::string& s, __int128* out) {
  if (s.empty()) return false;
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) return false;
  unsigned __int128 u = 0;
  constexpr unsigned __int128 kMax = ~static_cast<unsigned __int128>(0);
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    const unsigned d = static_cast<unsigned>(s[i] - '0');
    if (u > (kMax - d) / 10) return false;  // overflow
    u = u * 10 + d;
  }
  // Clamp-check against the signed range.
  constexpr unsigned __int128 kSignedMax =
      (~static_cast<unsigned __int128>(0)) >> 1;
  if (neg) {
    if (u > kSignedMax + 1) return false;
    *out = u == kSignedMax + 1
               ? -static_cast<__int128>(kSignedMax) - 1
               : -static_cast<__int128>(u);
  } else {
    if (u > kSignedMax) return false;
    *out = static_cast<__int128>(u);
  }
  return true;
}

// ---- Small typed getters (path-prefixed errors) ----

bool want_object(const Json& j, const std::string& path, std::string* err) {
  if (j.is_object()) return true;
  return fail(err, path + ": expected object");
}

bool get_int_field(const Json& obj, const std::string& path,
                   const std::string& key, long long* out, bool* present,
                   std::string* err) {
  const Json* v = obj.find(key);
  if (present) *present = v != nullptr;
  if (v == nullptr) return true;
  if (!v->is_number())
    return fail(err, path + "." + key + ": expected number");
  *out = v->as_int();
  return true;
}

bool get_num_field(const Json& obj, const std::string& path,
                   const std::string& key, double* out, bool* present,
                   std::string* err) {
  const Json* v = obj.find(key);
  if (present) *present = v != nullptr;
  if (v == nullptr) return true;
  if (!v->is_number())
    return fail(err, path + "." + key + ": expected number");
  *out = v->as_double();
  return true;
}

bool get_bool_field(const Json& obj, const std::string& path,
                    const std::string& key, bool* out, std::string* err) {
  const Json* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_bool())
    return fail(err, path + "." + key + ": expected bool");
  *out = v->as_bool();
  return true;
}

bool get_int_list(const Json& obj, const std::string& path,
                  const std::string& key, std::vector<int>* out,
                  std::string* err) {
  const Json* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_array())
    return fail(err, path + "." + key + ": expected array of numbers");
  out->clear();
  for (std::size_t i = 0; i < v->size(); ++i) {
    if (!v->at(i).is_number())
      return fail(err, path + "." + key + "[" + std::to_string(i) +
                           "]: expected number");
    out->push_back(static_cast<int>(v->at(i).as_int()));
  }
  return true;
}

bool check_keys(const Json& obj, const std::string& path,
                std::initializer_list<const char*> allowed,
                std::string* err) {
  for (const auto& [key, value] : obj.items()) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) return fail(err, path + ": unknown key '" + key + "'");
  }
  return true;
}

const char* interface_name(hls::InterfaceKind k) {
  switch (k) {
    case hls::InterfaceKind::kWire: return "wire";
    case hls::InterfaceKind::kRegistered: return "registered";
    case hls::InterfaceKind::kHandshake: return "handshake";
    case hls::InterfaceKind::kMemory: return "memory";
    case hls::InterfaceKind::kStream: return "stream";
  }
  return "?";
}

bool interface_from_name(const std::string& s, hls::InterfaceKind* out) {
  if (s == "wire") *out = hls::InterfaceKind::kWire;
  else if (s == "registered") *out = hls::InterfaceKind::kRegistered;
  else if (s == "handshake") *out = hls::InterfaceKind::kHandshake;
  else if (s == "memory") *out = hls::InterfaceKind::kMemory;
  else if (s == "stream") *out = hls::InterfaceKind::kStream;
  else return false;
  return true;
}

}  // namespace

Json directives_to_json(const hls::Directives& dir) {
  Json j = Json::object();
  j.set("clock_period_ns", dir.clock_period_ns);
  if (!dir.loops.empty()) {
    Json loops = Json::object();
    for (const auto& [label, ld] : dir.loops)
      loops.set(label, Json::object()
                           .set("unroll", ld.unroll)
                           .set("pipeline_ii", ld.pipeline_ii));
    j.set("loops", std::move(loops));
  }
  if (!dir.merge_groups.empty()) {
    Json groups = Json::array();
    for (const auto& g : dir.merge_groups) {
      Json group = Json::array();
      for (const auto& label : g) group.push(label);
      groups.push(std::move(group));
    }
    j.set("merge_groups", std::move(groups));
  }
  if (dir.auto_merge) j.set("auto_merge", true);
  if (!dir.arrays.empty()) {
    Json arrays = Json::object();
    for (const auto& [name, ad] : dir.arrays)
      arrays.set(name,
                 Json::object()
                     .set("mapping", ad.mapping == hls::ArrayMapping::kMemory
                                         ? "memory"
                                         : "registers")
                     .set("mem_read_ports", ad.mem_read_ports)
                     .set("mem_write_ports", ad.mem_write_ports));
    j.set("arrays", std::move(arrays));
  }
  if (!dir.interfaces.empty()) {
    Json ifs = Json::object();
    for (const auto& [name, kind] : dir.interfaces)
      ifs.set(name, interface_name(kind));
    j.set("interfaces", std::move(ifs));
  }
  if (dir.handshake) j.set("handshake", true);
  if (dir.max_real_multipliers != 0)
    j.set("max_real_multipliers", dir.max_real_multipliers);
  return j;
}

bool directives_from_json(const Json& j, hls::Directives* out,
                          std::string* err) {
  const std::string path = "directives";
  if (!want_object(j, path, err)) return false;
  if (!check_keys(j, path,
                  {"clock_period_ns", "loops", "merge_groups", "auto_merge",
                   "arrays", "interfaces", "handshake",
                   "max_real_multipliers"},
                  err))
    return false;
  hls::Directives dir;
  if (!get_num_field(j, path, "clock_period_ns", &dir.clock_period_ns,
                     nullptr, err))
    return false;
  if (const Json* loops = j.find("loops")) {
    if (!want_object(*loops, path + ".loops", err)) return false;
    for (const auto& [label, ld] : loops->items()) {
      const std::string lp = path + ".loops." + label;
      if (!want_object(ld, lp, err)) return false;
      if (!check_keys(ld, lp, {"unroll", "pipeline_ii"}, err)) return false;
      hls::LoopDirective d;
      long long v = d.unroll;
      if (!get_int_field(ld, lp, "unroll", &v, nullptr, err)) return false;
      d.unroll = static_cast<int>(v);
      v = d.pipeline_ii;
      if (!get_int_field(ld, lp, "pipeline_ii", &v, nullptr, err))
        return false;
      d.pipeline_ii = static_cast<int>(v);
      dir.loops[label] = d;
    }
  }
  if (const Json* groups = j.find("merge_groups")) {
    if (!groups->is_array())
      return fail(err, path + ".merge_groups: expected array of arrays");
    for (std::size_t gi = 0; gi < groups->size(); ++gi) {
      const Json& g = groups->at(gi);
      if (!g.is_array())
        return fail(err, path + ".merge_groups[" + std::to_string(gi) +
                             "]: expected array of strings");
      std::vector<std::string> labels;
      for (std::size_t i = 0; i < g.size(); ++i) {
        if (!g.at(i).is_string())
          return fail(err, path + ".merge_groups[" + std::to_string(gi) +
                               "][" + std::to_string(i) +
                               "]: expected string");
        labels.push_back(g.at(i).as_string());
      }
      dir.merge_groups.push_back(std::move(labels));
    }
  }
  if (!get_bool_field(j, path, "auto_merge", &dir.auto_merge, err))
    return false;
  if (const Json* arrays = j.find("arrays")) {
    if (!want_object(*arrays, path + ".arrays", err)) return false;
    for (const auto& [name, ad] : arrays->items()) {
      const std::string ap = path + ".arrays." + name;
      if (!want_object(ad, ap, err)) return false;
      if (!check_keys(ad, ap, {"mapping", "mem_read_ports", "mem_write_ports"},
                      err))
        return false;
      hls::ArrayDirective d;
      if (const Json* m = ad.find("mapping")) {
        if (!m->is_string())
          return fail(err, ap + ".mapping: expected string");
        if (m->as_string() == "memory")
          d.mapping = hls::ArrayMapping::kMemory;
        else if (m->as_string() == "registers")
          d.mapping = hls::ArrayMapping::kRegisters;
        else
          return fail(err, ap + ".mapping: expected 'registers' or 'memory'");
      }
      long long v = d.mem_read_ports;
      if (!get_int_field(ad, ap, "mem_read_ports", &v, nullptr, err))
        return false;
      d.mem_read_ports = static_cast<int>(v);
      v = d.mem_write_ports;
      if (!get_int_field(ad, ap, "mem_write_ports", &v, nullptr, err))
        return false;
      d.mem_write_ports = static_cast<int>(v);
      dir.arrays[name] = d;
    }
  }
  if (const Json* ifs = j.find("interfaces")) {
    if (!want_object(*ifs, path + ".interfaces", err)) return false;
    for (const auto& [name, kind] : ifs->items()) {
      if (!kind.is_string())
        return fail(err, path + ".interfaces." + name + ": expected string");
      hls::InterfaceKind k;
      if (!interface_from_name(kind.as_string(), &k))
        return fail(err, path + ".interfaces." + name +
                             ": unknown interface kind '" +
                             kind.as_string() + "'");
      dir.interfaces[name] = k;
    }
  }
  if (!get_bool_field(j, path, "handshake", &dir.handshake, err))
    return false;
  long long mrm = dir.max_real_multipliers;
  if (!get_int_field(j, path, "max_real_multipliers", &mrm, nullptr, err))
    return false;
  dir.max_real_multipliers = static_cast<int>(mrm);
  *out = std::move(dir);
  return true;
}

Json fxvalue_to_json(const hls::FxValue& v) {
  Json j = Json::object();
  j.set("re", int128_to_string(v.re));
  if (v.cplx) j.set("im", int128_to_string(v.im));
  j.set("fw", v.fw);
  if (v.cplx) j.set("cplx", true);
  return j;
}

bool fxvalue_from_json(const Json& j, hls::FxValue* out, std::string* err) {
  if (!want_object(j, "value", err)) return false;
  if (!check_keys(j, "value", {"re", "im", "fw", "cplx"}, err)) return false;
  hls::FxValue v;
  const Json* re = j.find("re");
  if (re == nullptr || !re->is_string())
    return fail(err, "value.re: expected decimal string");
  if (!int128_from_string(re->as_string(), &v.re))
    return fail(err, "value.re: not a decimal integer: " + re->as_string());
  if (!get_bool_field(j, "value", "cplx", &v.cplx, err)) return false;
  if (const Json* im = j.find("im")) {
    if (!im->is_string())
      return fail(err, "value.im: expected decimal string");
    if (!int128_from_string(im->as_string(), &v.im))
      return fail(err, "value.im: not a decimal integer: " + im->as_string());
  }
  long long fw = 0;
  if (!get_int_field(j, "value", "fw", &fw, nullptr, err)) return false;
  v.fw = static_cast<int>(fw);
  *out = v;
  return true;
}

Json portio_to_json(const hls::PortIo& io) {
  Json j = Json::object();
  if (!io.vars.empty()) {
    Json vars = Json::object();
    for (const auto& [name, v] : io.vars) vars.set(name, fxvalue_to_json(v));
    j.set("vars", std::move(vars));
  }
  if (!io.arrays.empty()) {
    Json arrays = Json::object();
    for (const auto& [name, vals] : io.arrays) {
      Json arr = Json::array();
      for (const auto& v : vals) arr.push(fxvalue_to_json(v));
      arrays.set(name, std::move(arr));
    }
    j.set("arrays", std::move(arrays));
  }
  return j;
}

bool portio_from_json(const Json& j, hls::PortIo* out, std::string* err) {
  if (!want_object(j, "vector", err)) return false;
  if (!check_keys(j, "vector", {"vars", "arrays"}, err)) return false;
  hls::PortIo io;
  std::string sub;
  if (const Json* vars = j.find("vars")) {
    if (!want_object(*vars, "vector.vars", err)) return false;
    for (const auto& [name, v] : vars->items()) {
      hls::FxValue fx;
      if (!fxvalue_from_json(v, &fx, &sub))
        return fail(err, "vector.vars." + name + ": " + sub);
      io.vars[name] = fx;
    }
  }
  if (const Json* arrays = j.find("arrays")) {
    if (!want_object(*arrays, "vector.arrays", err)) return false;
    for (const auto& [name, vals] : arrays->items()) {
      if (!vals.is_array())
        return fail(err, "vector.arrays." + name + ": expected array");
      std::vector<hls::FxValue> fx(vals.size());
      for (std::size_t i = 0; i < vals.size(); ++i)
        if (!fxvalue_from_json(vals.at(i), &fx[i], &sub))
          return fail(err, "vector.arrays." + name + "[" +
                               std::to_string(i) + "]: " + sub);
      io.arrays[name] = std::move(fx);
    }
  }
  *out = std::move(io);
  return true;
}

Json vectors_to_json(const std::vector<hls::PortIo>& vectors) {
  Json j = Json::array();
  for (const auto& io : vectors) j.push(portio_to_json(io));
  return j;
}

bool vectors_from_json(const Json& j, std::vector<hls::PortIo>* out,
                       std::string* err) {
  if (!j.is_array()) return fail(err, "vectors: expected array");
  out->clear();
  out->resize(j.size());
  std::string sub;
  for (std::size_t i = 0; i < j.size(); ++i)
    if (!portio_from_json(j.at(i), &(*out)[i], &sub))
      return fail(err, "vectors[" + std::to_string(i) + "]: " + sub);
  return true;
}

bool tech_from_json(const Json* j, hls::TechLibrary* out, std::string* err) {
  if (j == nullptr) {
    *out = hls::TechLibrary::asic90();
    return true;
  }
  if (!j->is_string())
    return fail(err, "tech: expected string ('asic90' or 'fpga_lut4')");
  const std::string& name = j->as_string();
  if (name == "asic90") *out = hls::TechLibrary::asic90();
  else if (name == "fpga_lut4") *out = hls::TechLibrary::fpga_lut4();
  else return fail(err, "tech: unknown library '" + name + "'");
  return true;
}

bool dse_options_from_json(const Json* j, hls::DseOptions* out,
                           std::string* err) {
  if (j == nullptr) return true;
  const std::string path = "options";
  if (!want_object(*j, path, err)) return false;
  if (!check_keys(*j, path,
                  {"clock_period_ns", "unroll_factors", "pipeline_iis",
                   "try_merge", "try_no_merge", "prune", "max_configs"},
                  err))
    return false;
  if (!get_num_field(*j, path, "clock_period_ns", &out->clock_period_ns,
                     nullptr, err))
    return false;
  if (!get_int_list(*j, path, "unroll_factors", &out->unroll_factors, err))
    return false;
  if (!get_int_list(*j, path, "pipeline_iis", &out->pipeline_iis, err))
    return false;
  if (!get_bool_field(*j, path, "try_merge", &out->try_merge, err))
    return false;
  if (!get_bool_field(*j, path, "try_no_merge", &out->try_no_merge, err))
    return false;
  if (!get_bool_field(*j, path, "prune", &out->prune, err)) return false;
  long long mc = out->max_configs;
  if (!get_int_field(*j, path, "max_configs", &mc, nullptr, err))
    return false;
  out->max_configs = static_cast<int>(mc);
  return true;
}

bool cosim_options_from_json(const Json* j, hls::CosimOptions* out,
                             std::string* err) {
  if (j == nullptr) return true;
  const std::string path = "options";
  if (!want_object(*j, path, err)) return false;
  if (!check_keys(*j, path, {"block_size", "mismatch_limit", "lanes"}, err))
    return false;
  long long v = static_cast<long long>(out->block_size);
  if (!get_int_field(*j, path, "block_size", &v, nullptr, err)) return false;
  if (v < 1) return fail(err, path + ".block_size: must be >= 1");
  out->block_size = static_cast<std::size_t>(v);
  v = static_cast<long long>(out->mismatch_limit);
  if (!get_int_field(*j, path, "mismatch_limit", &v, nullptr, err))
    return false;
  if (v < 0) return fail(err, path + ".mismatch_limit: must be >= 0");
  out->mismatch_limit = static_cast<std::size_t>(v);
  v = out->lanes;
  if (!get_int_field(*j, path, "lanes", &v, nullptr, err)) return false;
  out->lanes = static_cast<int>(v);
  return true;
}

Json cosim_result_to_json(const hls::CosimResult& r) {
  Json mism = Json::array();
  for (const std::string& m : r.mismatches) mism.push(m);
  return Json::object()
      .set("vectors", static_cast<long long>(r.vectors))
      .set("blocks", static_cast<long long>(r.blocks))
      .set("total_mismatches", static_cast<long long>(r.total_mismatches))
      .set("mismatches", std::move(mism))
      .set("ok", r.ok());
}

}  // namespace hlsw::serve
