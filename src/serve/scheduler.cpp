#include "serve/scheduler.h"

namespace hlsw::serve {

FairScheduler::FairScheduler(SchedulerOptions opts) : opts_(opts) {
  if (opts_.max_queue_depth == 0) opts_.max_queue_depth = 1;
  if (opts_.default_weight < 1) opts_.default_weight = 1;
}

FairScheduler::Tenant& FairScheduler::tenant_locked(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, Tenant{}).first;
    it->second.weight = opts_.default_weight;
    order_.push_back(name);
  }
  return it->second;
}

PushStatus FairScheduler::push(const std::string& tenant,
                               std::function<void()> unit) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return PushStatus::kStopped;
    Tenant& t = tenant_locked(tenant);
    if (t.q.size() >= opts_.max_queue_depth) return PushStatus::kBusy;
    t.q.push_back(std::move(unit));
    ++queued_;
  }
  cv_.notify_one();
  return PushStatus::kAccepted;
}

bool FairScheduler::push_unbounded(const std::string& tenant,
                                   std::function<void()> unit) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return false;
    Tenant& t = tenant_locked(tenant);
    t.q.push_back(std::move(unit));
    ++queued_;
  }
  cv_.notify_one();
  return true;
}

bool FairScheduler::pop(std::function<void()>* unit) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return queued_ > 0 || draining_; });
    if (queued_ == 0) return false;  // draining and empty: worker exits

    // Weighted round-robin: serve the cursor tenant while it has queued
    // units and burst budget left this visit; otherwise move on, zeroing
    // its visit counter so the next arrival starts a fresh burst. order_
    // is non-empty here because queued_ > 0 implies a tenant exists.
    for (std::size_t visited = 0; visited <= order_.size(); ++visited) {
      Tenant& t = tenants_[order_[cursor_]];
      if (!t.q.empty() && t.served < t.weight) {
        ++t.served;
        *unit = std::move(t.q.front());
        t.q.pop_front();
        --queued_;
        return true;
      }
      t.served = 0;
      cursor_ = (cursor_ + 1) % order_.size();
    }
    // All tenants visited without finding a unit — impossible while
    // queued_ > 0, but loop back to the wait defensively.
  }
}

void FairScheduler::set_weight(const std::string& tenant, int weight) {
  std::lock_guard<std::mutex> lock(mu_);
  tenant_locked(tenant).weight = weight < 1 ? 1 : weight;
}

void FairScheduler::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

bool FairScheduler::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::map<std::string, std::size_t> FairScheduler::queue_depths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::size_t> out;
  for (const auto& [name, t] : tenants_) out[name] = t.q.size();
  return out;
}

std::size_t FairScheduler::total_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace hlsw::serve
