#include "serve/proto.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace hlsw::serve {

namespace {

void set_err(std::string* err, const std::string& what) {
  if (err) *err = what + ": " + std::strerror(errno);
}

// Reads exactly n bytes. Returns n on success, 0..n-1 on EOF mid-read,
// -1 on transport error.
long read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd, buf + got, n - got, 0);
    if (k == 0) return static_cast<long>(got);
    if (k < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(k);
  }
  return static_cast<long>(got);
}

bool write_exact(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    // MSG_NOSIGNAL: a vanished peer yields EPIPE instead of killing the
    // process — the daemon must survive clients that disconnect mid-reply.
    const ssize_t k = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

std::string to_string(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kError: return "error";
  }
  return "?";
}

FrameStatus read_frame(int fd, std::string* payload, std::uint32_t max_bytes,
                       std::string* err) {
  unsigned char prefix[4];
  const long pn = read_exact(fd, reinterpret_cast<char*>(prefix), 4);
  if (pn < 0) {
    set_err(err, "read length prefix");
    return FrameStatus::kError;
  }
  if (pn == 0) return FrameStatus::kClosed;
  if (pn < 4) {
    if (err) *err = "EOF inside the 4-byte length prefix";
    return FrameStatus::kTruncated;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > max_bytes) {
    if (err)
      *err = "frame announces " + std::to_string(len) +
             " bytes, limit is " + std::to_string(max_bytes);
    return FrameStatus::kOversized;
  }
  payload->resize(len);
  if (len == 0) return FrameStatus::kOk;
  const long bn = read_exact(fd, payload->data(), len);
  if (bn < 0) {
    set_err(err, "read payload");
    return FrameStatus::kError;
  }
  if (static_cast<std::uint32_t>(bn) < len) {
    if (err)
      *err = "EOF after " + std::to_string(bn) + " of " +
             std::to_string(len) + " payload bytes";
    return FrameStatus::kTruncated;
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload, std::string* err) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len)};
  if (!write_exact(fd, reinterpret_cast<const char*>(prefix), 4)) {
    set_err(err, "write length prefix");
    return false;
  }
  if (!payload.empty() && !write_exact(fd, payload.data(), payload.size())) {
    set_err(err, "write payload");
    return false;
  }
  return true;
}

int listen_unix(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path) {
    if (err) *err = "unix socket path too long: " + path;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_err(err, "socket(AF_UNIX)");
    return -1;
  }
  ::unlink(path.c_str());  // replace a stale socket from a dead daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    set_err(err, "bind " + path);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) < 0) {
    set_err(err, "listen " + path);
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(const std::string& host, int port, int* bound_port,
               std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_err(err, "socket(AF_INET)");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "bad IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    set_err(err, "bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) < 0) {
    set_err(err, "listen " + host + ":" + std::to_string(port));
    ::close(fd);
    return -1;
  }
  if (bound_port) {
    sockaddr_in got{};
    socklen_t len = sizeof got;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&got), &len) == 0)
      *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path) {
    if (err) *err = "unix socket path too long: " + path;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_err(err, "socket(AF_UNIX)");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    set_err(err, "connect " + path);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, int port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_err(err, "socket(AF_INET)");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "bad IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    set_err(err, "connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return -1;
  }
  return fd;
}

int accept_fd(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;
  }
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace hlsw::serve
