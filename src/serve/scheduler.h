// Fair multi-tenant work scheduler for the serve daemon.
//
// Every accepted request becomes one or more work units (closures). Units
// are queued per tenant and handed to worker threads by weighted round-
// robin: the scheduler visits tenants in first-seen order, grants each a
// burst of `weight` units, then moves on. A tenant that floods the daemon
// therefore delays only its own jobs — other tenants still get their
// weighted share of worker time — and a tenant with weight 2 drains twice
// as fast as one with weight 1 under contention.
//
// Backpressure is explicit and typed: push() refuses with kBusy once the
// tenant's queue holds max_queue_depth units, and the server turns that
// into a `busy` error response. Nothing is ever silently dropped — every
// accepted unit runs exactly once, every refused push is answered.
//
// push_unbounded() exists for INTERNAL units: a running DSE job shards
// itself into per-candidate synthesis closures, and those must never be
// refused (the coordinator already holds the job slot; bouncing its
// sub-units would deadlock it against its own backpressure). They bypass
// the depth cap but still schedule through the same weighted queues, so a
// giant sweep competes fairly with other tenants' work. Once draining
// starts push_unbounded() returns false and the coordinator runs the unit
// inline — race-free, because draining is decided under the same lock that
// makes pop() return false only on drained-and-empty.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include <condition_variable>

namespace hlsw::serve {

struct SchedulerOptions {
  // Per-tenant cap on queued external jobs; push() answers kBusy beyond it.
  std::size_t max_queue_depth = 64;
  // Units granted per round-robin visit for tenants without an explicit
  // set_weight() call.
  int default_weight = 1;
};

enum class PushStatus { kAccepted, kBusy, kStopped };

class FairScheduler {
 public:
  explicit FairScheduler(SchedulerOptions opts = {});

  // Enqueues one external work unit for `tenant`. kBusy when the tenant's
  // queue is at max_queue_depth, kStopped after drain() began.
  PushStatus push(const std::string& tenant, std::function<void()> unit);

  // Enqueues an internal (job-sharded) unit, ignoring the depth cap.
  // Returns false once draining — the caller must then run `unit` inline.
  bool push_unbounded(const std::string& tenant, std::function<void()> unit);

  // Blocks for the next unit in weighted round-robin order. Returns false
  // exactly when draining AND every queue is empty — the worker-exit
  // condition; no accepted unit is ever abandoned.
  bool pop(std::function<void()>* unit);

  // Sets a tenant's round-robin burst size (clamped to >= 1). May be
  // called before the tenant's first push.
  void set_weight(const std::string& tenant, int weight);

  // Stops accepting work and wakes blocked poppers; already-queued units
  // still drain through pop().
  void drain();
  bool draining() const;

  // Snapshot of per-tenant queue depths (for the metrics op).
  std::map<std::string, std::size_t> queue_depths() const;
  std::size_t total_depth() const;

 private:
  struct Tenant {
    std::deque<std::function<void()>> q;
    int weight = 1;
    int served = 0;  // units granted in the current round-robin visit
  };

  // Returns the tenant entry, creating it (and appending to the visit
  // order) on first sight. Caller holds mu_.
  Tenant& tenant_locked(const std::string& name);

  SchedulerOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Tenant> tenants_;
  std::vector<std::string> order_;  // first-seen visit order
  std::size_t cursor_ = 0;          // index into order_ of the tenant being served
  std::size_t queued_ = 0;          // total units across all queues
  bool draining_ = false;
};

}  // namespace hlsw::serve
