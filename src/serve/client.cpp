#include "serve/client.h"

namespace hlsw::serve {

using obs::Json;

bool Client::connect_unix(const std::string& path, std::string* err) {
  close();
  fd_ = hlsw::serve::connect_unix(path, err);
  return fd_ >= 0;
}

bool Client::connect_tcp(const std::string& host, int port, std::string* err) {
  close();
  fd_ = hlsw::serve::connect_tcp(host, port, err);
  return fd_ >= 0;
}

void Client::close() {
  close_fd(fd_);
  fd_ = -1;
  parked_.clear();
}

long long Client::submit(const std::string& op, Json params,
                         const std::string& tenant, std::string* err) {
  if (fd_ < 0) {
    if (err) *err = "not connected";
    return -1;
  }
  const long long id = next_id_++;
  Json req = Json::object().set("op", op).set("id", id);
  if (!tenant.empty()) req.set("tenant", tenant);
  if (params.is_object())
    for (const auto& [key, value] : params.items()) req.set(key, value);
  if (!write_frame(fd_, req.dump(), err)) return -1;
  return id;
}

bool Client::wait(long long id, Json* response, std::string* err) {
  auto it = parked_.find(id);
  if (it != parked_.end()) {
    *response = std::move(it->second);
    parked_.erase(it);
    return true;
  }
  std::string payload;
  for (;;) {
    const FrameStatus st = read_frame(fd_, &payload, kDefaultMaxFrameBytes,
                                      err);
    if (st != FrameStatus::kOk) {
      if (st == FrameStatus::kClosed && err)
        *err = "connection closed before response " + std::to_string(id);
      return false;
    }
    Json resp;
    std::string perr;
    if (!Json::parse(payload, &resp, &perr)) {
      if (err) *err = "unparseable response frame: " + perr;
      return false;
    }
    const Json* rid = resp.find("id");
    const long long got = rid != nullptr && rid->is_number() ? rid->as_int()
                                                             : 0;
    if (got == id) {
      *response = std::move(resp);
      return true;
    }
    parked_[got] = std::move(resp);
  }
}

bool Client::call(const std::string& op, Json params, Json* response,
                  std::string* err, const std::string& tenant) {
  const long long id = submit(op, std::move(params), tenant, err);
  if (id < 0) return false;
  return wait(id, response, err);
}

}  // namespace hlsw::serve
