// Double-precision twin of Figure 4: identical control flow and update
// ordering (including the dfe_shift quirk), with all quantization removed.
// This is the "MATLAB/C floating-point model" of the paper's flow; the
// difference between this model and QamDecoderFixed isolates quantization
// noise, which the precision-exploration experiment (D2) sweeps.
#pragma once

#include <cmath>
#include <complex>

namespace hlsw::qam {

class QamDecoderFloat {
 public:
  static constexpr int kNffe = 8;
  static constexpr int kNdfe = 16;

  // bits_per_axis = 3 is the paper's 64-QAM; 2 and 4 give 16/256-QAM with
  // the same parameterized slicer (section 4.1's reuse argument).
  explicit QamDecoderFloat(int bits_per_axis = 3)
      : levels_(1 << bits_per_axis) {}

  // Two new T/2 inputs -> one decision; returns the 6-bit data word using
  // the paper's two's-complement mapping (data = r*64 + i*8 mod 64).
  // When `train` is non-null it points at the known transmitted
  // constellation point: the feedback path and the error then use the true
  // symbol instead of the slicer decision (Figure 3's training switch,
  // which the paper leaves out of the listing).
  int decode(std::complex<double> in0, std::complex<double> in1,
             const std::complex<double>* train = nullptr) {
    const double mu_ffe = 1.0 / 256;
    const double mu_dfe = 1.0 / 256;

    x_[0] = in0;
    x_[1] = in1;

    std::complex<double> yffe{0, 0};
    for (int k = 0; k < kNffe; ++k) yffe += x_[k] * ffe_c_[k];
    std::complex<double> ydfe{0, 0};
    for (int k = 0; k < kNdfe; ++k) ydfe += sv_[k] * dfe_c_[k];
    const std::complex<double> y = yffe - ydfe;
    y_ = y;

    // Slicer: subtract the half-LSB offset, round to the 1/L grid with
    // saturation, add the offset back — the float rendition of the
    // RND_ZERO/SAT chain in Figure 4, generalized to L = 2^bits levels.
    const double offset = 0.5 / levels_;
    const double r = slice_axis(y.real() - offset);
    const double i = slice_axis(y.imag() - offset);
    sv_[0] = train ? *train : std::complex<double>{r + offset, i + offset};
    e_ = sv_[0] - y;
    const int ri = static_cast<int>(std::lround(r * levels_));
    const int ii = static_cast<int>(std::lround(i * levels_));
    // Arithmetic composition, exactly like the fixed model's r*64 + i*8
    // wrapped to 2*bits bits (negative i borrows from the r field).
    const int data = (ri * levels_ + ii) & (levels_ * levels_ - 1);

    for (int k = 0; k < kNffe; ++k)
      ffe_c_[k] += mu_ffe * e_ * sign_conj(x_[k]);
    for (int k = 0; k < kNdfe; ++k)
      dfe_c_[k] -= mu_dfe * e_ * sign_conj(sv_[k]);

    for (int k = kNffe - 4; k >= 0; k -= 2) {
      x_[k + 3] = x_[k + 1];
      x_[k + 2] = x_[k];
    }
    for (int k = kNdfe - 2; k >= 0; --k) sv_[k + 1] = sv_[k];
    return data;
  }

  std::complex<double> last_error() const { return e_; }
  std::complex<double> last_output() const { return y_; }
  std::complex<double> ffe_coeff(int k) const { return ffe_c_[k]; }
  std::complex<double> dfe_coeff(int k) const { return dfe_c_[k]; }

  void reset() { *this = QamDecoderFloat(); }

 private:
  double slice_axis(double v) const {
    // Round to the nearest multiple of 1/L with ties toward zero (the
    // RND_ZERO of the fixed model), saturated to [-1/2, 1/2 - 1/L].
    const double t = v * levels_;
    const double fl = std::floor(t);
    const double frac = t - fl;
    double f = (frac > 0.5 || (frac == 0.5 && t < 0)) ? fl + 1 : fl;
    f /= levels_;
    if (f < -0.5) f = -0.5;
    const double top = 0.5 - 1.0 / levels_;
    if (f > top) f = top;
    return f;
  }

  int levels_ = 8;
  static std::complex<double> sign_conj(std::complex<double> v) {
    return {v.real() >= 0 ? 1.0 : -1.0, v.imag() >= 0 ? -1.0 : 1.0};
  }

  std::complex<double> ffe_c_[kNffe]{};
  std::complex<double> dfe_c_[kNdfe]{};
  std::complex<double> x_[kNffe]{};
  std::complex<double> sv_[kNdfe]{};
  std::complex<double> e_{};
  std::complex<double> y_{};
};

}  // namespace hlsw::qam
