#include "qam/decoder_ir.h"

#include "hls/builder.h"

namespace hlsw::qam {

using hls::AffineIdx;
using hls::cfx;
using hls::FunctionBuilder;
using hls::fx;
using hls::FxType;
using hls::PortDir;
using fixpt::Ovf;
using fixpt::Quant;

hls::Function build_qam_decoder_ir(const DecoderWidths& w) {
  constexpr int kNffe = 8;
  constexpr int kNdfe = 16;
  // mu = 2^-8 must be representable at the coefficient scale; below 8
  // fractional bits the paper's adaptation step underflows to zero (the
  // native model then freezes adaptation; here we reject the IR build).
  assert(w.ffe_c_w >= 8 && w.dfe_c_w >= 8 &&
         "coefficient width must hold mu = 2^-8");

  FunctionBuilder fb("qam_decoder");

  // Ports and statics (Figure 4 declarations).
  const int x_in = fb.add_array("x_in", 2, cfx(w.x_w, 0), false, PortDir::kIn);
  const int data = fb.add_var("data", FxType{6, 6, false, false},
                              false, PortDir::kOut);
  // Coefficient storage rounds-to-nearest and saturates (finding F4-bias,
  // see decoder_fixed.h): plain TRN/WRAP storage makes sign-LMS drift.
  const int ffe_c = fb.add_array(
      "ffe_c", kNffe, cfx(w.ffe_c_w, 0, Quant::kRnd, Ovf::kSat), true);
  const int dfe_c = fb.add_array(
      "dfe_c", kNdfe, cfx(w.dfe_c_w, 0, Quant::kRnd, Ovf::kSat), true);
  const int x = fb.add_array("x", kNffe, cfx(w.x_w, 0), true);
  const int sv = fb.add_array("SV", kNdfe, cfx(4, 0), true);
  // Locals communicated between regions.
  const int yffe = fb.add_var("yffe", cfx(w.ffe_w + 1, 1));
  const int ydfe = fb.add_var("ydfe", cfx(w.dfe_w + 1, 1));
  const int y = fb.add_var("y", cfx(w.ffe_w + 1, 1));
  const int e = fb.add_var("e", cfx(w.ffe_w, 0));

  // -- Input block: x[0] = x_in[0]; x[1] = x_in[1]; accumulators cleared.
  {
    auto b = fb.block("in");
    b.array_write(x, {0, 0}, b.array_read(x_in, {0, 0}));
    b.array_write(x, {0, 1}, b.array_read(x_in, {0, 1}));
    b.var_write(yffe, b.cnst(cfx(w.ffe_w + 1, 1), 0.0, "yffe0"));
    b.var_write(ydfe, b.cnst(cfx(w.dfe_w + 1, 1), 0.0, "ydfe0"));
  }

  // -- ffe: yffe += x[k] * ffe_c[k]
  {
    auto b = fb.loop("ffe", kNffe);
    const int p = b.mul(b.array_read(x, {1, 0}), b.array_read(ffe_c, {1, 0}),
                        "x*c");
    b.var_write(yffe, b.add(b.var_read(yffe), p, "yffe_acc"));
  }

  // -- dfe: ydfe += SV[k] * dfe_c[k]
  {
    auto b = fb.loop("dfe", kNdfe);
    const int p = b.mul(b.array_read(sv, {1, 0}), b.array_read(dfe_c, {1, 0}),
                        "sv*c");
    b.var_write(ydfe, b.add(b.var_read(ydfe), p, "ydfe_acc"));
  }

  // -- Slicer block.
  {
    auto b = fb.block("slicer");
    const int yv = b.sub(b.var_read(yffe), b.var_read(ydfe), "y");
    b.var_write(y, yv);
    const int yr = b.real(b.var_read(y));
    const int yi = b.imag(b.var_read(y));
    const int offset = b.cnst_raw(fx(4, 0), 1, 0, "offset");  // 2^-4
    // See decoder_fixed.h (finding F4-slicer): the 3-bit conversion carries
    // the RND_ZERO/SAT so the slicer boundaries land midway between levels.
    const FxType sat_t{w.ffe_w, 0, true, false, Quant::kRndZero, Ovf::kSat};
    const FxType grid_t{3, 0, true, false, Quant::kRndZero, Ovf::kSat};
    const int r10 = b.cast(sat_t, b.sub(yr, offset, "yr-off"), "r_sat");
    const int i10 = b.cast(sat_t, b.sub(yi, offset, "yi-off"), "i_sat");
    const int r3 = b.cast(grid_t, r10, "r");
    const int i3 = b.cast(grid_t, i10, "i");
    const int point = b.make_complex(r3, i3);
    const int off_c = b.cnst_raw(cfx(4, 0), 1, 1, "offset_c");
    b.array_write(sv, {0, 0}, b.add(point, off_c, "SV0"));
    // e = SV[0] - y (reads the just-written element: next cycle in RTL).
    b.var_write(e, b.sub(b.array_read(sv, {0, 0}), b.var_read(y), "e"));
    // data = r*64 + i*8 (6-bit wrap), pure shifts in hardware.
    const int c64 = b.cnst_raw(fx(8, 8), 64, 0, "64");
    const int c8 = b.cnst_raw(fx(8, 8), 8, 0, "8");
    const int data_f =
        b.cast(FxType{6, 6, true, false},
               b.add(b.mul(r3, c64, "r*64"), b.mul(i3, c8, "i*8"), "data_f"));
    b.var_write(data, data_f);
  }

  // -- ffe_adapt: ffe_c[k] += mu_ffe * e * sign_conj(x[k])
  {
    auto b = fb.loop("ffe_adapt", kNffe);
    const int mu = b.cnst_raw(fx(w.ffe_c_w, 0), 1 << (w.ffe_c_w - 8), 0,
                              "mu_ffe");  // 2^-8 at fw = ffe_c_w
    const int mue = b.mul(mu, b.var_read(e), "mu*e");
    const int upd = b.mul(mue, b.sign_conj(b.array_read(x, {1, 0})), "upd");
    b.array_write(ffe_c, {1, 0},
                  b.add(b.array_read(ffe_c, {1, 0}), upd, "c+upd"));
  }

  // -- dfe_adapt: dfe_c[k] -= mu_dfe * e * sign_conj(SV[k])
  {
    auto b = fb.loop("dfe_adapt", kNdfe);
    const int mu = b.cnst_raw(fx(w.dfe_c_w, 0), 1 << (w.dfe_c_w - 8), 0,
                              "mu_dfe");
    const int mue = b.mul(mu, b.var_read(e), "mu*e");
    const int upd = b.mul(mue, b.sign_conj(b.array_read(sv, {1, 0})), "upd");
    b.array_write(dfe_c, {1, 0},
                  b.sub(b.array_read(dfe_c, {1, 0}), upd, "c-upd"));
  }

  // -- ffe_shift: for k = nffe-4 down to 0 step -2: x[k+3]=x[k+1];
  //    x[k+2]=x[k]. Canonical k' = 0..2 with source k = 4 - 2k'.
  {
    auto b = fb.loop("ffe_shift", (kNffe - 2) / 2);
    b.array_write(x, {-2, kNffe - 1}, b.array_read(x, {-2, kNffe - 3}));
    b.array_write(x, {-2, kNffe - 2}, b.array_read(x, {-2, kNffe - 4}));
  }

  // -- dfe_shift: for k = ndfe-2 down to 0: SV[k+1] = SV[k].
  //    Canonical k' = 0..14 with source k = 14 - k'.
  {
    auto b = fb.loop("dfe_shift", kNdfe - 1);
    b.array_write(sv, {-1, kNdfe - 1}, b.array_read(sv, {-1, kNdfe - 2}));
  }

  return fb.build();
}

}  // namespace hlsw::qam
