// The paper's Figure 4 algorithm, transcribed line for line onto the
// hlsw::fixpt datatypes: a 64-QAM decoder with an 8-tap T/2-spaced
// feed-forward equalizer, a 16-tap decision feedback equalizer, a slicer,
// and sign-LMS adaptation. Every type below corresponds 1:1 to a
// declaration in the paper (sc_fixed -> fixpt::fixed, sc_complex ->
// fixpt::complex_fixed); the default template arguments are the paper's
// "#define"s, all set to 10.
//
// Function statics became members so multiple decoder instances can exist
// (Figure 4 uses `static` arrays "so that the values are preserved between
// calls"; a member achieves the same persistence per instance).
//
// Known quirks of the paper listing, preserved deliberately:
//  * `e` is declared static AND re-declared as a local initialized from
//    SV[0] - y; the local shadows the static, so e is effectively local.
//  * The dfe_shift loop duplicates the newest decision into SV[1] while
//    leaving SV[0] in place, so the DFE effectively sees the most recent
//    decision through two taps. Adaptation and filtering still converge
//    (the adaptive coefficients absorb the structure); we reproduce the
//    listing exactly rather than "fixing" it, and quantify the effect
//    against the textbook-ordered float model in tests and EXPERIMENTS.md.
#pragma once

#include "fixpt/complex_fixed.h"

namespace hlsw::qam {

// QAM_B is the number of bits per axis (3 for the paper's 64-QAM; 2 gives
// 16-QAM, 4 gives 256-QAM) — the parameterization section 4.1 motivates:
// the slicer grid, offset, decision storage and output width all derive
// from it. The defaults are exactly the paper's design.
template <int X_W = 10, int FFE_W = 10, int DFE_W = 10, int FFE_C_W = 10,
          int DFE_C_W = 10, int QAM_B = 3>
class QamDecoderFixed {
 public:
  static constexpr int kNffe = 8;
  static constexpr int kNdfe = 16;
  static constexpr int kQamBits = 2 * QAM_B;

  using input_type = fixpt::complex_fixed<X_W, 0>;
  using output_type = fixpt::wide_int<2 * QAM_B, false>;

  // Every call takes two new T/2-spaced inputs and produces one 6-bit
  // symbol (Figure 4's qam_decoder signature).
  void decode(const input_type x_in[2], output_type* data) {
    using namespace hlsw::fixpt;

    const fixed<FFE_C_W, 0> mu_ffe(fixed<FFE_W + 2, 2>(1LL) >> 8);  // 2^-8
    const fixed<DFE_C_W, 0> mu_dfe(fixed<DFE_W + 2, 2>(1LL) >> 8);  // 2^-8

    x_[0] = x_in[0];
    x_[1] = x_in[1];

    complex_fixed<FFE_W + 1, 1> yffe(0);
    for (int k = 0; k < kNffe; ++k)  // nfe: forward equalizer
      yffe += x_[k] * ffe_c_[k];

    complex_fixed<DFE_W + 1, 1> ydfe(0);
    for (int k = 0; k < kNdfe; ++k)  // dfe: decision feedback equalizer
      ydfe += sv_[k] * dfe_c_[k];

    const complex_fixed<FFE_W + 1, 1> y(yffe - ydfe);  // equalizer output

    // M-QAM slicer (8x8 grid for the paper's QAM_B = 3).
    // Reproduction note (finding F4-slicer, EXPERIMENTS.md):
    // as literally printed in Figure 4 the inner cast keeps all fractional
    // bits (fw stays FFE_W), so its SC_RND_ZERO never acts and the final
    // truncating assignment to sc_fixed<3,0> puts the decision boundaries
    // ON the constellation points — converged decisions would coin-flip.
    // The intended slicer needs the round-to-nearest at the 3-bit grid, so
    // the RND_ZERO/SAT modes belong on the <3,0> conversion; that is what
    // we implement (boundaries midway between levels, as Figure 3 requires).
    fixed<QAM_B + 1, 0> offset(0LL);
    offset[0] = 1;  // half the level spacing: 2^-(QAM_B+1)
    const fixed<QAM_B, 0, Quant::kRndZero, Ovf::kSat> r(
        fixed<FFE_W, 0, Quant::kRndZero, Ovf::kSat>(y.r() - offset));
    const fixed<QAM_B, 0, Quant::kRndZero, Ovf::kSat> i(
        fixed<FFE_W, 0, Quant::kRndZero, Ovf::kSat>(y.i() - offset));
    sv_[0] = complex_fixed<QAM_B, 0>(r, i) +
             complex_fixed<QAM_B + 1, 0>(offset, offset);
    const complex_fixed<FFE_W, 0> e(sv_[0] - y);
    const fixed<2 * QAM_B, 2 * QAM_B> data_f(r * (1 << (2 * QAM_B)) +
                                             i * (1 << QAM_B));
    *data = output_type(static_cast<long long>(data_f.to_int()));

    // Sign-LMS adaptation for FFE and DFE.
    for (int k = 0; k < kNffe; ++k)  // ffe_adapt
      ffe_c_[k] += mu_ffe * e * x_[k].sign_conj();
    for (int k = 0; k < kNdfe; ++k)  // dfe_adapt
      dfe_c_[k] -= mu_dfe * e * sv_[k].sign_conj();

    for (int k = kNffe - 4; k >= 0; k -= 2) {  // ffe_shift
      x_[k + 3] = x_[k + 1];
      x_[k + 2] = x_[k];
    }
    for (int k = kNdfe - 2; k >= 0; --k)  // dfe_shift
      sv_[k + 1] = sv_[k];
  }

  void reset() { *this = QamDecoderFixed(); }

  // State inspection for bit-exactness tests against the IR/RTL models.
  const auto& ffe_coeff(int k) const { return ffe_c_[k]; }
  const auto& dfe_coeff(int k) const { return dfe_c_[k]; }
  const fixpt::complex_fixed<QAM_B + 1, 0>& sv(int k) const { return sv_[k]; }
  const fixpt::complex_fixed<X_W, 0>& x_tap(int k) const { return x_[k]; }

  // Coefficient preload. The paper's design assumes training happened
  // elsewhere ("we have not implemented details of how the training
  // sequence is generated"); link-level experiments train the float
  // reference and download the quantized coefficients here before running
  // decision-directed (see qam/link.h).
  void set_ffe_coeff(int k, const fixpt::complex_fixed<FFE_C_W, 0>& c) {
    ffe_c_[k] = c;
  }
  void set_dfe_coeff(int k, const fixpt::complex_fixed<DFE_C_W, 0>& c) {
    dfe_c_[k] = c;
  }

 public:
  // Coefficient storage mode. Reproduction note (finding F4-bias,
  // EXPERIMENTS.md): Figure 4 declares the coefficient arrays with
  // sc_fixed defaults (SC_TRN truncation, SC_WRAP overflow). Truncation
  // rounds toward minus infinity, so every sub-LSB sign-LMS update (mu*e
  // is below one coefficient LSB once converged: 2^-8 * |e| < 2^-10)
  // floors negative — the coefficients drift down ~0.5 LSB per symbol and
  // the equalizer diverges within a few thousand symbols. The standard
  // fixed-point LMS remedy — round-to-nearest with saturation on the
  // coefficient registers (one extra adder bit in hardware) — is applied
  // here; tests/qam/link_test.cpp demonstrates both behaviours.
  using coeff_type =
      fixpt::complex_fixed<FFE_C_W, 0, fixpt::Quant::kRnd, fixpt::Ovf::kSat>;
  using dfe_coeff_type =
      fixpt::complex_fixed<DFE_C_W, 0, fixpt::Quant::kRnd, fixpt::Ovf::kSat>;

 private:
  // Figure 4's function statics.
  coeff_type ffe_c_[kNffe]{};
  dfe_coeff_type dfe_c_[kNdfe]{};
  fixpt::complex_fixed<X_W, 0> x_[kNffe]{};
  fixpt::complex_fixed<QAM_B + 1, 0> sv_[kNdfe]{};
};

}  // namespace hlsw::qam
