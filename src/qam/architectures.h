// The architectural configurations of the paper's Table 1, plus the wider
// exploration set used by the exploration/ablation benches. Each entry is a
// named Directives value; applying it to the qam_decoder IR regenerates the
// corresponding Table 1 row.
#pragma once

#include <string>
#include <vector>

#include "hls/directives.h"

namespace hlsw::qam {

struct Architecture {
  std::string name;         // e.g. "merge+U2"
  std::string description;  // the Table 1 "Architectural Loop Constraints"
  hls::Directives dir;
  // Paper-reported values for this row (0 when the paper has none).
  double paper_latency_ns = 0;
  double paper_rate_mbps = 0;
  double paper_area_norm = 0;
};

// The four rows of Table 1, in paper order. 100 MHz clock.
std::vector<Architecture> table1_architectures();

// The merge groups the paper reports Catapult chose by default: {ffe, dfe}
// and {ffe_adapt, dfe_adapt, ffe_shift, dfe_shift}.
std::vector<std::vector<std::string>> default_merge_groups();

// Extended exploration set: unroll sweeps with/without merging, pipelining
// variants, memory mapping — the "variety of micro architectures ...
// rapidly explored" of the paper's abstract.
std::vector<Architecture> exploration_architectures();

}  // namespace hlsw::qam
