// The Figure 4 algorithm captured as HLS IR — the synthesis engine's input,
// corresponding to the C source Catapult consumes. The region/loop
// structure mirrors the listing exactly: six labeled loops (nfe -> "ffe"
// here for symmetry with the paper's Table 1 column names, dfe, ffe_adapt,
// dfe_adapt, ffe_shift, dfe_shift) plus the input block and the slicer
// block between the filter and adaptation loops.
//
// Every op's fixed-point type reproduces the corresponding expression type
// in decoder_fixed.h, so the IR interpreter, the RTL simulator and the
// native fixpt model are bit-exact against each other (enforced in
// tests/qam/decoder_equivalence_test.cpp).
#pragma once

#include "hls/ir.h"

namespace hlsw::qam {

struct DecoderWidths {
  int x_w = 10;      // X_W
  int ffe_w = 10;    // FFE_W
  int dfe_w = 10;    // DFE_W
  int ffe_c_w = 10;  // FFE_C_W
  int dfe_c_w = 10;  // DFE_C_W
};

// Builds the qam_decoder IR. Ports: input array "x_in" (2 complex samples),
// output var "data" (6-bit unsigned).
hls::Function build_qam_decoder_ir(const DecoderWidths& w = {});

}  // namespace hlsw::qam
