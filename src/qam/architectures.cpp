#include "qam/architectures.h"

namespace hlsw::qam {

std::vector<std::vector<std::string>> default_merge_groups() {
  return {{"ffe", "dfe"},
          {"ffe_adapt", "dfe_adapt", "ffe_shift", "dfe_shift"}};
}

std::vector<Architecture> table1_architectures() {
  std::vector<Architecture> out;

  {
    Architecture a;
    a.name = "merge";
    a.description = "all loops merged (Catapult default constraints)";
    a.dir.clock_period_ns = 10.0;
    a.dir.merge_groups = default_merge_groups();
    a.paper_latency_ns = 350;
    a.paper_rate_mbps = 17.1;
    a.paper_area_norm = 1.17;
    out.push_back(std::move(a));
  }
  {
    Architecture a;
    a.name = "none";
    a.description = "no merging, no unrolling (fully sequential loops)";
    a.dir.clock_period_ns = 10.0;
    a.paper_latency_ns = 690;
    a.paper_rate_mbps = 8.6;
    a.paper_area_norm = 1.00;
    out.push_back(std::move(a));
  }
  {
    Architecture a;
    a.name = "merge+U2";
    a.description = "merged; dfe, dfe_adapt, dfe_shift unrolled by 2";
    a.dir.clock_period_ns = 10.0;
    a.dir.merge_groups = default_merge_groups();
    a.dir.loops["dfe"].unroll = 2;
    a.dir.loops["dfe_adapt"].unroll = 2;
    a.dir.loops["dfe_shift"].unroll = 2;
    a.paper_latency_ns = 190;
    a.paper_rate_mbps = 31.5;
    a.paper_area_norm = 1.61;
    out.push_back(std::move(a));
  }
  {
    Architecture a;
    a.name = "merge+U2/U4";
    a.description =
        "merged; dfe U2, ffe_adapt U2, dfe_adapt U4, dfe_shift U4";
    a.dir.clock_period_ns = 10.0;
    a.dir.merge_groups = default_merge_groups();
    a.dir.loops["dfe"].unroll = 2;
    a.dir.loops["ffe_adapt"].unroll = 2;
    a.dir.loops["dfe_adapt"].unroll = 4;
    a.dir.loops["dfe_shift"].unroll = 4;
    a.paper_latency_ns = 150;
    a.paper_rate_mbps = 40;
    a.paper_area_norm = 1.88;
    out.push_back(std::move(a));
  }
  return out;
}

std::vector<Architecture> exploration_architectures() {
  std::vector<Architecture> out = table1_architectures();

  // Unroll sweep on the merged architecture.
  for (int u : {4, 8}) {
    Architecture a;
    a.name = "merge+U" + std::to_string(u) + "all";
    a.description = "merged; all 16-iteration loops unrolled by " +
                    std::to_string(u) + ", 8-iteration ones by " +
                    std::to_string(u / 2);
    a.dir.clock_period_ns = 10.0;
    a.dir.merge_groups = default_merge_groups();
    a.dir.loops["dfe"].unroll = u;
    a.dir.loops["ffe"].unroll = u / 2;
    a.dir.loops["dfe_adapt"].unroll = u;
    a.dir.loops["ffe_adapt"].unroll = u / 2;
    a.dir.loops["dfe_shift"].unroll = u;
    a.dir.loops["ffe_shift"].unroll = u / 2;
    out.push_back(std::move(a));
  }

  // Pipelining instead of unrolling (paper section 5's comparison).
  {
    Architecture a;
    a.name = "merge+pipe";
    a.description = "merged; both merged loops pipelined at II=1";
    a.dir.clock_period_ns = 10.0;
    a.dir.merge_groups = default_merge_groups();
    a.dir.loops["ffe"].pipeline_ii = 1;
    a.dir.loops["ffe_adapt"].pipeline_ii = 1;
    out.push_back(std::move(a));
  }

  // Tighter clock: forces multi-cycle MAC bodies.
  {
    Architecture a;
    a.name = "merge@5ns";
    a.description = "merged at a 200 MHz clock (multi-cycle loop bodies)";
    a.dir.clock_period_ns = 5.0;
    a.dir.merge_groups = default_merge_groups();
    out.push_back(std::move(a));
  }

  // Coefficient arrays in memories instead of registers.
  {
    Architecture a;
    a.name = "none+mem";
    a.description = "sequential; coefficient arrays mapped to 1R1W SRAMs";
    a.dir.clock_period_ns = 10.0;
    a.dir.arrays["ffe_c"].mapping = hls::ArrayMapping::kMemory;
    a.dir.arrays["dfe_c"].mapping = hls::ArrayMapping::kMemory;
    out.push_back(std::move(a));
  }

  // Multiplier-constrained variant: one complex MAC's worth of multipliers.
  {
    Architecture a;
    a.name = "merge+mul4";
    a.description = "merged with a 4-real-multiplier resource cap";
    a.dir.clock_period_ns = 10.0;
    a.dir.merge_groups = default_merge_groups();
    a.dir.max_real_multipliers = 4;
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace hlsw::qam
