// End-to-end link harness for the Figure 3 system: PRBS data -> 64-QAM
// mapper (the paper's two's-complement bit mapping) -> T/2 multipath
// channel with AWGN -> decoder under test -> SER/MSE metrics.
//
// Training strategy (the paper leaves training out of scope): the float
// reference decoder trains with known symbols; its converged coefficients
// are quantized and downloaded into the device under test, which then runs
// decision-directed. The same quantized input stream is fed to every model
// so fixed, IR and RTL runs are bit-comparable.
#pragma once

#include <complex>
#include <vector>

#include "dsp/channel.h"
#include "dsp/prbs.h"
#include "fixpt/complex_fixed.h"
#include "hls/interp.h"
#include "hls/ir.h"
#include "qam/decoder_float.h"

namespace hlsw::qam {

// The paper's data word is ARITHMETIC: data = r*64 + i*8 evaluated in
// fixed-point and wrapped to 6 bits, with r = ri/8, i = ii/8 and
// ri, ii in [-4, 3]. Because the sum is arithmetic, a negative ii borrows
// from the ri field — this is NOT a bit-field concatenation (a genuine
// subtlety of Figure 4; see EXPERIMENTS.md finding F4-word). paper_map is
// the exact inverse: word -> (ri, ii) -> constellation point at levels
// (2*ri + 1)/16.
inline std::complex<double> paper_map(int data, int bits = 3) {
  const int levels = 1 << bits;
  const int half = levels / 2;
  const int mask = levels - 1;
  const int ii = ((data + half) & mask) - half;   // low field, re-centered
  const int rf = ((data - ii) >> bits) & mask;    // undo the borrow
  const int ri = ((rf + half) & mask) - half;     // sign-extend
  return {(2.0 * ri + 1) / (2 * levels), (2.0 * ii + 1) / (2 * levels)};
}

// Forward direction of the same convention: the word Figure 4's decoder
// emits for axis indices ri, ii in [-L/2, L/2 - 1].
inline int paper_word(int ri, int ii, int bits = 3) {
  const int levels = 1 << bits;
  return (ri * levels + ii) & (levels * levels - 1);
}

// Quantizes a channel sample into the decoder's X_W-bit input raw values
// (round-to-nearest, saturating — the ADC in front of the decoder).
inline hls::FxValue quantize_sample(std::complex<double> s, int x_w = 10) {
  const hls::FxType t{x_w, 0, true, true, fixpt::Quant::kRnd,
                      fixpt::Ovf::kSat};
  hls::FxValue v;
  v.fw = x_w;
  v.cplx = true;
  const double scale = std::ldexp(1.0, x_w);
  // Round half toward +inf (Quant::kRnd) so this agrees bit-for-bit with
  // fixpt::fixed<..., kRnd, kSat> construction from double.
  auto q = [&](double c) -> __int128 {
    double r = std::floor(c * scale + 0.5);
    const double hi = scale / 2 - 1, lo = -scale / 2;
    if (r > hi) r = hi;
    if (r < lo) r = lo;
    return static_cast<__int128>(static_cast<long long>(r));
  };
  v.re = q(s.real());
  v.im = q(s.imag());
  (void)t;
  return v;
}

struct LinkConfig {
  dsp::ChannelConfig channel = default_channel();
  int x_w = 10;          // decoder input width
  int decision_delay = 2;  // symbols between input and its decision
  int qam_bits = 3;        // bits per axis: 3 = the paper's 64-QAM
  uint32_t prbs_seed = 0x2A5;

  // A channel an 8-tap T/2 FFE + 16-tap DFE comfortably equalizes while
  // keeping the converged coefficients inside the paper's sc_fixed<10,0>
  // range (|c| < 0.5). That feasibility constraint is tight: the slicer
  // grid spans nearly the full input range, so the two main T/2 taps carry
  // a front-end gain slightly above 1 (an AGC choice) — otherwise unit
  // equalizer gain would need |c| > 0.5. The small complex third tap is
  // the ISI the DFE exists for. Verified empirically: max converged
  // |coefficient component| ~ 0.46 (see tests/qam/link_test.cpp).
  static dsp::ChannelConfig default_channel() {
    dsp::ChannelConfig c;
    c.taps = {{1.10, 0.0}, {1.06, 0.0}, {0.08, 0.05}, {-0.04, 0.02}};
    c.snr_db = 36.0;
    c.symbol_energy = 0.1641;  // 64-QAM at (2k-7)/16 levels: E = 2*168/(8*256)
    return c;
  }
};

// One symbol period of stimulus: the transmitted word, the exact channel
// samples, and their quantized raw versions.
struct LinkSample {
  int sent = 0;                      // 6-bit data word
  std::complex<double> point;        // transmitted constellation point
  std::complex<double> s0, s1;       // received T/2 samples (double)
  hls::FxValue q0, q1;               // quantized to X_W bits
};

// Deterministic stimulus generator.
class LinkStimulus {
 public:
  explicit LinkStimulus(const LinkConfig& cfg)
      : cfg_(cfg), ch_(cfg.channel), prbs_(dsp::Prbs::kPrbs15, cfg.prbs_seed) {}

  LinkSample next() {
    LinkSample s;
    s.sent = prbs_.next_word(2 * cfg_.qam_bits);
    s.point = paper_map(s.sent, cfg_.qam_bits);
    const auto pair = ch_.send(s.point);
    s.s0 = pair.s0;
    s.s1 = pair.s1;
    s.q0 = quantize_sample(s.s0, cfg_.x_w);
    s.q1 = quantize_sample(s.s1, cfg_.x_w);
    history_.push_back(s.sent);
    return s;
  }

  // Transmitted word `delay` symbols ago (for SER against decisions).
  int sent_delayed(int delay) const {
    const int n = static_cast<int>(history_.size());
    return n > delay ? history_[static_cast<size_t>(n - 1 - delay)] : -1;
  }

  const LinkConfig& config() const { return cfg_; }

 private:
  LinkConfig cfg_;
  dsp::MultipathChannel ch_;
  dsp::Prbs prbs_;
  std::vector<int> history_;
};

// Batches `n` symbols of stimulus into per-symbol PortIo maps for the
// decoder's "x_in" port (the {T/2-early, T/2-late} sample pair) — the
// input format of Interpreter/Simulator run_stream(vector<PortIo>).
inline std::vector<hls::PortIo> link_input_batch(LinkStimulus* stim, int n) {
  std::vector<hls::PortIo> ins;
  ins.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const LinkSample s = stim->next();
    hls::PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    ins.push_back(std::move(io));
  }
  return ins;
}

// Same stimulus as one flat symbol-major PortStream ("x_in" channel of
// length 2): the zero-map-construction fast path for long link sweeps.
inline hls::PortStream link_input_stream(LinkStimulus* stim, int n) {
  hls::PortStream in;
  in.symbols = n;
  auto& ch = in.add_array("x_in", 2);
  ch.values.reserve(static_cast<std::size_t>(n) * 2);
  for (int i = 0; i < n; ++i) {
    const LinkSample s = stim->next();
    ch.values.push_back(s.q0);
    ch.values.push_back(s.q1);
  }
  return in;
}

// Trains the float reference over `n` symbols and returns it (coefficients
// converged for decision delay cfg.decision_delay).
inline QamDecoderFloat train_float_reference(LinkStimulus* stim, int n) {
  QamDecoderFloat dec(stim->config().qam_bits);
  std::vector<std::complex<double>> sent_points;
  for (int i = 0; i < n; ++i) {
    const LinkSample s = stim->next();
    sent_points.push_back(s.point);
    const int d = stim->config().decision_delay;
    if (static_cast<int>(sent_points.size()) > d) {
      const auto target =
          sent_points[sent_points.size() - 1 - static_cast<size_t>(d)];
      dec.decode(s.s0, s.s1, &target);
    } else {
      dec.decode(s.s0, s.s1);
    }
  }
  return dec;
}

// Quantizes a double coefficient into a W-bit, 0-integer-bit complex value.
template <int W>
fixpt::complex_fixed<W, 0> quantize_coeff(std::complex<double> c) {
  using S = fixpt::fixed<W, 0, fixpt::Quant::kRnd, fixpt::Ovf::kSat>;
  return fixpt::complex_fixed<W, 0>(S(c.real()), S(c.imag()));
}

// Coefficients as IR FxValues for Interpreter/Simulator preload.
inline std::vector<hls::FxValue> coeffs_to_fxvalues(
    const QamDecoderFloat& dec, bool ffe, int w) {
  const int n = ffe ? QamDecoderFloat::kNffe : QamDecoderFloat::kNdfe;
  std::vector<hls::FxValue> out;
  const double scale = std::ldexp(1.0, w);
  const double hi = scale / 2 - 1, lo = -scale / 2;
  // Same kRnd/kSat rule as quantize_coeff.
  auto q = [&](double v) {
    double r = std::floor(v * scale + 0.5);
    if (r > hi) r = hi;
    if (r < lo) r = lo;
    return static_cast<__int128>(static_cast<long long>(r));
  };
  for (int k = 0; k < n; ++k) {
    const auto c = ffe ? dec.ffe_coeff(k) : dec.dfe_coeff(k);
    hls::FxValue v;
    v.fw = w;
    v.cplx = true;
    v.re = q(c.real());
    v.im = q(c.imag());
    out.push_back(v);
  }
  return out;
}

}  // namespace hlsw::qam
